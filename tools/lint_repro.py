#!/usr/bin/env python
"""AST-based repo linter -- thin shim over ``repro.analysis.lint``.

The linter proper is the whole-program engine in
``src/repro/analysis/lint/``: the eight original single-file rules
(``ID001`` .. ``ORD001``, ported byte-for-byte), plus the cross-file
rule families ``PAR00x`` (worker-purity race detection), ``KNB00x``
(knob-registry discipline) and ``RSL00x`` (deadline-poll discipline).
See the generated rule table in ``docs/ANALYSIS.md``.

This file keeps the historical entry point and import surface alive:

* ``python tools/lint_repro.py [options] [path ...]`` works exactly as
  before (same flags, same JSON shape, same exit codes);
* ``import lint_repro`` still exposes ``Finding``, ``iter_findings``,
  ``lint_paths`` and ``main`` for in-process use by the test suite.

The shim bootstraps ``sys.path`` so it runs from a plain checkout
without ``PYTHONPATH`` (the CI lint job invokes it directly).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.lint import (  # noqa: E402  (path bootstrap above)
    Finding,
    iter_findings,
    lint_paths,
    main,
)

__all__ = ["Finding", "iter_findings", "lint_paths", "main"]

if __name__ == "__main__":
    sys.exit(main())
