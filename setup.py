"""Setup shim.

The offline environment lacks the ``wheel`` package, which modern
``pip install -e .`` requires for PEP 660 editable installs.  This shim keeps
``python setup.py develop`` working there; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
