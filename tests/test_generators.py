"""Tests for the synthetic generators."""

import random

import pytest

from repro import Signature
from repro.generators import (
    random_database,
    random_equality_type,
    random_extended_automaton,
    random_register_automaton,
)
from repro.generators.automata import random_constraint_regex, random_guard


class TestEqualityTypes:
    def test_always_satisfiable(self):
        rng = random.Random(0)
        for _ in range(200):
            delta = random_equality_type(rng, k=3)
            assert delta.is_satisfiable()

    def test_deterministic_given_seed(self):
        one = random_equality_type(random.Random(42), k=2)
        two = random_equality_type(random.Random(42), k=2)
        assert one == two

    def test_uses_only_registers(self):
        from repro.logic.types import type_uses_only_registers

        rng = random.Random(1)
        for _ in range(50):
            assert type_uses_only_registers(random_equality_type(rng, k=2), 2)


class TestGuards:
    def test_relational_guards_satisfiable(self):
        rng = random.Random(3)
        signature = Signature(relations={"R": 2, "P": 1})
        for _ in range(100):
            guard = random_guard(rng, k=2, signature=signature)
            assert guard.is_satisfiable()


class TestAutomata:
    def test_valid_construction(self):
        rng = random.Random(5)
        for _ in range(20):
            automaton = random_register_automaton(rng, k=2, n_states=4, n_transitions=7)
            assert len(automaton.states) == 4
            assert len(automaton.transitions) >= 7
            assert automaton.initial <= automaton.states

    def test_live_skeleton_gives_runs(self, empty_database):
        from repro import find_lasso_run

        rng = random.Random(11)
        found = 0
        for _ in range(10):
            automaton = random_register_automaton(rng, k=1, n_states=3)
            if find_lasso_run(automaton, empty_database, pool=("a", "b", "c")):
                found += 1
        assert found >= 5  # liveness skeleton makes most instances runnable

    def test_extended_constraints_in_range(self):
        rng = random.Random(13)
        for _ in range(20):
            extended = random_extended_automaton(rng, k=2, n_constraints=3)
            assert len(extended.constraints) == 3
            for constraint in extended.constraints:
                assert 1 <= constraint.i <= 2
                assert 1 <= constraint.j <= 2

    def test_constraint_regex_over_states(self):
        rng = random.Random(17)
        states = ["a", "b", "c"]
        for _ in range(50):
            expression = random_constraint_regex(rng, states)
            assert expression.symbols() <= set(states)


class TestDatabases:
    def test_respects_signature(self):
        rng = random.Random(19)
        signature = Signature(relations={"R": 2}, constants=("c",))
        database = random_database(rng, signature)
        for row in database.tuples("R"):
            assert len(row) == 2
        assert database.constant_value("c") is not None

    def test_fact_budget(self):
        rng = random.Random(23)
        signature = Signature(relations={"R": 1})
        database = random_database(rng, signature, facts_per_relation=3)
        assert database.size() <= 3
