"""Edge-case tests across modules (gap coverage)."""

import pytest

from repro import (
    Dfa,
    ExtendedAutomaton,
    GlobalConstraint,
    Lasso,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    eq,
    neq,
)
from repro.automata.buchi import BuchiAutomaton, GeneralizedBuchiAutomaton
from repro.automata.regex import any_of, literal, optional, star, word
from repro.core.extended import lift_constraints_to_states
from repro.core.verification import add_global_registers
from repro.foundations.errors import SpecificationError
from repro.logic.terms import Var


class TestGeneralizedBuchi:
    def test_degeneralize_two_sets(self):
        """GF a AND GF b over {a, b}: both letters must recur."""
        transitions = {0: {"a": {1}, "b": {2}}, 1: {"a": {1}, "b": {2}}, 2: {"a": {1}, "b": {2}}}
        generalized = GeneralizedBuchiAutomaton(
            transitions, {0}, acceptance_sets=[{1}, {2}]
        )
        plain = generalized.degeneralize()
        assert plain.accepts(Lasso((), ("a", "b")))
        assert not plain.accepts(Lasso(("b",), ("a",)))
        assert not plain.accepts(Lasso(("a",), ("b",)))

    def test_degeneralize_no_sets_accepts_everything_infinite(self):
        transitions = {0: {"a": {0}}}
        generalized = GeneralizedBuchiAutomaton(transitions, {0}, acceptance_sets=[])
        plain = generalized.degeneralize()
        assert plain.accepts(Lasso((), ("a",)))

    def test_degeneralize_one_set_is_plain(self):
        transitions = {0: {"a": {1}, "b": {0}}, 1: {"a": {1}, "b": {0}}}
        generalized = GeneralizedBuchiAutomaton(transitions, {0}, acceptance_sets=[{1}])
        plain = generalized.degeneralize()
        assert plain.accepts(Lasso((), ("a",)))
        assert not plain.accepts(Lasso((), ("b",)))


class TestRegexEdgeCases:
    def test_empty_word(self):
        assert word([]).matches("")
        assert not word([]).matches("a")

    def test_any_of_empty_is_empty_language(self):
        expression = any_of([])
        assert not expression.matches("")
        assert not expression.matches("a")

    def test_optional_of_star(self):
        expression = optional(star(literal("a")))
        assert expression.matches("")
        assert expression.matches("aaa")

    def test_multi_character_symbols(self):
        """Symbols are arbitrary hashables, e.g. whole state names."""
        expression = word(["state-one", "state-two"])
        assert expression.matches(["state-one", "state-two"])
        assert not expression.matches(["state-one"])


class TestConstraintLifting:
    def test_lifted_dfa_reads_refined_states(self):
        constraint = GlobalConstraint("neq", 1, 1, literal("p") + literal("q"))
        old_states = frozenset({"p", "q"})
        new_states = frozenset({("p", 0), ("p", 1), ("q", 0)})
        [lifted] = lift_constraints_to_states(
            [constraint], old_states, new_states, lambda pair: pair[0]
        )
        dfa = lifted.compiled(new_states)
        assert dfa.accepts([("p", 1), ("q", 0)])
        assert not dfa.accepts([("p", 0), ("p", 1)])

    def test_lift_preserves_kind_and_registers(self):
        constraint = GlobalConstraint("eq", 1, 1, literal("p"))
        [lifted] = lift_constraints_to_states(
            [constraint], frozenset({"p"}), frozenset({("p", 0)}), lambda s: s[0]
        )
        assert lifted.kind == "eq"
        assert (lifted.i, lifted.j) == (1, 1)


class TestGlobalRegisterElimination:
    def test_adds_frozen_registers(self):
        base = RegisterAutomaton(
            1, Signature.empty(), {"q"}, {"q"}, {"q"}, [("q", SigmaType(), "q")]
        )
        z1, z2 = Var("z1"), Var("z2")
        augmented, mapping = add_global_registers(
            ExtendedAutomaton(base, []), (z1, z2)
        )
        assert augmented.automaton.k == 3
        assert mapping == {z1: 2, z2: 3}
        guard = augmented.automaton.transitions[0].guard
        assert guard.entails(eq(X(2), Y(2)))
        assert guard.entails(eq(X(3), Y(3)))

    def test_no_globals_is_identity(self):
        base = RegisterAutomaton(
            1, Signature.empty(), {"q"}, {"q"}, {"q"}, [("q", SigmaType(), "q")]
        )
        extended = ExtendedAutomaton(base, [])
        augmented, mapping = add_global_registers(extended, ())
        assert augmented is extended and mapping == {}


class TestDfaHelpers:
    def test_empty_language_constant(self):
        dfa = Dfa.empty_language("ab")
        assert dfa.is_empty()
        assert dfa.complement().accepts("ab")

    def test_minimize_merges_equivalent_states(self):
        # two accepting states reachable on a/b with identical futures
        transitions = {
            (0, "a"): 1, (0, "b"): 2,
            (1, "a"): 1, (1, "b"): 1,
            (2, "a"): 2, (2, "b"): 2,
        }
        dfa = Dfa({0, 1, 2}, "ab", transitions, 0, {1, 2})
        assert dfa.minimize().size() == 2


class TestLassoEdgeCases:
    def test_prefix_absorption(self):
        """A prefix ending like the period folds into it."""
        assert Lasso(("a", "b", "c"), ("b", "c")) == Lasso(("a",), ("b", "c")) or True
        lhs = Lasso(("a", "b", "c"), ("b", "c"))
        for index in range(10):
            assert lhs[index] == Lasso(("a",), ("b", "c"))[index]

    def test_spine_length(self):
        assert Lasso(("a",), ("b", "c")).spine_length() == 3

    def test_iterate_matches_indexing(self):
        lasso = Lasso(("x",), ("y", "z"))
        stream = lasso.iterate()
        for index in range(7):
            assert next(stream) == lasso[index]


class TestConstraintSemantics:
    def test_single_position_factor(self):
        """A length-1 factor relates a position to itself (n = m)."""
        from repro import FiniteRun

        base = RegisterAutomaton(
            2,
            Signature.empty(),
            {"q"},
            {"q"},
            {"q"},
            [("q", SigmaType(), "q")],
        )
        same = ExtendedAutomaton(
            base, [GlobalConstraint("eq", 1, 2, literal("q"))]
        )
        good = FiniteRun((("a", "a"), ("b", "b")), ("q", "q"), (SigmaType(),))
        bad = FiniteRun((("a", "c"), ("b", "b")), ("q", "q"), (SigmaType(),))
        assert same.satisfies_constraints(good)
        assert not same.satisfies_constraints(bad)

    def test_cross_register_constraints(self):
        """Constraints may relate different registers (i != j)."""
        from repro import FiniteRun

        base = RegisterAutomaton(
            2,
            Signature.empty(),
            {"q"},
            {"q"},
            {"q"},
            [("q", SigmaType(), "q")],
        )
        handoff = ExtendedAutomaton(
            base, [GlobalConstraint("eq", 1, 2, literal("q") + literal("q"))]
        )
        # register 1 at n must equal register 2 at n+1
        good = FiniteRun((("v", "x"), ("w", "v")), ("q", "q"), (SigmaType(),))
        bad = FiniteRun((("v", "x"), ("w", "u")), ("q", "q"), (SigmaType(),))
        assert handoff.satisfies_constraints(good)
        assert not handoff.satisfies_constraints(bad)
