"""Unit tests for repro.logic: terms, literals, closure, types."""

import pytest

from repro.foundations.errors import InconsistentTypeError
from repro.logic import (
    Const,
    EqualityClosure,
    SigmaType,
    UnionFind,
    Var,
    X,
    Y,
    agree,
    eq,
    equality_type,
    neq,
    nrel,
    register_index,
    rel,
    x_vars,
    y_vars,
)
from repro.logic.literals import EqAtom, Literal, RelAtom
from repro.logic.types import project_type, project_type_dataless


class TestTerms:
    def test_register_variables(self):
        assert X(1).name == "x1"
        assert Y(3).name == "y3"
        assert register_index(X(2)) == ("x", 2)
        assert register_index(Y(7)) == ("y", 7)

    def test_non_register_variables(self):
        assert register_index(Var("z1")) is None
        assert register_index(Const("c")) is None

    def test_register_indices_start_at_one(self):
        with pytest.raises(ValueError):
            X(0)
        with pytest.raises(ValueError):
            Y(-1)

    def test_tuples(self):
        assert x_vars(2) == (X(1), X(2))
        assert y_vars(1) == (Y(1),)

    def test_ordering_is_total(self):
        terms = [Const("b"), X(1), Y(2), Const("a"), Var("z")]
        ordered = sorted(terms)
        # variables come before constants
        assert all(t.is_variable() for t in ordered[:3])
        assert all(t.is_constant() for t in ordered[3:])


class TestLiterals:
    def test_equality_atom_canonical_order(self):
        assert EqAtom(Y(1), X(1)) == EqAtom(X(1), Y(1))
        assert EqAtom(Y(1), X(1)).left == X(1)

    def test_swap_preserves_both_terms(self):
        atom = EqAtom(X(2), X(1))
        assert {atom.left, atom.right} == {X(1), X(2)}

    def test_negation(self):
        literal = eq(X(1), Y(1))
        assert literal.negate() == neq(X(1), Y(1))
        assert literal.negate().negate() == literal

    def test_relational_literals(self):
        literal = rel("R", X(1), Y(2))
        assert literal.is_relational()
        assert not literal.is_equality()
        assert nrel("R", X(1), Y(2)) == literal.negate()

    def test_mixed_sorting(self):
        literals = [rel("R", X(1)), eq(X(1), X(2)), neq(X(1), Y(1))]
        ordered = sorted(literals)
        assert ordered[0].is_equality()
        assert ordered[-1].is_relational()


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.same("a", "c")
        assert not uf.same("a", "d")

    def test_classes(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.find(3)
        classes = uf.classes()
        assert {frozenset(c) for c in classes.values()} == {
            frozenset({1, 2}),
            frozenset({3}),
        }


class TestEqualityClosure:
    def test_transitive_equality(self):
        closure = EqualityClosure([eq(X(1), X(2)), eq(X(2), Y(2))])
        assert closure.entails_eq(X(1), Y(2))

    def test_inequality_conflict(self):
        closure = EqualityClosure([eq(X(1), X(2)), neq(X(1), X(2))])
        assert not closure.is_consistent()

    def test_relational_conflict_modulo_equality(self):
        closure = EqualityClosure(
            [eq(X(1), Y(1)), rel("R", X(1)), nrel("R", Y(1))]
        )
        assert not closure.is_consistent()

    def test_relational_no_conflict_distinct_tuples(self):
        closure = EqualityClosure([rel("R", X(1)), nrel("R", Y(1))])
        assert closure.is_consistent()

    def test_entails_neq_through_classes(self):
        closure = EqualityClosure([eq(X(1), X(2)), neq(X(2), Y(1)), eq(Y(1), Y(2))])
        assert closure.entails_neq(X(1), Y(2))


class TestSigmaType:
    def test_unsatisfiable_raises(self):
        with pytest.raises(InconsistentTypeError):
            SigmaType([eq(X(1), X(2)), eq(X(2), X(3)), neq(X(1), X(3))])

    def test_trivial_self_equality_dropped(self):
        delta = SigmaType([eq(X(1), X(1))])
        assert delta.literals == frozenset()

    def test_trivial_self_inequality_raises(self):
        with pytest.raises(InconsistentTypeError):
            SigmaType([neq(X(1), X(1))])

    def test_entailment(self, example1_guards):
        d1, _d2, _d3 = example1_guards
        assert d1.entails(eq(X(1), Y(2)))
        assert not d1.entails(eq(X(1), Y(1)))

    def test_restriction_is_syntactic(self, example1_guards):
        d1, _d2, _d3 = example1_guards
        restricted = d1.restrict([X(1), X(2)])
        assert restricted.literals == frozenset([eq(X(1), X(2))])

    def test_shift_y_to_x(self):
        delta = SigmaType([eq(Y(1), Y(2))])
        shifted = delta.shift_y_to_x(2)
        assert shifted.literals == frozenset([eq(X(1), X(2))])

    def test_conjoin_detects_conflicts(self):
        left = SigmaType([eq(X(1), X(2))])
        right = SigmaType([neq(X(1), X(2))])
        with pytest.raises(InconsistentTypeError):
            left.conjoin(right)

    def test_equality_type_rejects_relations(self):
        with pytest.raises(InconsistentTypeError):
            equality_type(rel("R", X(1)))

    def test_pretty_empty(self):
        assert SigmaType().pretty() == "true"

    def test_hash_and_equality(self):
        assert SigmaType([eq(X(1), Y(1))]) == SigmaType([eq(Y(1), X(1))])
        assert hash(SigmaType([eq(X(1), Y(1))])) == hash(SigmaType([eq(Y(1), X(1))]))


class TestCompletion:
    def test_example2_delta1_has_two_completions(self, example1_guards):
        """Example 2: settling y1 vs y2 settles everything for delta1."""
        d1, _d2, _d3 = example1_guards
        variables = [X(1), X(2), Y(1), Y(2)]
        completions = list(d1.completions({}, variables))
        assert len(completions) == 2

    def test_completions_are_complete(self, example1_guards):
        d1, _d2, _d3 = example1_guards
        variables = [X(1), X(2), Y(1), Y(2)]
        for completion in d1.completions({}, variables):
            assert completion.is_complete({}, variables)

    def test_completions_partition_models(self, example1_guards):
        """Distinct completions disagree on at least one literal."""
        d1, _d2, _d3 = example1_guards
        variables = [X(1), X(2), Y(1), Y(2)]
        completions = list(d1.completions({}, variables))
        first, second = completions
        assert any(second.entails(l.negate()) for l in first.literals)

    def test_relational_completion(self):
        delta = SigmaType([rel("P", X(1))])
        variables = [X(1), Y(1)]
        completions = list(delta.completions({"P": 1}, variables))
        # settle x1 ? y1, and P(y1) when x1 != y1
        assert len(completions) == 3
        for completion in completions:
            assert completion.is_complete({"P": 1}, variables)

    def test_empty_type_completion_count(self):
        # 1 register: settle x1 ? y1 -> 2 completions
        completions = list(SigmaType().completions({}, [X(1), Y(1)]))
        assert len(completions) == 2


class TestAgree:
    def test_agreement_via_entailment(self):
        """y1 = y2 entailed but not syntactic still agrees with x1 = x2."""
        delta_now = SigmaType([eq(X(1), X(2)), eq(X(1), Y(1)), eq(X(2), Y(2))])
        delta_next = SigmaType([eq(X(1), X(2)), eq(X(1), Y(1)), eq(X(2), Y(2))])
        assert agree(delta_now, delta_next, 2)

    def test_disagreement(self):
        delta_now = SigmaType([eq(Y(1), Y(2))])
        delta_next = SigmaType([neq(X(1), X(2))])
        assert not agree(delta_now, delta_next, 2)

    def test_unsettled_boundaries_agree_when_both_open(self):
        assert agree(SigmaType(), SigmaType(), 2)

    def test_relational_boundary(self):
        delta_now = SigmaType([rel("P", Y(1))])
        delta_next_pos = SigmaType([rel("P", X(1))])
        delta_next_neg = SigmaType([nrel("P", X(1))])
        assert agree(delta_now, delta_next_pos, 1)
        assert not agree(delta_now, delta_next_neg, 1)


class TestProjection:
    def test_project_type_keeps_visible_literals(self):
        delta = SigmaType([eq(X(1), Y(1)), eq(X(2), Y(2)), eq(X(1), X(2))])
        projected = project_type(delta, 1, 2)
        assert projected.literals == frozenset([eq(X(1), Y(1))])

    def test_project_type_dataless_strips_relations_and_constants(self):
        delta = SigmaType(
            [eq(X(1), Y(1)), rel("P", X(1)), eq(X(1), Const("c"))]
        )
        projected = project_type_dataless(delta, 1)
        assert projected.literals == frozenset([eq(X(1), Y(1))])
