"""Tests for symbolic control traces and their realisation (Theorem 9 stage 1)."""

import pytest

from repro import (
    Lasso,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    eq,
    is_symbolic_control_trace,
    neq,
    realize_control_trace,
    rel,
    scontrol_buchi,
    state_trace_buchi,
)
from repro.core.symbolic import control_equals_scontrol_on_samples
from repro.foundations.errors import SpecificationError


class TestSControlBuchi:
    def test_example1_state_trace_language(self, example1_automaton):
        """State(A) = (q1 q2+)^omega for Example 1."""
        buchi = state_trace_buchi(example1_automaton)
        assert buchi.accepts(Lasso((), ("q1", "q2", "q2", "q2")))
        assert buchi.accepts(Lasso((), ("q1", "q2")))
        assert not buchi.accepts(Lasso((), ("q2", "q1")))
        assert not buchi.accepts(Lasso(("q1",), ("q2",)))  # q1 must recur

    def test_control_trace_membership(self, example1_automaton, example1_guards):
        d1, d2, d3 = example1_guards
        good = Lasso((), (("q1", d1), ("q2", d2), ("q2", d3)))
        assert is_symbolic_control_trace(example1_automaton, good)
        bad = Lasso((), (("q1", d1), ("q1", d1)))
        assert not is_symbolic_control_trace(example1_automaton, bad)

    def test_agreement_rejects_inconsistent_traces(self):
        """Consecutive complete types must agree on shared registers."""
        keep = SigmaType([eq(X(1), Y(1))])
        flip = SigmaType([neq(X(1), Y(1))])
        automaton = RegisterAutomaton(
            1,
            Signature.empty(),
            {"a", "b"},
            {"a"},
            {"a"},
            [("a", keep, "b"), ("b", flip, "a")],
        )
        buchi = scontrol_buchi(automaton)
        trace = Lasso((), (("a", keep), ("b", flip)))
        # keep and flip leave the boundary open, so they agree trivially
        assert buchi.accepts(trace)


class TestRealization:
    def test_example1_realization(self, example1_automaton, example1_guards):
        d1, d2, d3 = example1_guards
        trace = Lasso((), (("q1", d1), ("q2", d2), ("q2", d2), ("q2", d2), ("q2", d3)))
        database, run = realize_control_trace(example1_automaton, trace)
        assert run.is_valid(example1_automaton, database)
        assert run.control_trace().map(lambda p: p[0]) == trace.map(lambda p: p[0])

    def test_example1_recurring_initial_value(self, example1_automaton, example1_guards):
        """The projection insight of Example 4: register 2 pins the value."""
        d1, d2, d3 = example1_guards
        trace = Lasso((), (("q1", d1), ("q2", d2), ("q2", d3)))
        _database, run = realize_control_trace(example1_automaton, trace)
        # register 2 carries one value forever
        second = {row[1] for row in run.data}
        assert len(second) == 1

    def test_non_member_trace_rejected(self, example1_automaton, example1_guards):
        d1, _d2, _d3 = example1_guards
        with pytest.raises(SpecificationError):
            realize_control_trace(
                example1_automaton, Lasso((), (("q1", d1), ("q1", d1)))
            )

    def test_local_disequality_needs_unfolding(self):
        """x1 != y1 on a 1-letter loop has no 1-unfolding witness."""
        change = SigmaType([neq(X(1), Y(1))])
        automaton = RegisterAutomaton(
            1, Signature.empty(), {"q"}, {"q"}, {"q"}, [("q", change, "q")]
        )
        trace = Lasso((), (("q", change),))
        database, run = realize_control_trace(automaton, trace)
        assert run.is_valid(automaton, database)
        assert run.loop_length >= 2

    def test_database_facts_realized(self, example23_automaton):
        automaton = example23_automaton.equality_completed()
        buchi = scontrol_buchi(automaton)
        trace = buchi.find_accepted_lasso()
        assert trace is not None
        database, run = realize_control_trace(automaton, trace, check_membership=False)
        assert run.is_valid(automaton, database)
        assert database.size() > 0  # E and U facts were materialised

    def test_control_equals_scontrol_on_samples(self, example1_automaton):
        assert control_equals_scontrol_on_samples(
            example1_automaton, max_prefix=1, max_cycle=5, limit=15
        )

    def test_control_equals_scontrol_with_database(self, example8_extended):
        assert control_equals_scontrol_on_samples(
            example8_extended.automaton, max_prefix=1, max_cycle=3, limit=10
        )
