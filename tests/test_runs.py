"""Tests for run objects, validity checking and bounded run search."""

import pytest

from repro import (
    Database,
    FiniteRun,
    LassoRun,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    eq,
    find_lasso_run,
    generate_finite_runs,
    neq,
)
from repro.core.runs import validity_error, value_pool
from repro.foundations.errors import SpecificationError


@pytest.fixture
def example1_run(example1_automaton, example1_guards):
    d1, d2, d3 = example1_guards
    # (d2 d1, q1) (d3 d1, q2) (d4 d1, q2) (d1 d1, q1-bound) per Example 1
    return FiniteRun(
        data=(("v1", "v1"), ("v2", "v1"), ("v3", "v1")),
        states=("q1", "q2", "q2"),
        guards=(d1, d2),
    )


class TestFiniteRun:
    def test_shape_validation(self):
        with pytest.raises(SpecificationError):
            FiniteRun(data=(("a",),), states=("q", "q"), guards=())

    def test_guard_count_validation(self):
        with pytest.raises(SpecificationError):
            FiniteRun(data=(("a",),), states=("q",), guards=(SigmaType(),))

    def test_validity(self, example1_automaton, example1_run, empty_database):
        assert example1_run.is_valid(example1_automaton, empty_database)

    def test_invalid_initial_state(self, example1_automaton, example1_guards, empty_database):
        d1, d2, _d3 = example1_guards
        run = FiniteRun((("a", "a"),), ("q2",), ())
        assert "not initial" in validity_error(run, example1_automaton, empty_database)

    def test_invalid_guard_failure(self, example1_automaton, example1_guards, empty_database):
        d1, _d2, _d3 = example1_guards
        # d1 requires x1 = x2
        run = FiniteRun(
            (("a", "b"), ("c", "b")), ("q1", "q2"), (d1,)
        )
        assert "fails" in validity_error(run, example1_automaton, empty_database)

    def test_wrong_arity_detected(self, example1_automaton, empty_database):
        run = FiniteRun((("a",),), ("q1",), ())
        assert "arity" in validity_error(run, example1_automaton, empty_database)

    def test_traces(self, example1_run, example1_guards):
        d1, d2, _d3 = example1_guards
        assert example1_run.register_trace() == (
            ("v1", "v1"),
            ("v2", "v1"),
            ("v3", "v1"),
        )
        assert example1_run.state_trace() == ("q1", "q2", "q2")
        assert example1_run.control_trace() == (("q1", d1), ("q2", d2))

    def test_project(self, example1_run):
        assert example1_run.project(1).data == (("v1",), ("v2",), ("v3",))

    def test_map_states_and_guards(self, example1_run):
        mapped = example1_run.map_states(str.upper)
        assert mapped.states == ("Q1", "Q2", "Q2")


class TestLassoRun:
    @pytest.fixture
    def loop_run(self, example1_automaton, example1_guards):
        d1, d2, d3 = example1_guards
        # q1 --d1--> q2 --d2--> q2 --d3--> back to q1 (loop over everything)
        return LassoRun(
            data=(("v1", "v1"), ("v2", "v1"), ("v3", "v1")),
            states=("q1", "q2", "q2"),
            guards=(d1, d2, d3),
            loop_start=0,
        )

    def test_validity(self, example1_automaton, loop_run, empty_database):
        assert loop_run.is_valid(example1_automaton, empty_database)

    def test_buchi_condition(self, example1_automaton, example1_guards, empty_database):
        d1, d2, _d3 = example1_guards
        run = LassoRun(
            data=(("a", "a"), ("b", "a")),
            states=("q1", "q2"),
            guards=(d1, d2),
            loop_start=1,
        )
        assert "Buchi" in validity_error(run, example1_automaton, empty_database)

    def test_wrap_guard_checked(self, example1_automaton, example1_guards, empty_database):
        d1, d2, d3 = example1_guards
        # wrap d3 requires y1 = y2 back at loop start: data[0] = (v1,v1) ok;
        # break it by making the loop-start tuple unequal
        run = LassoRun(
            data=(("v1", "v2"), ("v3", "v2"), ("v4", "v2")),
            states=("q1", "q2", "q2"),
            guards=(d1, d2, d3),
            loop_start=0,
        )
        error = validity_error(run, example1_automaton, empty_database)
        assert error is not None  # d1 requires x1 = x2 at position 0 anyway

    def test_traces_are_lassos(self, loop_run):
        trace = loop_run.register_trace()
        assert trace[0] == ("v1", "v1")
        assert trace[3] == ("v1", "v1")

    def test_unfold(self, loop_run, example1_automaton, empty_database):
        prefix = loop_run.unfold(7)
        assert len(prefix) == 7
        assert prefix.is_valid(example1_automaton, empty_database)

    def test_successor_and_position(self, loop_run):
        assert loop_run.successor(2) == 0
        assert loop_run.position_at(5) == 2


class TestSearch:
    def test_find_lasso_run(self, example1_automaton, empty_database):
        run = find_lasso_run(example1_automaton, empty_database)
        assert run is not None
        assert run.is_valid(example1_automaton, empty_database)

    def test_find_lasso_run_empty_automaton(self, empty_database):
        # accepting state unreachable through an infinite run
        guard = SigmaType([neq(X(1), X(1 + 0))]) if False else SigmaType()
        automaton = RegisterAutomaton(
            1, Signature.empty(), {"a", "b"}, {"a"}, {"b"}, [("b", SigmaType(), "b")]
        )
        assert find_lasso_run(automaton, empty_database) is None

    def test_generate_finite_runs_are_valid(self, example1_automaton, empty_database):
        runs = list(
            generate_finite_runs(example1_automaton, empty_database, 4, pool=("a", "b"))
        )
        assert runs
        for run in runs:
            assert run.is_valid(example1_automaton, empty_database)

    def test_generate_finite_runs_limit(self, example1_automaton, empty_database):
        runs = list(
            generate_finite_runs(
                example1_automaton, empty_database, 4, pool=("a", "b"), limit=3
            )
        )
        assert len(runs) == 3

    def test_value_pool_size(self, example1_automaton, empty_database):
        pool = value_pool(example1_automaton, empty_database)
        assert len(pool) == 2 * example1_automaton.k + 1

    def test_search_respects_database(self, example23_automaton, example23_database):
        run = find_lasso_run(example23_automaton, example23_database)
        assert run is not None
        assert run.is_valid(example23_automaton, example23_database)
        # register 1 must alternate between E-targets and non-targets of c
        values = [row[0] for row in run.data]
        assert "d0" in values
