"""Tests for the code-based normalisation kernel (``REPRO_SYMKERNEL``).

Three layers:

* completion codes (``repro.logic.types``): the code enumeration replays
  the legacy ``completions()`` sequence byte for byte at k=3..6, and
  decode-on-demand rebuilds each completion literal-for-literal;
* the kernel graph (``repro.core.symkernel``): eligibility gates, and the
  id Buchi automaton is isomorphic -- via ``decode_node`` -- to the legacy
  ``scontrol_buchi`` of the normalised automaton;
* the routed pipeline (``repro.core.emptiness``): verdict, witness trace
  and ``candidates_checked`` byte-identical between ``REPRO_SYMKERNEL=1``
  and ``=0`` on the paper fixtures, random automata, and automata with
  equality constraints (Proposition 6 elimination feeds the kernel).
"""

import random

import pytest

from repro import (
    ExtendedAutomaton,
    GlobalConstraint,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    check_emptiness,
    eq,
    neq,
)
from repro.automata.regex import any_of, concat, literal, plus, star
from repro.core.emptiness import _normalize_for_analysis
from repro.core.extended import eliminate_equality_constraints
from repro.core.symbolic import scontrol_buchi
from repro.core.symkernel import build_kernel, symkernel_enabled
from repro.generators import random_extended_automaton, random_register_automaton
from repro.logic.terms import x_vars, y_vars
from repro.logic.types import decode_completion, enumerate_completion_codes

EMPTY = SigmaType()


def _without_eq(extended):
    return eliminate_equality_constraints(extended)[0]


# --------------------------------------------------------------------- #
# completion codes vs the legacy enumeration
# --------------------------------------------------------------------- #


def _sample_guards(terms):
    """A few equality guards exercising entailed, asserted and open pairs."""
    guards = [EMPTY, SigmaType([eq(terms[0], terms[1])])]
    if len(terms) >= 3:
        guards.append(SigmaType([eq(terms[0], terms[1]), neq(terms[1], terms[2])]))
        guards.append(SigmaType([neq(terms[0], terms[2])]))
    if len(terms) >= 4:
        guards.append(
            SigmaType([eq(terms[0], terms[2]), eq(terms[1], terms[3]), neq(terms[0], terms[1])])
        )
    return guards


@pytest.mark.parametrize("k", [3, 4, 5, 6])
def test_completion_codes_match_legacy_sequence(k):
    """Satellite: codes-vs-legacy completion-sequence identity at k=3..6."""
    vocab = tuple(x_vars(k))
    for guard in _sample_guards(vocab):
        legacy = list(guard.completions({}, vocab, ()))
        codes = enumerate_completion_codes(guard, vocab)
        assert len(codes) == len(legacy)
        assert len(set(codes)) == len(codes)
        for code, expected in zip(codes, legacy):
            decoded = decode_completion(guard, code, vocab)
            assert decoded == expected
            assert decoded.literals == expected.literals
            assert repr(decoded) == repr(expected)


@pytest.mark.parametrize("k", [2, 3])
def test_completion_codes_match_legacy_xy_vocabulary(k):
    """The emptiness vocabulary x1..xk, y1..yk replays identically too."""
    vocab = tuple(x_vars(k)) + tuple(y_vars(k))
    for guard in _sample_guards(vocab):
        legacy = list(guard.completions({}, vocab, ()))
        codes = enumerate_completion_codes(guard, vocab)
        assert [decode_completion(guard, code, vocab) for code in codes] == legacy


def test_completion_codes_reject_relational_guards():
    from repro.foundations.errors import SpecificationError
    from repro.logic.literals import rel

    guard = SigmaType([rel("R", X(1))])
    with pytest.raises(SpecificationError):
        enumerate_completion_codes(guard, tuple(x_vars(2)))


# --------------------------------------------------------------------- #
# kernel eligibility
# --------------------------------------------------------------------- #


def test_knob_default_on(monkeypatch):
    monkeypatch.delenv("REPRO_SYMKERNEL", raising=False)
    assert symkernel_enabled()
    monkeypatch.setenv("REPRO_SYMKERNEL", "0")
    assert not symkernel_enabled()


def test_declines_relational_signature(example8_extended):
    assert build_kernel(_without_eq(example8_extended)) is None


def test_declines_complete_state_driven_automaton():
    # One state, one guard settling its single vocabulary pair: the legacy
    # normalisation is the identity, so there is no completion wall to skip.
    guard = SigmaType([eq(X(1), Y(1))])
    automaton = RegisterAutomaton(
        1, Signature.empty(), {"a"}, {"a"}, {"a"}, [("a", guard, "a")]
    )
    assert build_kernel(_without_eq(ExtendedAutomaton(automaton, []))) is None


def test_declines_k0():
    automaton = RegisterAutomaton(
        0, Signature.empty(), {"a"}, {"a"}, {"a"}, [("a", EMPTY, "a")]
    )
    assert build_kernel(_without_eq(ExtendedAutomaton(automaton, []))) is None


def test_builds_on_example7(example7_extended):
    kernel = build_kernel(_without_eq(example7_extended))
    assert kernel is not None
    # k=1: the empty guard has two completions (x1 = y1 / x1 != y1), both
    # control pairs of the state-driven completed automaton.
    assert kernel.stats["control_nodes"] == 2
    assert kernel.stats["completed_transitions"] == 2


# --------------------------------------------------------------------- #
# structural identity of the coded control graph
# --------------------------------------------------------------------- #


def _assert_buchi_isomorphic(kernel, legacy):
    mapping = {
        node_id: kernel.decode_node(int(node_id[1:]))
        for node_id in kernel.buchi.states()
    }
    assert set(mapping.values()) == set(legacy.states())
    assert {mapping[s] for s in kernel.buchi.initial} == set(legacy.initial)
    assert {mapping[s] for s in kernel.buchi.accepting} == set(legacy.accepting)
    for node_id, pair in mapping.items():
        coded = {mapping[t] for t in kernel.buchi.successors(node_id, node_id)}
        assert coded == set(legacy.successors(pair, pair))
    # Rank order replays legacy repr order: the id sequence sorted as the
    # Buchi searches sort it corresponds to the pair reprs sorted the same
    # way -- the replay invariant the candidate enumeration relies on.
    ids_sorted = sorted(mapping, key=repr)
    pairs_sorted = sorted(mapping.values(), key=repr)
    assert [mapping[node_id] for node_id in ids_sorted] == pairs_sorted


def test_kernel_buchi_matches_scontrol(example1_automaton):
    extended = ExtendedAutomaton(example1_automaton, [])
    kernel = build_kernel(_without_eq(extended))
    assert kernel is not None
    legacy = scontrol_buchi(_normalize_for_analysis(extended).automaton)
    _assert_buchi_isomorphic(kernel, legacy)


@pytest.mark.parametrize("seed", range(6))
def test_kernel_buchi_matches_scontrol_random(seed):
    rng = random.Random(seed)
    automaton = random_register_automaton(rng, k=2, n_states=3, n_transitions=4)
    extended = ExtendedAutomaton(automaton, [])
    kernel = build_kernel(_without_eq(extended))
    if kernel is None:  # already complete + state-driven: legacy identity
        return
    legacy = scontrol_buchi(_normalize_for_analysis(extended).automaton)
    _assert_buchi_isomorphic(kernel, legacy)


# --------------------------------------------------------------------- #
# routed pipeline: byte-identity between REPRO_SYMKERNEL=1 and =0
# --------------------------------------------------------------------- #


def _run_both(monkeypatch, extended, **bounds):
    monkeypatch.setenv("REPRO_SYMKERNEL", "1")
    on = check_emptiness(extended, **bounds)
    monkeypatch.setenv("REPRO_SYMKERNEL", "0")
    off = check_emptiness(extended, **bounds)
    return on, off


def _assert_identical(on, off):
    assert on.verdict == off.verdict
    assert (on.empty, on.exact) == (off.empty, off.exact)
    assert on.candidates_checked == off.candidates_checked
    assert (on.max_prefix, on.max_cycle) == (off.max_prefix, off.max_cycle)
    if off.witness is None:
        assert on.witness is None
    else:
        assert on.witness.trace == off.witness.trace
        assert repr(on.witness.trace) == repr(off.witness.trace)


def test_ab_no_constraints(example1_automaton, monkeypatch):
    on, off = _run_both(monkeypatch, ExtendedAutomaton(example1_automaton, []))
    _assert_identical(on, off)
    assert not on.empty and on.candidates_checked == 1


def test_ab_example7(example7_extended, monkeypatch):
    on, off = _run_both(monkeypatch, example7_extended)
    _assert_identical(on, off)
    assert not on.empty


def test_prop6_elimination_feeds_eligible_automaton(example5_extended):
    """Proposition 6 elimination yields a kernel-eligible b-state automaton.

    The full emptiness search on example 5 is out of reach for a unit test in
    *either* mode -- elimination raises k to 5, i.e. Bell(10) = 115975
    completions per guard, which is exactly the wall the kernel attacks at
    build level (see benchmarks/bench_symkernel.py).  Here we only assert the
    gate: the eliminated automaton is relation-free, constant-free and
    incomplete, so ``build_kernel`` would accept it rather than fall back.
    """
    without_eq = _without_eq(example5_extended)
    automaton = without_eq.automaton
    assert automaton.k > 1
    assert not automaton.signature.relations
    assert not automaton.signature.const_terms()
    assert not without_eq.equality_constraints()


def test_ab_relational_fallback(example8_extended, monkeypatch):
    """Ineligible automata route through the unchanged legacy path."""
    on, off = _run_both(monkeypatch, example8_extended, max_prefix=1, max_cycle=4)
    _assert_identical(on, off)
    assert not on.empty


def test_ab_empty_verdict(monkeypatch):
    automaton = RegisterAutomaton(
        1, Signature.empty(), {"a", "b"}, {"a"}, {"b"}, [("a", EMPTY, "a")]
    )
    on, off = _run_both(monkeypatch, ExtendedAutomaton(automaton, []))
    _assert_identical(on, off)
    assert on.empty and on.exact


def test_ab_contradictory_constraints(monkeypatch):
    # Every cycle crosses the eq(x1, y1) edge, repeating the register value,
    # while the neq constraint demands all positions pairwise distinct.
    automaton = RegisterAutomaton(
        1,
        Signature.empty(),
        {"a", "b"},
        {"a"},
        {"a"},
        [("a", EMPTY, "b"), ("b", SigmaType([eq(X(1), Y(1))]), "a")],
    )
    anyc = any_of(["a", "b"])
    all_distinct = concat(anyc, plus(anyc))
    contradictory = ExtendedAutomaton(
        automaton, [GlobalConstraint("neq", 1, 1, all_distinct)]
    )
    on, off = _run_both(monkeypatch, contradictory, max_prefix=1, max_cycle=3)
    _assert_identical(on, off)
    assert on.empty


@pytest.mark.parametrize("seed", range(10))
def test_ab_random_extended(seed, monkeypatch):
    rng = random.Random(1000 + seed)
    # equality_fraction=0: equality constraints route through Proposition 6,
    # which raises k beyond what a unit test can enumerate in either mode.
    extended = random_extended_automaton(
        rng,
        k=rng.choice([1, 2]),
        n_states=3,
        n_transitions=4,
        n_constraints=2,
        equality_fraction=0.0,
    )
    on, off = _run_both(
        monkeypatch, extended, max_prefix=1, max_cycle=3, max_candidates=200
    )
    _assert_identical(on, off)


def test_ab_k3_workload(monkeypatch):
    """A k=3 witness-bearing workload: the Bell(6)=203-way completion."""
    guard = SigmaType([eq(X(1), Y(2))])
    automaton = RegisterAutomaton(
        3,
        Signature.empty(),
        {"a", "b"},
        {"a"},
        {"b"},
        [("a", guard, "b"), ("b", EMPTY, "a")],
    )
    pattern = concat(literal("a"), star(literal("b")), literal("a"))
    extended = ExtendedAutomaton(automaton, [GlobalConstraint("neq", 1, 2, pattern)])
    on, off = _run_both(monkeypatch, extended, max_prefix=1, max_cycle=2, max_candidates=50)
    _assert_identical(on, off)


# --------------------------------------------------------------------- #
# the lazy witness
# --------------------------------------------------------------------- #


def test_kernel_witness_materialises_lazily(example7_extended, monkeypatch):
    monkeypatch.setenv("REPRO_SYMKERNEL", "1")
    result = check_emptiness(example7_extended)
    witness = result.witness
    assert witness is not None
    # The kernel path never built the normalised automaton for the verdict.
    assert callable(witness._normalised)
    database, run = witness.finite_witness(5)
    assert len(run) == 5
    assert run.is_valid(witness.normalised.automaton, database)
    # Now it is materialised (and cached) on the witness.
    assert not callable(witness._normalised)
    assert witness.normalised.automaton.is_state_driven()
