"""Shared helpers for the test suite."""


def canonical_trace(rows):
    """Rename data values by first occurrence (isomorphism-invariant form)."""
    names = {}
    return tuple(
        tuple(names.setdefault(value, len(names)) for value in row) for row in rows
    )


def value_pool_of_size(count):
    return tuple("v%d" % index for index in range(count))


def projection_prefix_sets(automaton, view, m, length, limit=None):
    """Compare ``Pi_m`` of *automaton*'s prefixes with *view*'s prefixes.

    Returns ``(original, image)`` as sets of canonical traces.  Pool sizes
    are chosen so both enumerations are complete up to isomorphism: the
    original side needs up to ``length`` distinct visible values plus fresh
    values for the hidden registers (``length * hidden`` is a safe bound),
    the view side up to ``length`` visible values plus slack.
    """
    from repro.core.runs import generate_finite_runs
    from repro.db import Database, Signature

    database = Database(Signature.empty())
    # Visible values: up to `length` distinct.  Hidden registers never need
    # more than 2k+1 extra fresh values (the pool-completeness argument in
    # repro.core.runs): at any point at most k are held, so k+1 spares
    # always realise a "fresh distinct value" demand.
    original_pool = value_pool_of_size(length + 2 * automaton.k + 1)
    image_pool = value_pool_of_size(length + 1)
    original = {
        canonical_trace(tuple(row[:m] for row in run.data))
        for run in generate_finite_runs(
            automaton, database, length, pool=original_pool, limit=limit
        )
    }
    image = {
        canonical_trace(run.data)
        for run in generate_finite_runs(
            view.automaton, database, length, pool=image_pool, limit=limit
        )
        if view.satisfies_constraints(run)
    }
    return original, image
