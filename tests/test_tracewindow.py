"""Tests for the TraceWindow analysis (classes, G_w, G^w_h, realisation)."""

import pytest

from repro import (
    ExtendedAutomaton,
    GlobalConstraint,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    eq,
    neq,
    rel,
)
from repro.automata import Lasso
from repro.automata.regex import concat, literal, plus, star
from repro.core.tracewindow import TraceWindow

EMPTY = SigmaType()


@pytest.fixture
def carry_trace():
    """1 register, value carried forever: one big class."""
    keep = SigmaType([eq(X(1), Y(1))])
    return Lasso((), (("q", keep),)), keep


@pytest.fixture
def fresh_trace():
    """1 register, value changes at every step: all classes distinct."""
    change = SigmaType([neq(X(1), Y(1))])
    return Lasso((), (("q", change),)), change


class TestClasses:
    def test_carried_value_single_class(self, carry_trace):
        trace, _keep = carry_trace
        window = TraceWindow(trace, 1, length=5)
        assert window.same_class((0, 1), (4, 1))

    def test_fresh_values_distinct_classes(self, fresh_trace):
        trace, _change = fresh_trace
        window = TraceWindow(trace, 1, length=5)
        assert not window.same_class((0, 1), (1, 1))
        assert len({window.class_of(i, 1) for i in range(5)}) == 5

    def test_no_ring_artifacts(self, fresh_trace):
        """The window is an unfolding, not a ring: no wrap identification."""
        trace, _change = fresh_trace
        window = TraceWindow(trace, 1, length=3)
        assert window.conflict() is None


class TestInequalityEdges:
    def test_local_edges(self, fresh_trace):
        trace, _change = fresh_trace
        window = TraceWindow(trace, 1, length=4)
        assert len(window.inequality_edges()) == 3  # adjacent pairs

    def test_global_constraint_edges(self):
        constraint = GlobalConstraint(
            "neq", 1, 1, concat(literal("q"), plus(literal("q")))
        )
        trace = Lasso((), (("q", EMPTY),))
        window = TraceWindow(
            trace,
            1,
            length=4,
            inequality_constraints=[constraint],
            states=frozenset({"q"}),
        )
        # all pairs distinct: 6 edges among 4 singleton classes
        assert len(window.inequality_edges()) == 6

    def test_conflict_detection(self):
        """A global inequality against a carried value conflicts."""
        keep = SigmaType([eq(X(1), Y(1))])
        constraint = GlobalConstraint(
            "neq", 1, 1, concat(literal("q"), plus(literal("q")))
        )
        trace = Lasso((), (("q", keep),))
        window = TraceWindow(
            trace,
            1,
            length=4,
            inequality_constraints=[constraint],
            states=frozenset({"q"}),
        )
        assert window.conflict() is not None

    def test_equality_constraints_merge_classes(self):
        constraint = GlobalConstraint(
            "eq", 1, 1, concat(literal("q"), plus(literal("q")))
        )
        trace = Lasso((), (("q", EMPTY),))
        window = TraceWindow(
            trace,
            1,
            length=4,
            equality_constraints=[constraint],
            states=frozenset({"q"}),
        )
        assert window.same_class((0, 1), (3, 1))


class TestAdomAndGraph:
    @pytest.fixture
    def db_trace(self):
        guard = SigmaType([rel("P", X(1)), neq(X(1), Y(1))])
        return Lasso((), (("p", guard),))

    def test_adom_classes(self, db_trace):
        window = TraceWindow(db_trace, 1, length=4)
        assert len(window.adom_classes()) == 4

    def test_constraint_graph_growth(self, db_trace):
        """All-distinct adom values: G_w clique grows with the window --
        the Example 8 signature of unrealisability."""
        constraint = GlobalConstraint(
            "neq", 1, 1, concat(literal("p"), plus(literal("p")))
        )
        small = TraceWindow(
            db_trace, 1, length=3,
            inequality_constraints=[constraint], states=frozenset({"p"}),
        )
        large = TraceWindow(
            db_trace, 1, length=6,
            inequality_constraints=[constraint], states=frozenset({"p"}),
        )
        from repro.core.emptiness import clique_number

        assert clique_number(*small.constraint_graph()) < clique_number(
            *large.constraint_graph()
        )

    def test_no_database_no_vertices(self, fresh_trace):
        trace, _ = fresh_trace
        window = TraceWindow(trace, 1, length=4)
        vertices, edges = window.constraint_graph()
        assert vertices == [] and edges == set()


class TestCutGraphs:
    def test_single_crossing_edge(self, fresh_trace):
        """x1 != y1 yields exactly one crossing edge at each interior cut."""
        trace, _ = fresh_trace
        window = TraceWindow(trace, 1, length=6)
        # the final position may extend beyond the window (treated as
        # straddling with the default margin), so stop one cut early
        for h in range(4):
            left, right, edges = window.cut_graph(h)
            assert len(edges) == 1

    def test_straddling_classes_excluded(self, carry_trace):
        trace, _ = carry_trace
        window = TraceWindow(trace, 1, length=6)
        left, right, edges = window.cut_graph(2)
        # the single carried class straddles every cut: no vertices remain
        assert left == [] or right == []
        assert edges == set()


class TestRealization:
    def test_realize_fresh(self, fresh_trace):
        trace, _ = fresh_trace
        window = TraceWindow(trace, 1, length=5)
        database, run = window.realize(Signature.empty())
        assert len({row[0] for row in run.data}) == 5

    def test_realize_carry(self, carry_trace):
        trace, _ = carry_trace
        window = TraceWindow(trace, 1, length=5)
        _database, run = window.realize(Signature.empty())
        assert len({row[0] for row in run.data}) == 1

    def test_realize_with_database_facts(self):
        signature = Signature(relations={"P": 1})
        guard = SigmaType([rel("P", X(1)), eq(X(1), Y(1))])
        trace = Lasso((), (("p", guard),))
        window = TraceWindow(trace, 1, length=4)
        database, run = window.realize(signature)
        assert database.size() >= 1
        value = run.data[0][0]
        assert database.holds("P", (value,))

    def test_realize_conflict_returns_none(self):
        keep = SigmaType([eq(X(1), Y(1))])
        constraint = GlobalConstraint(
            "neq", 1, 1, concat(literal("q"), plus(literal("q")))
        )
        trace = Lasso((), (("q", keep),))
        window = TraceWindow(
            trace, 1, length=4,
            inequality_constraints=[constraint], states=frozenset({"q"}),
        )
        assert window.realize(Signature.empty()) is None

    def test_positive_negative_clash_returns_none(self):
        from repro import nrel

        signature = Signature(relations={"P": 1})
        asserts = SigmaType([rel("P", X(1)), eq(X(1), Y(1))])
        denies = SigmaType([nrel("P", X(1)), eq(X(1), Y(1))])
        trace = Lasso((), (("a", asserts), ("b", denies)))
        window = TraceWindow(trace, 1, length=4)
        assert window.realize(signature) is None
