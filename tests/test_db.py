"""Unit tests for repro.db: schemas, databases, evaluation."""

import pytest

from repro.db import Database, Signature, evaluate_formula, evaluate_type
from repro.db.evaluation import evaluate_literal, transition_valuation
from repro.foundations.errors import EvaluationError, SpecificationError
from repro.logic import SigmaType, X, Y, eq, neq, nrel, rel
from repro.logic.formulas import And, Not, Or, atom_eq, atom_rel
from repro.logic.terms import Const


@pytest.fixture
def graph_db():
    signature = Signature(relations={"E": 2, "U": 1}, constants=("root",))
    return Database(
        signature,
        relations={"E": [("a", "b"), ("b", "c")], "U": [("a",)]},
        constants={"root": "a"},
    )


class TestSignature:
    def test_empty(self):
        assert Signature.empty().is_empty()

    def test_arity_lookup(self, graph_db):
        assert graph_db.signature.arity("E") == 2

    def test_unknown_relation_raises(self):
        with pytest.raises(SpecificationError):
            Signature().arity("R")

    def test_negative_arity_rejected(self):
        with pytest.raises(SpecificationError):
            Signature(relations={"R": -1})

    def test_duplicate_constants_rejected(self):
        with pytest.raises(SpecificationError):
            Signature(constants=("c", "c"))

    def test_extend(self):
        signature = Signature(relations={"R": 1}).extend({"S": 2}, ["c"])
        assert signature.arity("S") == 2
        assert signature.constants == ("c",)

    def test_extend_conflicting_arity_rejected(self):
        with pytest.raises(SpecificationError):
            Signature(relations={"R": 1}).extend({"R": 2})


class TestDatabase:
    def test_active_domain(self, graph_db):
        assert graph_db.active_domain() == frozenset({"a", "b", "c"})

    def test_holds(self, graph_db):
        assert graph_db.holds("E", ("a", "b"))
        assert not graph_db.holds("E", ("b", "a"))

    def test_constants_required(self):
        signature = Signature(constants=("c",))
        with pytest.raises(SpecificationError):
            Database(signature)

    def test_wrong_arity_rejected(self):
        signature = Signature(relations={"E": 2})
        with pytest.raises(SpecificationError):
            Database(signature, relations={"E": [("a",)]})

    def test_unknown_relation_rejected(self):
        with pytest.raises(SpecificationError):
            Database(Signature.empty(), relations={"R": [("a",)]})

    def test_with_and_without_facts(self, graph_db):
        extended = graph_db.with_facts("E", [("c", "a")])
        assert extended.holds("E", ("c", "a"))
        shrunk = extended.without_facts("E", [("c", "a")])
        assert not shrunk.holds("E", ("c", "a"))
        assert shrunk == graph_db

    def test_rename_values(self, graph_db):
        renamed = graph_db.rename_values({"a": "z"})
        assert renamed.holds("E", ("z", "b"))
        assert renamed.constant_value("root") == "z"

    def test_rename_must_be_injective(self, graph_db):
        with pytest.raises(SpecificationError):
            graph_db.rename_values({"a": "b"})

    def test_size(self, graph_db):
        assert graph_db.size() == 3


class TestEvaluation:
    def test_type_evaluation(self, graph_db):
        delta = SigmaType([rel("E", X(1), Y(1)), eq(X(2), Y(2))])
        valuation = transition_valuation(("a", "k"), ("b", "k"))
        assert evaluate_type(delta, graph_db, valuation)

    def test_negative_literal(self, graph_db):
        valuation = transition_valuation(("b",), ("a",))
        assert evaluate_literal(nrel("E", X(1), Y(1)), graph_db, valuation)

    def test_constants_resolve(self, graph_db):
        delta = SigmaType([eq(X(1), Const("root"))])
        assert evaluate_type(delta, graph_db, transition_valuation(("a",), ("b",)))
        assert not evaluate_type(delta, graph_db, transition_valuation(("b",), ("a",)))

    def test_missing_variable_raises(self, graph_db):
        with pytest.raises(EvaluationError):
            evaluate_literal(eq(X(1), X(2)), graph_db, {})

    def test_formula_connectives(self, graph_db):
        formula = Or((atom_rel("U", X(1)), Not(atom_eq(X(1), X(1)))))
        assert evaluate_formula(formula, graph_db, transition_valuation(("a",), ()))
        assert not evaluate_formula(
            formula, graph_db, transition_valuation(("b",), ())
        )

    def test_transition_valuation_layout(self):
        valuation = transition_valuation(("u", "v"), ("w",))
        assert valuation[X(1)] == "u"
        assert valuation[X(2)] == "v"
        assert valuation[Y(1)] == "w"
