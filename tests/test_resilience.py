"""The resilient execution layer: deadlines, budgets, faults, recovery.

Four layers under test:

* the vocabulary (``repro.foundations.resilience``): monotonic deadlines
  with ambient scoping, hierarchical budgets, cancellation tokens,
  outcome taxonomy, and the structured RS00x event log;
* the fault harness (``repro.foundations.faults``): ``REPRO_FAULTS``
  parsing, per-site occurrence counters, call-time re-parsing;
* the hardened parallel map (``repro.core.parallel``): worker-crash
  recovery (respawn, then bit-identical serial fallback), the
  poisoned-executor regression, spawn retries, unpicklable-workload
  degradation, and the early-consumer-exit drain;
* deadline-aware procedures: ``check_emptiness`` returning honest
  ``TIMEOUT`` outcomes, the Buchi enumeration, guard completion,
  Theorem 24 and streaming checkpoints, the budgeted dataflow analysis,
  and the CLI's partial-report interrupt path.

Hypothesis properties pin the two acceptance contracts: deadline-expired
emptiness outcomes are UNKNOWN-monotone (a longer deadline never flips a
definite verdict), and fault-injected parallel runs answer byte-
identically to the serial path.
"""

import functools
import os
import random
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Budget,
    CancellationToken,
    Deadline,
    DeadlineExceeded,
    ExtendedAutomaton,
    GlobalConstraint,
    Outcome,
    OutcomeStatus,
    RegisterAutomaton,
    SigmaType,
    Signature,
    StreamingChecker,
    X,
    Y,
    check_emptiness,
    eq,
    project_with_database,
)
from repro.analysis.cli import main as cli_main
from repro.analysis.dataflow import (
    DEFAULT_EDGE_BUDGET,
    MAX_REGISTERS,
    analyze_reachable_types,
    reachable_types_outcome,
)
from repro.automata.regex import concat, literal, plus
from repro.core.parallel import (
    imap_chunked,
    max_pool_retries,
    parallel_map,
    shutdown_executor,
    worker_count,
)
from repro.core.runs import FiniteRun
from repro.db.database import Database
from repro.foundations.faults import (
    FaultInjected,
    fault,
    fault_hits,
    parse_fault_plan,
    reset_faults,
)
from repro.foundations.resilience import (
    OperationCancelled,
    current_deadline,
    deadline_scope,
    drain_events,
    recent_events,
)
from repro.generators import random_extended_automaton


# --------------------------------------------------------------------- #
# fixtures and helpers
# --------------------------------------------------------------------- #


def _example23(constrained=True):
    """The Example 2/3 automaton (with the q1 q2+ q1 inequality factor)."""
    d1 = SigmaType([eq(X(1), X(2)), eq(X(2), Y(2))])
    d2 = SigmaType([eq(X(2), Y(2))])
    d3 = SigmaType([eq(X(2), Y(2)), eq(Y(1), Y(2))])
    automaton = RegisterAutomaton(
        2,
        Signature.empty(),
        {"q1", "q2"},
        {"q1"},
        {"q1"},
        [("q1", d1, "q2"), ("q2", d2, "q2"), ("q2", d3, "q1")],
    )
    constraints = []
    if constrained:
        factor = concat(literal("q1"), plus(literal("q2")), literal("q1"))
        constraints = [GlobalConstraint("neq", 1, 1, factor)]
    return ExtendedAutomaton(automaton, constraints)


def _fingerprint(result):
    witness = result.witness
    return (
        result.empty,
        result.exact,
        result.candidates_checked,
        result.max_prefix,
        result.max_cycle,
        None if witness is None else witness.trace,
    )


@pytest.fixture(autouse=True)
def _clean_harness(monkeypatch):
    """Every test starts with no faults, no events, and a fresh pool."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_DEADLINE_MS", raising=False)
    monkeypatch.setenv("REPRO_POOL_BACKOFF_MS", "0")
    reset_faults()
    drain_events()
    yield
    reset_faults()
    drain_events()
    shutdown_executor()


@pytest.fixture
def two_workers(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "2")
    assert worker_count() == 2
    yield
    shutdown_executor()


def _square(x):
    return x * x


def _mark_and_sleep(directory, item):
    with open(os.path.join(directory, "item-%d" % item), "w") as handle:
        handle.write("done")
    time.sleep(0.05)
    return item


# --------------------------------------------------------------------- #
# Deadline
# --------------------------------------------------------------------- #


class TestDeadline:
    def test_generous_deadline_does_not_expire(self):
        deadline = Deadline(3600)
        assert not deadline.expired()
        deadline.check("unit")  # must not raise
        assert deadline.remaining() > 3000
        assert deadline.budget_ms == pytest.approx(3_600_000)

    def test_zero_deadline_expires_immediately(self):
        deadline = Deadline(0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceeded):
            deadline.check("unit")

    def test_check_message_names_the_site(self):
        with pytest.raises(DeadlineExceeded, match="lasso-loop"):
            Deadline(0).check("lasso-loop")

    def test_from_env_parsing(self, monkeypatch):
        for raw, expected in [
            ("", None),
            ("   ", None),
            ("junk", None),
            ("-5", None),
            ("250", 250.0),
            ("0", 0.0),
        ]:
            monkeypatch.setenv("REPRO_DEADLINE_MS", raw)
            deadline = Deadline.from_env()
            if expected is None:
                assert deadline is None
            else:
                assert deadline.budget_ms == pytest.approx(expected)
        monkeypatch.delenv("REPRO_DEADLINE_MS")
        assert Deadline.from_env() is None

    def test_resolve(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEADLINE_MS", raising=False)
        assert Deadline.resolve(None) is None
        monkeypatch.setenv("REPRO_DEADLINE_MS", "100")
        assert Deadline.resolve(None).budget_ms == pytest.approx(100.0)
        existing = Deadline(5)
        assert Deadline.resolve(existing) is existing
        assert Deadline.resolve(0).expired()
        assert Deadline.resolve(60_000).budget_ms == pytest.approx(60_000)
        # negative means "no deadline", matching from_env -- never an
        # instantly-expired one
        assert Deadline.resolve(-5) is None
        assert Deadline.resolve(-0.1) is None

    def test_ambient_scope_nesting(self):
        assert current_deadline() is None
        outer, inner = Deadline(100), Deadline(50)
        with deadline_scope(outer):
            assert current_deadline() is outer
            with deadline_scope(None):  # no-op scope keeps the outer visible
                assert current_deadline() is outer
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer
        assert current_deadline() is None

    def test_scope_pops_on_exception(self):
        with pytest.raises(RuntimeError):
            with deadline_scope(Deadline(100)):
                raise RuntimeError("boom")
        assert current_deadline() is None


# --------------------------------------------------------------------- #
# Budget
# --------------------------------------------------------------------- #


class TestBudget:
    def test_unlimited_budget_never_exhausts(self):
        budget = Budget("root")
        assert budget.charge(10_000)
        assert not budget.exhausted
        assert budget.remaining() is None

    def test_limit_is_exceeded_not_reached(self):
        budget = Budget("edges", 3)
        for _ in range(3):
            assert budget.charge()  # spending up to the limit is fine
        assert not budget.exhausted
        assert not budget.charge()  # the 4th unit tips it over
        assert budget.exhausted
        assert budget.spent == 4
        assert budget.remaining() == 0

    def test_child_charges_ancestors(self):
        root = Budget("root", 10)
        child = root.scope("child")
        child.charge(4)
        assert root.spent == 4
        assert child.spent == 4

    def test_exhausted_ancestor_stops_child(self):
        root = Budget("root", 2)
        child = root.scope("child", 100)
        assert child.charge(2)
        assert not child.charge()  # root is over, child's own limit is not
        assert child.exhausted

    def test_sibling_scopes_share_the_root(self):
        root = Budget("dataflow", 5)
        left, right = root.scope("left"), root.scope("right")
        left.charge(3)
        right.charge(3)
        assert root.spent == 6
        assert root.exhausted

    def test_snapshot_is_json_ready(self):
        import json

        root = Budget("dataflow")
        root.scope("registers", 6).charge(2)
        root.scope("edges", 100).charge(7)
        snapshot = root.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["spent"] == 9
        children = {c["name"]: c for c in snapshot["children"]}
        assert children["registers"]["spent"] == 2
        assert children["edges"]["limit"] == 100


# --------------------------------------------------------------------- #
# CancellationToken and Outcome
# --------------------------------------------------------------------- #


class TestTokenAndOutcome:
    def test_token_fires_once_and_keeps_reason(self):
        token = CancellationToken()
        token.check("anywhere")  # live: no raise
        token.cancel("shutdown requested")
        token.cancel("second reason ignored")
        assert token.cancelled
        with pytest.raises(OperationCancelled, match="shutdown requested"):
            token.check("loop")

    def test_outcome_constructors(self):
        done = Outcome.complete(42, items=3)
        assert done.ok and done.value == 42 and done.stats == {"items": 3}
        late = Outcome.timeout(candidates_checked=7)
        assert not late.ok
        assert late.status is OutcomeStatus.TIMEOUT
        assert late.as_dict() == {
            "status": "timeout",
            "stats": {"candidates_checked": 7},
        }
        assert Outcome.degraded(reason="edge-budget").status is OutcomeStatus.DEGRADED
        assert Outcome.cancelled().status is OutcomeStatus.CANCELLED


# --------------------------------------------------------------------- #
# the fault harness
# --------------------------------------------------------------------- #


class TestFaultPlan:
    def test_parse_single_entry(self):
        plan = parse_fault_plan("parallel.call_chunk:exit:1")
        assert plan.fire("parallel.call_chunk") == "exit"
        assert plan.fire("parallel.call_chunk") is None  # nth=1 only

    def test_parse_range_and_star(self):
        plan = parse_fault_plan("a:raise:2-3,b:exit:*")
        assert [plan.fire("a") for _ in range(4)] == [None, "raise", "raise", None]
        assert [plan.fire("b") for _ in range(3)] == ["exit"] * 3

    def test_default_selector_is_every_hit(self):
        plan = parse_fault_plan("site:raise")
        assert [plan.fire("site") for _ in range(2)] == ["raise", "raise"]

    def test_counters_are_per_site(self):
        plan = parse_fault_plan("a:raise:2")
        assert plan.fire("b") is None  # unrelated site still counts its own
        assert plan.fire("a") is None
        assert plan.fire("a") == "raise"
        assert plan.hits("a") == 2 and plan.hits("b") == 1

    @pytest.mark.parametrize("bad", ["justasite", "a:b:c:d", ":kind:1", "site::1"])
    def test_malformed_plans_fail_loudly(self, bad):
        with pytest.raises(ValueError):
            parse_fault_plan(bad)

    def test_env_plan_reparses_on_change(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "site:raise:2")
        assert fault("site") is None
        assert fault("site") == "raise"
        # changing the knob resets occurrence numbering
        monkeypatch.setenv("REPRO_FAULTS", "site:raise:1")
        assert fault("site") == "raise"
        monkeypatch.delenv("REPRO_FAULTS")
        assert fault("site") is None
        assert fault_hits("site") == 0


# --------------------------------------------------------------------- #
# parallel: knobs and plain behaviour
# --------------------------------------------------------------------- #


class TestParallelKnobs:
    def test_max_pool_retries_parsing(self, monkeypatch):
        for raw, expected in [
            ("", 1),
            ("0", 0),
            ("3", 3),
            ("junk", 1),
            ("-1", 1),
            ("999", 16),
        ]:
            monkeypatch.setenv("REPRO_MAX_POOL_RETRIES", raw)
            assert max_pool_retries() == expected
        monkeypatch.delenv("REPRO_MAX_POOL_RETRIES")
        assert max_pool_retries() == 1

    def test_pool_path_matches_serial(self, two_workers):
        items = list(range(37))
        assert parallel_map(_square, items, chunk_size=4) == [_square(i) for i in items]


# --------------------------------------------------------------------- #
# parallel: crash recovery (the tentpole scenarios)
# --------------------------------------------------------------------- #


class TestPoolRecovery:
    def test_worker_crash_recovers_with_identical_results(
        self, two_workers, monkeypatch
    ):
        """Every fresh worker dies on its first chunk: respawn once, then the
        serial fallback -- and the consumer sees the exact serial answers."""
        monkeypatch.setenv("REPRO_FAULTS", "parallel.call_chunk:exit:1")
        items = list(range(23))
        results = parallel_map(_square, items, chunk_size=4)
        assert results == [_square(i) for i in items]
        broken = recent_events("RS001")
        degraded = recent_events("RS002")
        assert len(broken) >= 1  # at least the first crash was recovered
        assert len(degraded) == 1  # exactly one serial degradation
        assert degraded[0].data["reason"] == "pool-broken-after-retries"

    def test_late_worker_crash_loses_no_results(self, monkeypatch):
        """Regression: workers that complete some chunks before dying must
        not lose fetched-but-unyielded results.  With exit:2-5 every fresh
        worker finishes its first chunk, then dies -- the pool can break
        while the head chunk's results are in hand, exactly the window
        where the old code dropped whole chunks on the floor."""
        monkeypatch.setenv("REPRO_WORKERS", "4")
        monkeypatch.setenv("REPRO_FAULTS", "parallel.call_chunk:exit:2-5")
        items = list(range(120))
        expected = [_square(i) for i in items]
        for _ in range(3):  # the loss was timing-dependent: repeat
            assert parallel_map(_square, items, chunk_size=4) == expected

    def test_iterator_exceptions_propagate(self, two_workers):
        """An items iterator raising TypeError/AttributeError must propagate,
        not be mistaken for an unpicklable workload (whose serial fallback
        would silently truncate: the generator is already terminated)."""

        def blows_up():
            yield from range(8)
            raise TypeError("iterator blew up")

        with pytest.raises(TypeError, match="iterator blew up"):
            list(imap_chunked(_square, blows_up(), chunk_size=2))
        degraded = recent_events("RS002")
        assert degraded == ()  # no bogus serial degradation was recorded

    def test_zero_retries_goes_straight_to_serial(self, two_workers, monkeypatch):
        """REPRO_MAX_POOL_RETRIES=0: the first broken pool skips the respawn
        and finishes on the serial path."""
        monkeypatch.setenv("REPRO_FAULTS", "parallel.call_chunk:exit:1")
        monkeypatch.setenv("REPRO_MAX_POOL_RETRIES", "0")
        items = list(range(30))
        results = parallel_map(_square, items, chunk_size=4)
        assert results == [_square(i) for i in items]
        assert len(recent_events("RS001")) == 1  # no second pool was tried
        assert len(recent_events("RS002")) == 1

    def test_executor_is_not_poisoned_after_crash(self, two_workers, monkeypatch):
        """Regression: a broken pool used to stay cached forever, failing every
        later imap_chunked call in the process."""
        monkeypatch.setenv("REPRO_FAULTS", "parallel.call_chunk:exit:1")
        assert parallel_map(_square, list(range(9)), chunk_size=2) == [
            _square(i) for i in range(9)
        ]
        # Faults off: the next call must get a fresh, healthy pool.
        monkeypatch.delenv("REPRO_FAULTS")
        reset_faults()
        drain_events()
        assert parallel_map(_square, list(range(40)), chunk_size=4) == [
            _square(i) for i in range(40)
        ]
        assert recent_events("RS001") == ()
        assert recent_events("RS002") == ()

    def test_spawn_failure_retries_then_succeeds(self, two_workers, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "parallel.spawn:raise:1")
        shutdown_executor()  # force a genuine spawn on the next call
        items = list(range(12))
        assert parallel_map(_square, items, chunk_size=3) == [_square(i) for i in items]
        spawn_events = recent_events("RS005")
        assert len(spawn_events) == 1
        assert recent_events("RS002") == ()  # the retry made the pool work

    def test_persistent_spawn_failure_degrades_to_serial(
        self, two_workers, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "parallel.spawn:raise:*")
        shutdown_executor()
        items = list(range(12))
        assert parallel_map(_square, items, chunk_size=3) == [_square(i) for i in items]
        assert len(recent_events("RS005")) == 2  # initial + one retry
        degraded = recent_events("RS002")
        assert len(degraded) == 1
        assert degraded[0].data["reason"] == "spawn-failed"

    def test_unpicklable_workload_falls_back_to_serial(self, two_workers):
        unpicklable = lambda x: x + 1  # noqa: E731  -- deliberately unpicklable
        items = list(range(10))
        assert parallel_map(unpicklable, items, chunk_size=2) == [i + 1 for i in items]
        degraded = recent_events("RS002")
        assert len(degraded) == 1
        assert degraded[0].data["reason"] == "unpicklable-workload"

    def test_genuine_exceptions_still_propagate(self, two_workers, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "parallel.call_chunk:raise:1")
        with pytest.raises(FaultInjected):
            parallel_map(_square, list(range(8)), chunk_size=2)

    def test_early_exit_drains_running_chunks(self, two_workers, tmp_path):
        """Closing the generator cancels pending chunks and waits out the
        running ones: no stray results appear after the close returns."""
        fn = functools.partial(_mark_and_sleep, str(tmp_path))
        results = imap_chunked(fn, list(range(40)), chunk_size=4)
        first = next(results)
        assert first == 0
        results.close()  # cancel + drain
        after_close = len(list(tmp_path.iterdir()))
        time.sleep(0.5)
        after_wait = len(list(tmp_path.iterdir()))
        assert after_close == after_wait, "chunks kept computing after close"
        # Bounded in-flight means most of the work was never dispatched.
        assert after_close <= 24

    def test_crash_recovery_on_emptiness_matches_serial(
        self, two_workers, monkeypatch
    ):
        """The acceptance scenario: Example 2/3 emptiness under worker crashes
        answers byte-identically to the serial run, without raising."""
        extended = _example23(constrained=True)
        monkeypatch.setenv("REPRO_WORKERS", "1")
        serial = _fingerprint(check_emptiness(extended, max_prefix=2, max_cycle=4))
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_FAULTS", "parallel.call_chunk:exit:1")
        recovered = _fingerprint(check_emptiness(extended, max_prefix=2, max_cycle=4))
        assert recovered == serial


# --------------------------------------------------------------------- #
# emptiness deadlines
# --------------------------------------------------------------------- #


class TestEmptinessDeadline:
    def test_expired_deadline_returns_timeout_outcome(self):
        result = check_emptiness(_example23(), deadline=0)
        assert result.verdict == "unknown"
        assert result.outcome is not None
        assert result.outcome.status is OutcomeStatus.TIMEOUT
        assert result.empty and not result.exact  # same epistemic state as a bound
        assert result.outcome.stats["candidates_checked"] == result.candidates_checked
        events = recent_events("RS003")
        assert len(events) == 1

    def test_env_knob_is_read_at_call_time(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEADLINE_MS", "0")
        result = check_emptiness(_example23(constrained=False))
        assert result.verdict == "unknown"
        monkeypatch.delenv("REPRO_DEADLINE_MS")
        # same call, knob unset: the definite answer comes back
        assert check_emptiness(_example23(constrained=False)).verdict == "nonempty"

    def test_generous_deadline_matches_no_deadline(self):
        bare = _fingerprint(check_emptiness(_example23(), max_prefix=2, max_cycle=4))
        timed = check_emptiness(
            _example23(), max_prefix=2, max_cycle=4, deadline=Deadline(3600)
        )
        assert _fingerprint(timed) == bare
        assert timed.outcome is None  # completed: no degradation to report

    def test_fault_forced_expiry_is_deterministic(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "emptiness.lasso:deadline:2")
        first = check_emptiness(_example23(), max_prefix=2, max_cycle=4)
        reset_faults()
        second = check_emptiness(_example23(), max_prefix=2, max_cycle=4)
        assert first.verdict == second.verdict == "unknown"
        assert first.candidates_checked == second.candidates_checked == 1
        assert first.outcome.stats == second.outcome.stats

    def test_fault_forced_expiry_identical_under_workers(
        self, two_workers, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "emptiness.lasso:deadline:2")
        parallel = check_emptiness(_example23(), max_prefix=2, max_cycle=4)
        monkeypatch.setenv("REPRO_WORKERS", "1")
        reset_faults()
        serial = check_emptiness(_example23(), max_prefix=2, max_cycle=4)
        assert parallel.outcome.stats == serial.outcome.stats
        assert parallel.candidates_checked == serial.candidates_checked == 1

    def test_cancellation_token_produces_cancelled_outcome(self):
        token = CancellationToken()
        token.cancel("user hit stop")
        result = check_emptiness(_example23(), cancel=token)
        assert result.verdict == "unknown"
        assert result.outcome.status is OutcomeStatus.CANCELLED

    def test_interrupt_fault_propagates_keyboard_interrupt(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "emptiness.lasso:interrupt:1")
        with pytest.raises(KeyboardInterrupt):
            check_emptiness(_example23())

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        cutoff=st.integers(min_value=1, max_value=6),
    )
    def test_unknown_monotone(self, seed, cutoff):
        """A truncated run either says UNKNOWN or agrees with the full run."""
        extended = random_extended_automaton(
            random.Random(seed),
            k=2,
            n_states=3,
            n_transitions=4,
            n_constraints=2,
            equality_fraction=0.0,
        )
        try:
            os.environ["REPRO_FAULTS"] = "emptiness.lasso:deadline:%d" % cutoff
            reset_faults()
            truncated = check_emptiness(extended, max_prefix=1, max_cycle=3)
        finally:
            os.environ.pop("REPRO_FAULTS", None)
            reset_faults()
        full = check_emptiness(extended, max_prefix=1, max_cycle=3)
        if truncated.verdict != "unknown":
            # the cutoff never fired or fired after the answer: verdicts agree
            assert truncated.verdict == full.verdict
        assert truncated.candidates_checked <= full.candidates_checked or (
            full.verdict == "nonempty"
        )

    @settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_fault_injected_parallel_matches_serial(self, seed):
        """Crashing workers never change the answer or the progress stats."""
        extended = random_extended_automaton(
            random.Random(seed),
            k=2,
            n_states=3,
            n_transitions=4,
            n_constraints=2,
            equality_fraction=0.0,
        )
        serial = _fingerprint(check_emptiness(extended, max_prefix=1, max_cycle=3))
        try:
            os.environ["REPRO_WORKERS"] = "2"
            os.environ["REPRO_FAULTS"] = "parallel.call_chunk:exit:1"
            os.environ["REPRO_POOL_BACKOFF_MS"] = "0"
            reset_faults()
            injected = _fingerprint(
                check_emptiness(extended, max_prefix=1, max_cycle=3)
            )
        finally:
            os.environ.pop("REPRO_WORKERS", None)
            os.environ.pop("REPRO_FAULTS", None)
            reset_faults()
            shutdown_executor()
        assert injected == serial


# --------------------------------------------------------------------- #
# deadline checkpoints in the deep layers
# --------------------------------------------------------------------- #


class TestDeepCheckpoints:
    def test_buchi_enumeration_honours_explicit_deadline(self):
        from repro.core.symbolic import scontrol_buchi

        buchi = scontrol_buchi(_example23(constrained=False).automaton)
        with pytest.raises(DeadlineExceeded):
            list(buchi.iter_accepted_lassos(3, 2, deadline=Deadline(0)))
        # and the ambient deadline works without the parameter
        with deadline_scope(Deadline(0)):
            with pytest.raises(DeadlineExceeded):
                list(buchi.iter_accepted_lassos(3, 2))

    def test_completions_interruptible_and_memo_unpoisoned(self):
        relations = {"R": 1}
        variables = (X(1), X(2))
        base = SigmaType([eq(X(1), X(1))])
        with deadline_scope(Deadline(0)):
            with pytest.raises(DeadlineExceeded):
                list(base.completions(relations, variables))
        # The aborted enumeration must not have seeded the memo: a fresh
        # call enumerates the full set, matching a structurally disjoint
        # twin with the same combinatorics.
        survived = list(base.completions(relations, variables))
        twin = SigmaType([eq(Y(1), Y(1))]).completions(relations, (Y(1), Y(2)))
        assert len(survived) == len(list(twin))
        assert len(survived) > 0

    def test_theorem24_interruptible(self, example23_automaton):
        with deadline_scope(Deadline(0)):
            with pytest.raises(DeadlineExceeded):
                project_with_database(example23_automaton, 1)

    def test_streaming_feed_run_interruptible(self):
        extended = _example23(constrained=False)
        checker = StreamingChecker(
            extended, Database(Signature.empty()), strict=False
        )
        run = FiniteRun((("a", "a"),), ("q1",), ())
        with deadline_scope(Deadline(0)):
            with pytest.raises(DeadlineExceeded):
                checker.feed_run(run)


# --------------------------------------------------------------------- #
# budgeted dataflow
# --------------------------------------------------------------------- #


def _tiny_automaton(k=2):
    guard = SigmaType([eq(X(1), Y(1))])
    return RegisterAutomaton(
        k,
        Signature.empty(),
        {"a", "b"},
        {"a"},
        {"b"},
        [("a", guard, "b"), ("b", guard, "a")],
    )


class TestDataflowBudget:
    def test_register_cap_degrades_with_snapshot(self):
        wide = _tiny_automaton(k=MAX_REGISTERS + 1)
        outcome = reachable_types_outcome(wide)
        assert outcome.status is OutcomeStatus.DEGRADED
        assert outcome.value is None
        assert outcome.stats["reason"] == "register-cap"
        children = {c["name"]: c for c in outcome.stats["budget"]["children"]}
        assert children["registers"]["spent"] == MAX_REGISTERS + 1
        assert children["registers"]["exhausted"]
        assert analyze_reachable_types(wide) is None  # wrapper contract intact
        events = recent_events("RS004")
        assert events and events[-1].data["reason"] == "register-cap"

    def test_edge_budget_degrades_exactly_like_the_int_cap(self):
        automaton = _tiny_automaton()
        full = reachable_types_outcome(automaton, DEFAULT_EDGE_BUDGET)
        assert full.ok
        evaluations = full.value.edge_evaluations
        assert evaluations > 0
        # budget == actual effort: completes (the cap is exceeded, not reached)
        assert reachable_types_outcome(automaton, evaluations).ok
        # one unit less: degrades, and the snapshot shows where it stopped
        starved = reachable_types_outcome(automaton, evaluations - 1)
        assert starved.status is OutcomeStatus.DEGRADED
        assert starved.stats["reason"] == "edge-budget"
        children = {c["name"]: c for c in starved.stats["budget"]["children"]}
        assert children["edges"]["spent"] == evaluations
        assert analyze_reachable_types(automaton, evaluations - 1) is None

    def test_df005_diagnostic_carries_budget_data(self):
        from repro.analysis.passes_dataflow import dataflow_feasibility_pass

        findings = list(dataflow_feasibility_pass.run(_tiny_automaton(k=MAX_REGISTERS + 1)))
        assert [f.code for f in findings] == ["DF005"]
        assert findings[0].data["reason"] == "register-cap"
        assert findings[0].data["budget"]["children"]


# --------------------------------------------------------------------- #
# CLI interrupt
# --------------------------------------------------------------------- #


class TestCliInterrupt:
    def test_interrupt_yields_partial_report_and_130(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        interrupted = tmp_path / "interrupted.py"
        interrupted.write_text("raise KeyboardInterrupt\n")
        never = tmp_path / "never.py"
        never.write_text("x = 2\n")
        code = cli_main([str(good), str(interrupted), str(never)])
        assert code == 130
        output = capsys.readouterr().out
        assert "XX002" in output

    def test_interrupt_during_render_still_partial(
        self, tmp_path, capsys, monkeypatch
    ):
        """A Ctrl-C landing in report rendering (after analysis finished)
        must still produce the XX002 partial report and exit 130, not a
        traceback."""
        from repro.foundations.diagnostics import Report

        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        original = Report.render
        fired = []

        def interrupting_render(self, **kwargs):
            if not fired:
                fired.append(True)
                raise KeyboardInterrupt
            return original(self, **kwargs)

        monkeypatch.setattr(Report, "render", interrupting_render)
        code = cli_main([str(good)])
        assert code == 130
        assert "XX002" in capsys.readouterr().out

    def test_interrupt_json_payload_is_partial(self, tmp_path, capsys):
        import json

        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        interrupted = tmp_path / "interrupted.py"
        interrupted.write_text("raise KeyboardInterrupt\n")
        never = tmp_path / "never.py"
        never.write_text("x = 2\n")
        code = cli_main(
            ["--format", "json", str(good), str(interrupted), str(never)]
        )
        assert code == 130
        payload = json.loads(capsys.readouterr().out)
        targets = [entry["target"] for entry in payload["reports"]]
        assert str(never) not in targets  # analysis stopped at the interrupt
        flat = json.dumps(payload)
        assert "XX002" in flat
