"""Unit tests for the LTL substrate and LTL-FO sentences."""

import pytest

from repro.automata import Lasso
from repro.foundations.errors import EvaluationError, SpecificationError
from repro.logic import SigmaType, X, Y, eq, neq
from repro.logic.formulas import Not, atom_eq
from repro.ltl import (
    And_,
    Eventually,
    FalseLtl,
    Globally,
    LtlFoSentence,
    Next,
    Not_,
    Or_,
    Prop,
    Release,
    TrueLtl,
    Until,
    evaluate_formula_under_type,
    ltl_to_buchi,
    nnf,
)
from repro.ltl.ltlfo import proposition_assignment
from repro.ltl.syntax import satisfies

p, q = Prop("p"), Prop("q")


def w(*letters, period):
    return Lasso(tuple(frozenset(l) for l in letters), tuple(frozenset(l) for l in period))


class TestNnf:
    def test_negated_globally(self):
        assert nnf(Not_(Globally(p))) == Until(TrueLtl(), Not_(p))

    def test_negated_eventually(self):
        assert nnf(Not_(Eventually(p))) == Release(FalseLtl(), Not_(p))

    def test_double_negation(self):
        assert nnf(Not_(Not_(p))) == p

    def test_de_morgan(self):
        assert nnf(Not_(And_(p, q))) == Or_(Not_(p), Not_(q))

    def test_until_release_duality(self):
        assert nnf(Not_(Until(p, q))) == Release(Not_(p), Not_(q))

    def test_next_commutes(self):
        assert nnf(Not_(Next(p))) == Next(Not_(p))


class TestOracle:
    def test_globally(self):
        assert satisfies(w(period=[{"p"}]), Globally(p))
        assert not satisfies(w({"p"}, period=[{}]), Globally(p))

    def test_eventually(self):
        assert satisfies(w({}, {}, period=[{"p"}]), Eventually(p))
        assert not satisfies(w({"q"}, period=[{}]), Eventually(p))

    def test_until(self):
        assert satisfies(w({"p"}, {"p"}, period=[{"q"}]), Until(p, q))
        assert not satisfies(w({"p"}, period=[{"p"}]), Until(p, q))

    def test_release(self):
        assert satisfies(w(period=[{"q"}]), Release(p, q))
        assert satisfies(w({"q"}, period=[{"p", "q"}]), Release(p, q))
        assert not satisfies(w({"q"}, {}, period=[{"q"}]), Release(p, q))

    def test_next(self):
        assert satisfies(w({}, {"p"}, period=[{}]), Next(p))

    def test_nested(self):
        formula = Globally(Or_(Not_(p), Eventually(q)))
        assert satisfies(w(period=[{"p"}, {"q"}]), formula)
        assert not satisfies(w({"q"}, period=[{"p"}]), formula)


class TestTranslation:
    CASES = [
        Globally(p),
        Eventually(p),
        Until(p, q),
        Release(p, q),
        Next(p),
        Globally(Or_(Not_(p), Eventually(q))),
        And_(Eventually(p), Eventually(q)),
        Globally(Eventually(p)),
        Eventually(Globally(p)),
    ]

    WORDS = [
        w(period=[{"p"}]),
        w(period=[{}]),
        w(period=[{"p"}, {"q"}]),
        w(period=[{"q"}]),
        w({"p"}, period=[{}]),
        w({}, {"p"}, period=[{"q"}]),
        w({"p", "q"}, period=[{"p"}]),
        w(period=[{}, {"p"}, {"p", "q"}]),
    ]

    @pytest.mark.parametrize("formula", CASES, ids=repr)
    def test_translation_matches_oracle(self, formula):
        # the translated NBA reads letters over exactly the formula's
        # propositions, so project the test words onto that vocabulary
        automaton, props = ltl_to_buchi(formula)
        for word in self.WORDS:
            projected = word.map(lambda letter: frozenset(letter) & props)
            assert automaton.accepts(projected) == satisfies(word, formula), (
                formula,
                word,
            )

    def test_negation_is_complement_on_samples(self):
        formula = Globally(Or_(Not_(p), Eventually(q)))
        positive, props = ltl_to_buchi(formula)
        negative, _ = ltl_to_buchi(Not_(formula))
        for word in self.WORDS:
            projected = word.map(lambda letter: frozenset(letter) & props)
            assert positive.accepts(projected) != negative.accepts(projected)


class TestLtlFo:
    def test_missing_proposition_definition_rejected(self):
        with pytest.raises(SpecificationError):
            LtlFoSentence(skeleton=Globally(Prop("r")), propositions={})

    def test_undeclared_global_rejected(self):
        from repro.logic.terms import Var

        with pytest.raises(SpecificationError):
            LtlFoSentence(
                skeleton=Globally(Prop("r")),
                propositions={"r": atom_eq(X(1), Var("z1"))},
            )

    def test_declared_global_accepted(self):
        from repro.logic.terms import Var

        sentence = LtlFoSentence(
            skeleton=Globally(Prop("r")),
            propositions={"r": atom_eq(X(1), Var("z1"))},
            global_vars=(Var("z1"),),
        )
        assert sentence.has_globals()

    def test_evaluate_under_complete_type(self):
        delta = SigmaType([eq(X(1), X(2)), eq(X(1), Y(1)), eq(X(2), Y(2))])
        assert evaluate_formula_under_type(atom_eq(X(1), X(2)), delta)
        assert evaluate_formula_under_type(atom_eq(Y(1), Y(2)), delta)
        assert not evaluate_formula_under_type(Not(atom_eq(X(1), X(2))), delta)

    def test_unsettled_atom_raises(self):
        delta = SigmaType([eq(X(1), Y(1))])
        with pytest.raises(EvaluationError):
            evaluate_formula_under_type(atom_eq(X(1), X(2)), delta)

    def test_proposition_assignment(self):
        sentence = LtlFoSentence(
            skeleton=Globally(Prop("same")),
            propositions={"same": atom_eq(X(1), X(2))},
        )
        equal = SigmaType([eq(X(1), X(2)), eq(X(1), Y(1)), eq(X(2), Y(2)), eq(Y(1), Y(2))])
        different = SigmaType([neq(X(1), X(2)), eq(X(1), Y(1)), eq(X(2), Y(2)), neq(Y(1), Y(2))])
        assert proposition_assignment(sentence, equal) == frozenset({"same"})
        assert proposition_assignment(sentence, different) == frozenset()
