"""Tests for the crash-surviving monitor multiplexer (`repro.core.monitor`).

The load-bearing contract: for every fault scenario the harness can
inject (worker crash mid-ingest, driver volatile-state loss, failed
snapshots, failed restores, poison events), the per-session final
``(state, position, failed, peak_threads)`` fingerprints are
byte-identical to the fault-free serial run -- zero lost and zero
double-applied events.  Several tests deliberately tolerate an *ambient*
``REPRO_FAULTS`` plan (the CI fault-smoke leg runs this file under
injected crashes); tests that assert exact counters pin the plan
themselves.
"""

import pickle
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Database,
    ExtendedAutomaton,
    GlobalConstraint,
    RegisterAutomaton,
    SigmaType,
    Signature,
)
from repro.automata.regex import concat, literal, plus
from repro.core.monitor import (
    SNAPSHOT_VERSION,
    MonitorMultiplexer,
    SessionSnapshot,
)
from repro.core.parallel import shutdown_executor
from repro.core.runs import FiniteRun
from repro.core.streaming import StreamingChecker
from repro.foundations import knobs
from repro.foundations.errors import SpecificationError
from repro.foundations.faults import FaultInjected, reset_faults
from repro.foundations.resilience import (
    CancellationToken,
    OutcomeStatus,
    drain_events,
    recent_events,
)

EMPTY = SigmaType()


def distinct_extended() -> ExtendedAutomaton:
    """One register, one state, all values pairwise distinct (Example 7)."""
    base = RegisterAutomaton(
        1, Signature.empty(), {"q"}, {"q"}, {"q"}, [("q", EMPTY, "q")]
    )
    all_distinct = concat(literal("q"), plus(literal("q")))
    return ExtendedAutomaton(base, [GlobalConstraint("neq", 1, 1, all_distinct)])


@pytest.fixture
def extended():
    return distinct_extended()


@pytest.fixture
def db(empty_database):
    return empty_database


@pytest.fixture
def no_faults(monkeypatch):
    """Pin an empty fault plan (for tests asserting exact counters)."""
    monkeypatch.setenv("REPRO_FAULTS", "")
    reset_faults()
    yield
    reset_faults()


def random_batches(seed=7, sessions=24, batches=8, batch_size=60, values=5):
    """A deterministic stream of (session, state, registers) batches."""
    rng = random.Random(seed)
    ids = ["s%03d" % index for index in range(sessions)]
    out = []
    for _ in range(batches):
        out.append(
            [
                (rng.choice(ids), "q", ("v%d" % rng.randrange(values),))
                for _ in range(batch_size)
            ]
        )
    return out


def oracle_fingerprints(extended, db, batches):
    """Per-session fingerprints from independent, uninterrupted checkers."""
    per_session = {}
    for batch in batches:
        for session, state, registers in batch:
            per_session.setdefault(session, []).append((state, registers))
    fingerprints = {}
    for session, events in per_session.items():
        checker = StreamingChecker(extended, db, strict=False)
        for state, registers in events:
            checker.feed(state, registers)
        state = checker._previous[0] if checker._previous else None
        fingerprints[session] = (
            state,
            checker.position,
            checker.failed,
            checker.peak_threads,
        )
    return fingerprints


def drive(mux, batches):
    for batch in batches:
        mux.ingest(batch)
    return mux


# ---------------------------------------------------------------------- #
# SessionSnapshot: round trips, guards, canonical form
# ---------------------------------------------------------------------- #


class TestSessionSnapshot:
    def test_round_trip_at_every_cut(self, extended, db):
        events = [("q", ("a",)), ("q", ("b",)), ("q", ("c",)), ("q", ("b",))]
        reference = StreamingChecker(extended, db, strict=False)
        expected = [reference.feed(s, r) for s, r in events]
        for cut in range(len(events) + 1):
            checker = StreamingChecker(extended, db, strict=False)
            outputs = [checker.feed(s, r) for s, r in events[:cut]]
            blob = pickle.dumps(checker.snapshot())
            resumed = StreamingChecker(extended, db, strict=False).restore(
                pickle.loads(blob)
            )
            outputs += [resumed.feed(s, r) for s, r in events[cut:]]
            assert outputs == expected
            assert resumed.position == reference.position
            assert resumed.peak_threads == reference.peak_threads
            assert resumed.failed == reference.failed

    def test_pickle_is_byte_stable(self, extended, db):
        def state_after(events):
            checker = StreamingChecker(extended, db, strict=False)
            for s, r in events:
                checker.feed(s, r)
            return pickle.dumps(checker.snapshot())

        events = [("q", ("a",)), ("q", ("b",)), ("q", ("a",))]
        assert state_after(events) == state_after(events)

    def test_version_tag_guard(self, extended, db):
        snap = StreamingChecker(extended, db).snapshot()
        assert snap.version == SNAPSHOT_VERSION
        import dataclasses

        stale = dataclasses.replace(snap, version=SNAPSHOT_VERSION + 1)
        with pytest.raises(SpecificationError):
            StreamingChecker(extended, db).restore(stale)

    def test_arity_and_constraint_guards(self, extended, db):
        snap = StreamingChecker(extended, db).snapshot()
        two_registers = ExtendedAutomaton(
            RegisterAutomaton(
                2, Signature.empty(), {"q"}, {"q"}, {"q"}, [("q", EMPTY, "q")]
            ),
            [],
        )
        with pytest.raises(SpecificationError):
            StreamingChecker(two_registers, db).restore(snap)
        no_constraints = ExtendedAutomaton(extended.automaton, [])
        with pytest.raises(SpecificationError):
            StreamingChecker(no_constraints, db).restore(snap)

    def test_restored_failed_checker_stays_failed(self, extended, db):
        # Regression: a snapshot taken after a non-strict violation must
        # resume failed -- returning the *original* message -- even when
        # restored into a checker constructed with the strict default.
        checker = StreamingChecker(extended, db, strict=False)
        checker.feed("q", ("a",))
        checker.feed("q", ("b",))
        message = checker.feed("q", ("a",))
        assert message is not None
        blob = pickle.dumps(checker.snapshot())
        restored = StreamingChecker(extended, db).restore(pickle.loads(blob))
        for _ in range(3):
            assert restored.feed("q", ("z",)) == message
        assert restored.failed == message
        assert restored.position == checker.position


class TestSnapshotRoundTripProperty:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        values=st.lists(
            st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=12
        ),
        data=st.data(),
    )
    def test_resume_matches_uninterrupted_feed_run(self, values, data):
        # For a random run and a random snapshot point: snapshot ->
        # pickle -> restore -> resume gives verdicts, violation messages
        # and peak_threads identical to one uninterrupted feed_run.
        extended = distinct_extended()
        db = Database(Signature.empty())
        cut = data.draw(st.integers(min_value=0, max_value=len(values)))
        run = FiniteRun(
            data=tuple((value,) for value in values),
            states=tuple("q" for _ in values),
            guards=tuple(EMPTY for _ in values[1:]),
        )
        reference = StreamingChecker(extended, db, strict=False)
        expected = reference.feed_run(run)

        checker = StreamingChecker(extended, db, strict=False)
        resumed_message = None
        for value in values[:cut]:
            resumed_message = checker.feed("q", (value,))
            if resumed_message is not None:
                break
        if resumed_message is None:
            checker = StreamingChecker(extended, db, strict=False).restore(
                pickle.loads(pickle.dumps(checker.snapshot()))
            )
            for value in values[cut:]:
                resumed_message = checker.feed("q", (value,))
                if resumed_message is not None:
                    break
        assert resumed_message == expected
        assert checker.failed == reference.failed
        assert checker.peak_threads == reference.peak_threads
        assert checker.position == reference.position


# ---------------------------------------------------------------------- #
# MonitorMultiplexer: basics
# ---------------------------------------------------------------------- #


class TestMultiplexerBasics:
    def test_matches_independent_checkers(self, extended, db):
        batches = random_batches()
        mux = drive(MonitorMultiplexer(extended, db), batches)
        assert mux.fingerprints() == oracle_fingerprints(extended, db, batches)

    def test_violations_reported_per_session(self, extended, db):
        mux = MonitorMultiplexer(extended, db)
        report = mux.ingest(
            [("a", "q", ("v1",)), ("a", "q", ("v1",)), ("b", "q", ("v1",))]
        )
        assert "a" in report.violations
        assert "inequality" in report.violations["a"]
        assert "b" not in report.violations
        # the failed session keeps answering with the original message
        again = mux.ingest([("a", "q", ("v9",))])
        assert again.violations["a"] == report.violations["a"]

    def test_duplicate_open_raises(self, extended, db):
        mux = MonitorMultiplexer(extended, db)
        mux.open_session("a")
        with pytest.raises(SpecificationError):
            mux.open_session("a")

    def test_close_and_cancel_taxonomy(self, extended, db):
        mux = MonitorMultiplexer(extended, db)
        mux.ingest([("a", "q", ("v1",)), ("b", "q", ("v1",))])
        closed = mux.close_session("a")
        assert closed.status is OutcomeStatus.COMPLETE
        assert closed.stats["position"] == 0
        cancelled = mux.cancel_session("b", "operator stop")
        assert cancelled.status is OutcomeStatus.CANCELLED
        assert cancelled.stats["reason"] == "operator stop"
        # terminal sessions ack but never apply further events
        report = mux.ingest([("a", "q", ("v2",)), ("b", "q", ("v2",))])
        assert report.skipped == 2 and report.applied == 0
        assert mux.session_fingerprint("a")[1] == 0
        assert mux.live_sessions() == 0

    def test_journal_stays_bounded(self, extended, db, no_faults):
        mux = MonitorMultiplexer(extended, db, journal_cap=8, snapshot_every=1000)
        batches = random_batches(sessions=6, batches=10, batch_size=12)
        for batch in batches:
            mux.ingest(batch)
            assert mux.stats()["journal_len"] <= 8 + len(batch)
        assert mux.fingerprints() == oracle_fingerprints(extended, db, batches)


# ---------------------------------------------------------------------- #
# sharded ingest parity (REPRO_WORKERS=2)
# ---------------------------------------------------------------------- #


class TestShardedParity:
    def test_workers_2_fingerprints_identical(self, extended, db, monkeypatch):
        batches = random_batches()
        monkeypatch.setenv("REPRO_FAULTS", "")
        reset_faults()
        serial = drive(MonitorMultiplexer(extended, db), batches).fingerprints()
        monkeypatch.setenv("REPRO_WORKERS", "2")
        try:
            sharded = drive(
                MonitorMultiplexer(extended, db, shards=4), batches
            ).fingerprints()
        finally:
            shutdown_executor()
        assert sharded == serial

    def test_shards_knob_drives_fanout(self, extended, db, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "")
        reset_faults()
        batches = random_batches(batches=3)
        serial = drive(MonitorMultiplexer(extended, db), batches).fingerprints()
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_MONITOR_SHARDS", "3")
        try:
            sharded = drive(MonitorMultiplexer(extended, db), batches).fingerprints()
        finally:
            shutdown_executor()
        assert sharded == serial


# ---------------------------------------------------------------------- #
# crash recovery: zero lost, zero double-applied
# ---------------------------------------------------------------------- #


class TestCrashRecovery:
    def test_driver_crash_mid_ingest_recovers_identically(
        self, extended, db, monkeypatch
    ):
        batches = random_batches()
        monkeypatch.setenv("REPRO_FAULTS", "")
        reset_faults()
        baseline = drive(MonitorMultiplexer(extended, db), batches)
        total = sum(len(batch) for batch in batches)
        assert baseline.stats()["events_applied"] == total
        drain_events()
        monkeypatch.setenv("REPRO_FAULTS", "monitor.ingest:crash:3")
        reset_faults()
        crashed = drive(MonitorMultiplexer(extended, db), batches)
        reset_faults()
        assert crashed.fingerprints() == baseline.fingerprints()
        # no lost and no double-applied events
        assert crashed.stats()["events_applied"] == total
        assert crashed.stats()["recoveries"] == 1
        assert len(recent_events("RS007")) == 1
        drain_events()

    def test_worker_crash_mid_sharded_ingest(self, extended, db, monkeypatch):
        batches = random_batches()
        monkeypatch.setenv("REPRO_FAULTS", "")
        reset_faults()
        baseline = drive(MonitorMultiplexer(extended, db), batches).fingerprints()
        # Acceptance scenario: a worker crash (parallel.call_chunk:exit)
        # during sharded ingest AND a driver volatile-state crash, in one
        # plan -- the pool respawns + resubmits, the journal replays, and
        # the final fingerprints match the fault-free serial run.
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_POOL_BACKOFF_MS", "0")
        monkeypatch.setenv(
            "REPRO_FAULTS", "monitor.ingest:crash:1,parallel.call_chunk:exit:1"
        )
        reset_faults()
        try:
            crashed = drive(
                MonitorMultiplexer(extended, db, shards=4), batches
            ).fingerprints()
        finally:
            shutdown_executor()
            reset_faults()
        assert crashed == baseline

    def test_explicit_recover_is_idempotent(self, extended, db, no_faults):
        batches = random_batches(batches=3)
        mux = drive(MonitorMultiplexer(extended, db), batches)
        before = mux.fingerprints()
        assert mux.recover() == mux.stats()["sessions"]
        assert mux.recover() == mux.stats()["sessions"]
        assert mux.fingerprints() == before

    def test_snapshot_faults_leave_recovery_exact(self, extended, db, monkeypatch):
        batches = random_batches()
        monkeypatch.setenv("REPRO_FAULTS", "")
        reset_faults()
        baseline = drive(MonitorMultiplexer(extended, db), batches).fingerprints()
        drain_events()
        # Every early durable-snapshot write fails; the journal keeps the
        # tail, so a later crash still recovers byte-identically.
        monkeypatch.setenv(
            "REPRO_FAULTS", "monitor.snapshot:raise:1-4,monitor.ingest:crash:5"
        )
        reset_faults()
        crashed = drive(
            MonitorMultiplexer(extended, db, snapshot_every=4), batches
        ).fingerprints()
        reset_faults()
        assert crashed == baseline
        assert len(recent_events("RS009")) == 4
        drain_events()

    def test_restore_crash_restarts_recovery(self, extended, db, monkeypatch):
        batches = random_batches()
        monkeypatch.setenv("REPRO_FAULTS", "")
        reset_faults()
        baseline = drive(MonitorMultiplexer(extended, db), batches).fingerprints()
        monkeypatch.setenv(
            "REPRO_FAULTS", "monitor.restore:crash:1,monitor.ingest:crash:1"
        )
        reset_faults()
        crashed = drive(MonitorMultiplexer(extended, db), batches).fingerprints()
        reset_faults()
        assert crashed == baseline

    def test_atomic_batch_reject(self, extended, db, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "")
        reset_faults()
        mux = MonitorMultiplexer(extended, db)
        mux.ingest([("a", "q", ("v1",))])
        before = (mux.fingerprints(), mux.stats()["journal_len"])
        monkeypatch.setenv("REPRO_FAULTS", "monitor.ingest:raise:1")
        reset_faults()
        with pytest.raises(FaultInjected):
            mux.ingest([("a", "q", ("v2",)), ("b", "q", ("v1",))])
        monkeypatch.setenv("REPRO_FAULTS", "")
        reset_faults()
        # nothing journaled, nothing applied, no session opened
        assert (mux.fingerprints(), mux.stats()["journal_len"]) == before
        assert mux.stats()["sessions"] == 1


# ---------------------------------------------------------------------- #
# per-session quarantine
# ---------------------------------------------------------------------- #


class _Unhashable:
    """A poison register value: feeding it raises inside the thread sets."""

    __hash__ = None


class TestQuarantine:
    def test_poison_event_fails_only_its_session(self, extended, db, no_faults):
        mux = MonitorMultiplexer(extended, db)
        mux.ingest([("a", "q", ("v1",)), ("b", "q", ("v1",))])
        drain_events()
        report = mux.ingest([("a", "q", (_Unhashable(),)), ("b", "q", ("v2",))])
        assert report.quarantined == ("a",)
        assert mux.quarantined_sessions() == ("a",)
        outcome = mux.session_outcome("a")
        assert outcome.status is OutcomeStatus.DEGRADED
        assert outcome.stats["reason"] == "poison-event"
        # the poisoned session froze at its last good position...
        assert mux.session_fingerprint("a")[1] == 0
        # ...and its neighbour proceeded untouched
        assert mux.session_fingerprint("b")[1] == 1
        assert [event.code for event in drain_events() if event.code == "RS008"]

    def test_quarantine_is_durable_across_crashes(
        self, extended, db, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "")
        reset_faults()
        mux = MonitorMultiplexer(extended, db)
        mux.ingest([("a", "q", ("v1",)), ("b", "q", ("v1",))])
        mux.ingest([("a", "q", (_Unhashable(),)), ("b", "q", ("v2",))])
        frozen = mux.session_fingerprint("a")
        monkeypatch.setenv("REPRO_FAULTS", "monitor.ingest:crash:1")
        reset_faults()
        report = mux.ingest([("a", "q", ("v3",)), ("b", "q", ("v3",))])
        reset_faults()
        assert report.skipped + report.applied >= 1
        assert mux.session_outcome("a").status is OutcomeStatus.DEGRADED
        assert mux.session_fingerprint("a") == frozen
        assert mux.session_fingerprint("b")[1] == 2

    def test_poison_in_sharded_ingest(self, extended, db, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "")
        reset_faults()
        monkeypatch.setenv("REPRO_WORKERS", "2")
        mux = MonitorMultiplexer(extended, db, shards=4)
        sessions = ["s%d" % index for index in range(8)]
        try:
            mux.ingest([(s, "q", ("v1",)) for s in sessions])
            report = mux.ingest(
                [
                    (s, "q", (_Unhashable(),) if s == "s3" else ("v2",))
                    for s in sessions
                ]
            )
        finally:
            shutdown_executor()
        assert report.quarantined == ("s3",)
        assert mux.session_fingerprint("s3")[1] == 0
        for s in sessions:
            if s != "s3":
                assert mux.session_fingerprint(s)[1] == 1

    def test_restore_failure_quarantines_one_session(
        self, extended, db, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "")
        reset_faults()
        mux = MonitorMultiplexer(extended, db)
        mux.ingest([("a", "q", ("v1",)), ("b", "q", ("v1",)), ("c", "q", ("v1",))])
        monkeypatch.setenv(
            "REPRO_FAULTS", "monitor.restore:raise:1,monitor.ingest:crash:1"
        )
        reset_faults()
        mux.ingest([("a", "q", ("v2",)), ("b", "q", ("v2",)), ("c", "q", ("v2",))])
        reset_faults()
        assert len(mux.quarantined_sessions()) == 1
        (victim,) = mux.quarantined_sessions()
        assert mux.session_outcome(victim).stats["reason"] == "restore-failed"
        for session in "abc":
            if session != victim:
                assert mux.session_fingerprint(session)[1] == 1


# ---------------------------------------------------------------------- #
# deadlines and cancellation
# ---------------------------------------------------------------------- #


class TestDeadlinesAndCancellation:
    def test_expired_deadline_times_out_without_losing_events(
        self, extended, db, no_faults
    ):
        mux = MonitorMultiplexer(extended, db)
        report = mux.ingest(
            [("a", "q", ("v1",)), ("b", "q", ("v1",))], deadline=0
        )
        assert report.outcome.status is OutcomeStatus.TIMEOUT
        # the batch is journaled; the next ingest drains it first
        mux.ingest([("a", "q", ("v2",))])
        assert mux.session_fingerprint("a")[1] == 1
        assert mux.session_fingerprint("b")[1] == 0

    def test_recover_drains_timed_out_batch(self, extended, db, no_faults):
        mux = MonitorMultiplexer(extended, db)
        report = mux.ingest([("a", "q", ("v1",))], deadline=0)
        assert report.outcome.status is OutcomeStatus.TIMEOUT
        assert report.applied == 0
        mux.recover()
        assert mux.session_fingerprint("a")[1] == 0

    def test_expired_deadline_times_out_on_the_sharded_path(
        self, extended, db, no_faults, monkeypatch
    ):
        """Workers can't see the driver's ambient deadline: the sharded
        path must poll on the driver and report TIMEOUT with nothing
        applied (regression: it used to apply the whole batch and report
        COMPLETE under REPRO_WORKERS=2)."""
        monkeypatch.setenv("REPRO_WORKERS", "2")
        try:
            mux = MonitorMultiplexer(extended, db, shards=4)
            report = mux.ingest(
                [("a", "q", ("v1",)), ("b", "q", ("v1",))], deadline=0
            )
            assert report.outcome.status is OutcomeStatus.TIMEOUT
            assert report.applied == 0
            # journaled, not lost: the next ingest drains the batch first
            mux.ingest([("a", "q", ("v2",))])
            assert mux.session_fingerprint("a")[1] == 1
            assert mux.session_fingerprint("b")[1] == 0
        finally:
            shutdown_executor()

    def test_cancellation_outcome(self, extended, db, no_faults):
        token = CancellationToken()
        token.cancel("operator stop")
        mux = MonitorMultiplexer(extended, db)
        report = mux.ingest([("a", "q", ("v1",))], cancel=token)
        assert report.outcome.status is OutcomeStatus.CANCELLED
        mux.recover()
        assert mux.session_fingerprint("a")[1] == 0


# ---------------------------------------------------------------------- #
# knobs
# ---------------------------------------------------------------------- #


class TestMonitorKnobs:
    def test_registered(self):
        for name in (
            "REPRO_MONITOR_SHARDS",
            "REPRO_MONITOR_SNAPSHOT_EVERY",
            "REPRO_MONITOR_JOURNAL_CAP",
        ):
            assert knobs.is_registered(name)

    @pytest.mark.parametrize(
        "raw,expected",
        [(None, 0), ("", 0), ("junk", 0), ("-3", 0), ("4", 4), ("9999", 256)],
    )
    def test_shards_parser(self, raw, expected):
        assert knobs.parse_shard_count(raw) == expected

    @pytest.mark.parametrize(
        "raw,expected",
        [(None, 32), ("", 32), ("junk", 32), ("0", 32), ("-1", 32), ("5", 5)],
    )
    def test_snapshot_every_parser(self, raw, expected):
        assert knobs.parse_snapshot_every(raw) == expected

    @pytest.mark.parametrize(
        "raw,expected",
        [(None, 1024), ("junk", 1024), ("0", 1024), ("17", 17)],
    )
    def test_journal_cap_parser(self, raw, expected):
        assert knobs.parse_journal_cap(raw) == expected

    def test_env_knobs_steer_the_multiplexer(self, extended, db, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "")
        reset_faults()
        monkeypatch.setenv("REPRO_MONITOR_SNAPSHOT_EVERY", "1")
        monkeypatch.setenv("REPRO_MONITOR_JOURNAL_CAP", "4")
        batches = random_batches(sessions=5, batches=4, batch_size=10)
        mux = drive(MonitorMultiplexer(extended, db), batches)
        assert mux.stats()["snapshots_taken"] > 0
        assert mux.fingerprints() == oracle_fingerprints(extended, db, batches)
