"""Shared fixtures: the paper's worked examples as reusable automata."""

import os
import random

import pytest

from repro import (
    Database,
    ExtendedAutomaton,
    GlobalConstraint,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    eq,
    neq,
    rel,
    nrel,
)
from repro.automata.regex import concat, literal, plus, star


def pytest_collection_modifyitems(config, items):
    """Shuffle test order when ``REPRO_TEST_SHUFFLE`` is set to a seed.

    CI runs the suite twice -- in file order and shuffled -- so that any
    hidden coupling through module-level state (the class of bug behind
    the old id-keyed dead-state cache) surfaces as an order-dependent
    failure instead of a rare flake.
    """
    seed = os.environ.get("REPRO_TEST_SHUFFLE")
    if seed:
        random.Random(int(seed)).shuffle(items)


@pytest.fixture
def example1_automaton():
    """The 2-register automaton of Example 1 (no database)."""
    d1 = SigmaType([eq(X(1), X(2)), eq(X(2), Y(2))])
    d2 = SigmaType([eq(X(2), Y(2))])
    d3 = SigmaType([eq(X(2), Y(2)), eq(Y(1), Y(2))])
    return RegisterAutomaton(
        2,
        Signature.empty(),
        {"q1", "q2"},
        {"q1"},
        {"q1"},
        [("q1", d1, "q2"), ("q2", d2, "q2"), ("q2", d3, "q1")],
    )


@pytest.fixture
def example1_guards():
    d1 = SigmaType([eq(X(1), X(2)), eq(X(2), Y(2))])
    d2 = SigmaType([eq(X(2), Y(2))])
    d3 = SigmaType([eq(X(2), Y(2)), eq(Y(1), Y(2))])
    return d1, d2, d3


@pytest.fixture
def example5_extended():
    """Example 5: the extended automaton describing Example 4's projection."""
    empty = SigmaType()
    base = RegisterAutomaton(
        1,
        Signature.empty(),
        {"p1", "p2"},
        {"p1"},
        {"p1"},
        [("p1", empty, "p2"), ("p2", empty, "p2"), ("p2", empty, "p1")],
    )
    expression = concat(literal("p1"), star(literal("p2")), literal("p1"))
    return ExtendedAutomaton(base, [GlobalConstraint("eq", 1, 1, expression)])


@pytest.fixture
def example7_extended():
    """Example 7: one register, all values pairwise distinct."""
    empty = SigmaType()
    base = RegisterAutomaton(
        1, Signature.empty(), {"q"}, {"q"}, {"q"}, [("q", empty, "q")]
    )
    all_distinct = concat(literal("q"), plus(literal("q")))
    return ExtendedAutomaton(base, [GlobalConstraint("neq", 1, 1, all_distinct)])


@pytest.fixture
def example8_extended():
    """Example 8: unary database P; p-blocks must use pairwise distinct values."""
    signature = Signature(relations={"P": 1})
    guard = SigmaType([rel("P", X(1))])
    base = RegisterAutomaton(
        1,
        signature,
        {"p", "q"},
        {"p"},
        {"p", "q"},
        [("p", guard, "p"), ("p", guard, "q"), ("q", guard, "q"), ("q", guard, "p")],
    )
    p_block = concat(literal("p"), star(literal("p")), literal("p"))
    return ExtendedAutomaton(base, [GlobalConstraint("neq", 1, 1, p_block)])


@pytest.fixture
def example8_p_only():
    """Example 8 restricted to p^omega: empty (the non-regular boundary)."""
    signature = Signature(relations={"P": 1})
    guard = SigmaType([rel("P", X(1))])
    base = RegisterAutomaton(
        1, signature, {"p"}, {"p"}, {"p"}, [("p", guard, "p")]
    )
    p_block = concat(literal("p"), star(literal("p")), literal("p"))
    return ExtendedAutomaton(base, [GlobalConstraint("neq", 1, 1, p_block)])


@pytest.fixture
def example16_bounded():
    """Example 16's A: local disequality only -- LR-bounded."""
    guard = SigmaType([neq(X(1), Y(1))])
    base = RegisterAutomaton(
        1, Signature.empty(), {"q"}, {"q"}, {"q"}, [("q", guard, "q")]
    )
    return ExtendedAutomaton(base, [])


@pytest.fixture
def example16_unbounded():
    """Example 16's A': trace-equivalent to A but not LR-bounded."""
    guard = SigmaType([neq(X(1), Y(1))])
    base = RegisterAutomaton(
        1,
        Signature.empty(),
        {"p", "q"},
        {"p", "q"},
        {"p", "q"},
        [("p", guard, "p"), ("q", guard, "q")],
    )
    p_pairs = concat(literal("p"), plus(literal("p")))
    return ExtendedAutomaton(base, [GlobalConstraint("neq", 1, 1, p_pairs)])


@pytest.fixture
def example23_automaton():
    """Example 23: 2 registers, binary E and unary U, alternating E-membership."""
    signature = Signature(relations={"E": 2, "U": 1})
    delta = SigmaType([eq(X(2), Y(2)), rel("U", X(1)), rel("E", X(2), X(1))])
    delta_neg = SigmaType([eq(X(2), Y(2)), rel("U", X(1)), nrel("E", X(2), X(1))])
    return RegisterAutomaton(
        2,
        signature,
        {"p", "q"},
        {"p"},
        {"p"},
        [("p", delta, "q"), ("q", delta_neg, "p")],
    )


@pytest.fixture
def example23_database():
    signature = Signature(relations={"E": 2, "U": 1})
    return Database(
        signature,
        relations={"E": [("c", "d0")], "U": [("d0",), ("d1",)]},
    )


@pytest.fixture
def empty_database():
    return Database(Signature.empty())


def canonical_trace(rows):
    """Rename data values by first occurrence (isomorphism-invariant form)."""
    names = {}
    return tuple(
        tuple(names.setdefault(value, len(names)) for value in row) for row in rows
    )
