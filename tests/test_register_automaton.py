"""Tests for the base model: Examples 1-3 and the normal forms."""

import pytest

from repro import RegisterAutomaton, SigmaType, Signature, Transition, X, Y, eq, neq, rel
from repro.foundations.errors import SpecificationError


class TestConstruction:
    def test_example1_shape(self, example1_automaton):
        assert example1_automaton.k == 2
        assert len(example1_automaton.transitions) == 3
        assert example1_automaton.initial == {"q1"}
        assert example1_automaton.accepting == {"q1"}

    def test_unknown_state_rejected(self):
        with pytest.raises(SpecificationError):
            RegisterAutomaton(
                1, Signature.empty(), {"a"}, {"a"}, {"a"}, [("a", SigmaType(), "b")]
            )

    def test_initial_must_be_state(self):
        with pytest.raises(SpecificationError):
            RegisterAutomaton(1, Signature.empty(), {"a"}, {"b"}, {"a"}, [])

    def test_guard_register_out_of_range(self):
        with pytest.raises(SpecificationError):
            RegisterAutomaton(
                1,
                Signature.empty(),
                {"a"},
                {"a"},
                {"a"},
                [("a", SigmaType([eq(X(2), Y(1))]), "a")],
            )

    def test_guard_unknown_relation(self):
        with pytest.raises(SpecificationError):
            RegisterAutomaton(
                1,
                Signature.empty(),
                {"a"},
                {"a"},
                {"a"},
                [("a", SigmaType([rel("R", X(1))]), "a")],
            )

    def test_guard_unknown_constant(self):
        from repro.logic.terms import Const

        with pytest.raises(SpecificationError):
            RegisterAutomaton(
                1,
                Signature.empty(),
                {"a"},
                {"a"},
                {"a"},
                [("a", SigmaType([eq(X(1), Const("c"))]), "a")],
            )

    def test_zero_registers_allowed(self):
        automaton = RegisterAutomaton(
            0, Signature.empty(), {"a"}, {"a"}, {"a"}, [("a", SigmaType(), "a")]
        )
        assert automaton.k == 0

    def test_transitions_from(self, example1_automaton):
        assert len(example1_automaton.transitions_from("q2")) == 2
        assert example1_automaton.transitions_from("missing") == ()

    def test_rename_states(self, example1_automaton):
        renamed = example1_automaton.rename_states({"q1": "start"})
        assert "start" in renamed.states
        assert renamed.initial == {"start"}

    def test_rename_must_be_injective(self, example1_automaton):
        with pytest.raises(SpecificationError):
            example1_automaton.rename_states({"q1": "q2"})


class TestCompletion:
    def test_example1_not_complete(self, example1_automaton):
        """Example 2: delta3 leaves y1 vs y2 open (among others)."""
        assert not example1_automaton.is_complete()

    def test_completed_is_complete(self, example1_automaton):
        assert example1_automaton.completed().is_complete()

    def test_completion_splits_transitions(self, example1_automaton):
        completed = example1_automaton.completed()
        assert len(completed.transitions) > len(example1_automaton.transitions)

    def test_equality_completion(self, example23_automaton):
        completed = example23_automaton.equality_completed()
        assert completed.is_equality_complete()
        # relational atoms stay open: full completeness would need E/U settled
        assert not completed.is_complete()


class TestStateDriven:
    def test_example1_not_state_driven(self, example1_automaton):
        """q2 fires two distinct guards (Example 3)."""
        assert not example1_automaton.is_state_driven()

    def test_state_driven_conversion(self, example1_automaton):
        driven = example1_automaton.state_driven()
        assert driven.is_state_driven()
        # Example 3: three states q1, q2', q2'' and five transitions
        assert len(driven.states) == 3
        assert len(driven.transitions) == 5

    def test_guard_of_state(self, example1_automaton):
        driven = example1_automaton.state_driven()
        for state in driven.states:
            guard = driven.guard_of_state(state)
            assert guard == state[1]

    def test_guard_of_state_rejects_ambiguity(self, example1_automaton):
        with pytest.raises(SpecificationError):
            example1_automaton.guard_of_state("q2")

    def test_state_driven_preserves_acceptance_structure(self, example1_automaton):
        driven = example1_automaton.state_driven()
        assert all(pair[0] == "q1" for pair in driven.initial)
        assert all(pair[0] == "q1" for pair in driven.accepting)
