"""Backward dataflow + the sound reduction layer (PR 7).

Four layers, tested bottom-up:

* the backward worklist solver (``solve_backward`` over the *same* core
  as ``solve_forward``), on both the powerset and the antichain lattice;
* register liveness and co-reachability on hand-built automata,
  including the copy-into-live soundness trap (a register that is never
  read directly but flows into a read register must stay);
* ``trim`` / ``trim_extended`` -- the accepting-lasso-relevant behaviour
  is preserved exactly (brute-forced over all accepted lasso candidates
  on small automata), identity fallbacks fire on knob-off / budget-trip /
  normalisation-shape flips, and ``project_dead_registers`` keeps the
  verdict while shrinking ``k``;
* the end-to-end contract: ``check_emptiness`` under ``REPRO_REDUCE=1``
  is **byte-identical** -- verdict, witness, *and* ``candidates_checked``
  -- to ``REPRO_REDUCE=0``, across interning modes, the antichain knob,
  and ``REPRO_WORKERS=2`` (a strictly stronger bar than pruning's
  "never checks more").
"""

import os
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    ExtendedAutomaton,
    GlobalConstraint,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    check_emptiness,
    eq,
    neq,
)
from repro.analysis.dataflow import (
    BackwardProblem,
    PowersetLattice,
    SubsumptionLattice,
    analyze_co_reachability,
    analyze_register_liveness,
    co_reachability_outcome,
    guard_read_registers,
    register_liveness_outcome,
    solve_backward,
    solve_forward,
)
from repro.automata.regex import concat, literal, plus, star
from repro.core.parallel import shutdown_executor, worker_count
from repro.core.reduction import (
    DEFAULT_TRIM_BUDGET,
    project_dead_registers,
    reduction_enabled,
    trim,
    trim_extended,
)
from repro.core.symbolic import scontrol_buchi
from repro.foundations.interning import interning
from repro.foundations.resilience import OutcomeStatus
from repro.generators import random_extended_automaton

EMPTY = Signature.empty()

KEEP1 = SigmaType([eq(X(1), Y(1))])
FRESH1 = SigmaType([neq(X(1), Y(1))])


def ra(k, states, initial, accepting, transitions):
    return RegisterAutomaton(k, EMPTY, states, initial, accepting, transitions)


# --------------------------------------------------------------------- #
# the backward solver
# --------------------------------------------------------------------- #


class _LabelCoReach(BackwardProblem):
    """Toy problem: collect the labels of all edge paths *out of* each node."""

    lattice = PowersetLattice()

    def __init__(self, edges, exits):
        self._edges = edges  # node -> [(label, successor)], forward direction
        self._exits = exits  # node -> frozenset seed

    def nodes(self):
        return self._edges.keys()

    def exit(self, node):
        return self._exits.get(node, frozenset())

    def out_edges(self, node):
        return self._edges[node]

    def transfer(self, label, value):
        return value | {label}


class TestSolveBackward:
    def test_information_flows_against_the_edges(self):
        problem = _LabelCoReach(
            {
                "a": [("ab", "b")],
                "b": [("bc", "c")],
                "c": [],
            },
            {"c": frozenset({"goal"})},
        )
        result = solve_backward(problem)
        assert result is not None
        assert result.values["c"] == frozenset({"goal"})
        assert result.values["b"] == frozenset({"goal", "bc"})
        assert result.values["a"] == frozenset({"goal", "bc", "ab"})

    def test_cycles_reach_the_fixpoint(self):
        problem = _LabelCoReach(
            {"a": [("ab", "b")], "b": [("ba", "a"), ("bc", "c")], "c": []},
            {"c": frozenset({"goal"})},
        )
        result = solve_backward(problem)
        assert result.values["a"] == frozenset({"goal", "ab", "ba", "bc"})
        assert result.values["b"] == frozenset({"goal", "ab", "ba", "bc"})

    def test_budget_exhaustion_returns_none(self):
        problem = _LabelCoReach(
            {"a": [("ab", "b")], "b": [("ba", "a")]},
            {"a": frozenset({"seed"})},
        )
        assert solve_backward(problem, max_edge_evaluations=1) is None

    def test_sink_stays_at_its_exit_value(self):
        problem = _LabelCoReach(
            {"a": [("ab", "b")], "b": []}, {"a": frozenset({"seed"})}
        )
        result = solve_backward(problem)
        # b has no successors: nothing flows into it backwards.
        assert result.values["b"] == frozenset()
        # a sees its own exit seed plus the contribution over a->b.
        assert result.values["a"] == frozenset({"seed", "ab"})

    def test_antichain_lattice_backward(self):
        # Subsumption = superset: keeping only the maximal sets.
        class _Antichain(_LabelCoReach):
            lattice = SubsumptionLattice(
                lambda big, small: frozenset(small) <= frozenset(big)
            )

            def transfer(self, label, value):
                return frozenset(
                    tuple(sorted(set(element) | {label})) for element in value
                )

            def exit(self, node):
                seed = self._exits.get(node)
                return frozenset() if seed is None else frozenset({()})

        problem = _Antichain(
            {"a": [("l", "b"), ("m", "b")], "b": []}, {"b": frozenset({()})}
        )
        result = solve_backward(problem)
        # Both one-label sets survive (incomparable): a genuine antichain.
        assert result.values["a"] == frozenset({("l",), ("m",)})

    def test_shares_the_forward_core(self):
        # The acceptance criterion "no duplicated solver loop", checked
        # structurally: solve_backward's bytecode references solve_forward
        # and contains no worklist machinery of its own.
        names = solve_backward.__code__.co_names
        assert "solve_forward" in names
        assert "while" not in solve_backward.__code__.co_varnames
        forward_result = solve_forward.__code__.co_consts
        assert solve_backward.__code__.co_consts != forward_result


# --------------------------------------------------------------------- #
# guard reads and register liveness
# --------------------------------------------------------------------- #


class TestGuardReadRegisters:
    def test_pure_copies_do_not_read(self):
        assert guard_read_registers(SigmaType([eq(X(1), Y(1))]), 2) == ()
        assert guard_read_registers(SigmaType([eq(X(1), Y(2))]), 2) == ()

    def test_comparison_reads_both(self):
        assert guard_read_registers(SigmaType([eq(X(1), X(2))]), 2) == (1, 2)

    def test_disequality_reads(self):
        assert guard_read_registers(SigmaType([neq(X(1), Y(1))]), 2) == (1,)

    def test_comparison_through_y_corridor(self):
        # x1 = y2 and x2 = y2 entails x1 = x2: both registers are read
        # even though no literal compares them directly.
        guard = SigmaType([eq(X(1), Y(2)), eq(X(2), Y(2))])
        assert guard_read_registers(guard, 2) == (1, 2)

    def test_cached_per_instance(self):
        guard = SigmaType([eq(X(1), X(2))])
        assert guard_read_registers(guard, 2) is guard_read_registers(guard, 2)


def chain():
    """reg2 := reg1 at q0->q1; reg2 is read at q1->q2; reg1 never after q0."""
    copy21 = SigmaType([eq(X(1), Y(2))])
    read2 = SigmaType([neq(X(2), Y(2))])
    return ra(
        2,
        {"q0", "q1", "q2"},
        {"q0"},
        {"q2"},
        [("q0", copy21, "q1"), ("q1", read2, "q2"), ("q2", read2, "q2")],
    )


class TestRegisterLiveness:
    def test_copy_into_read_makes_the_source_live(self):
        liveness = analyze_register_liveness(chain())
        assert liveness.live_at("q0") == frozenset({1})
        assert liveness.live_at("q1") == frozenset({2})
        assert liveness.live_at("q2") == frozenset({2})

    def test_dead_at_is_the_sorted_complement(self):
        liveness = analyze_register_liveness(chain())
        assert liveness.dead_at("q0") == (2,)
        assert liveness.dead_at("q1") == (1,)

    def test_write_only_requires_live_nowhere(self):
        # reg1 is never read directly, but it flows into read reg2: the
        # copy-into-live trap -- dropping it would change the verdict.
        liveness = analyze_register_liveness(chain())
        assert liveness.write_only_registers() == ()

    def test_write_only_detected(self):
        # reg2 := new reg1 value, never read, never forwarded.
        guard = SigmaType([eq(X(1), Y(1)), eq(Y(2), Y(1))])
        automaton = ra(2, {"p", "q"}, {"p"}, {"q"},
                       [("p", guard, "q"), ("q", FRESH1, "q")])
        liveness = analyze_register_liveness(automaton)
        assert liveness.write_only_registers() == (2,)

    def test_never_read_proof_shape(self):
        liveness = analyze_register_liveness(chain())
        proof = liveness.never_read_proof("q1", 1)
        assert proof["register"] == 1
        assert proof["truncated"] is False
        assert all(entry["dead_here"] for entry in proof["cone"])
        for entry in proof["cone"]:
            for step in entry["steps"]:
                assert 1 not in step["reads"]
                assert step["flows_into_live"] == []

    def test_declines_above_register_cap(self):
        from repro.analysis.dataflow import MAX_REGISTERS

        k = MAX_REGISTERS + 1
        literals = [eq(X(i), Y(i)) for i in range(1, k + 1)]
        automaton = ra(k, {"a"}, {"a"}, {"a"}, [("a", SigmaType(literals), "a")])
        outcome = register_liveness_outcome(automaton)
        assert outcome.status is OutcomeStatus.DEGRADED
        assert outcome.value is None
        assert outcome.stats["reason"] == "register-cap"

    def test_declines_over_edge_budget(self):
        outcome = register_liveness_outcome(chain(), max_edge_evaluations=1)
        assert outcome.status is OutcomeStatus.DEGRADED
        assert outcome.stats["reason"] == "edge-budget"


# --------------------------------------------------------------------- #
# co-reachability
# --------------------------------------------------------------------- #

FORCE = SigmaType([eq(X(1), X(2)), eq(X(1), Y(1)), eq(X(2), Y(2))])
KEEP2 = SigmaType([eq(X(1), Y(1)), eq(X(2), Y(2))])
SPLIT = SigmaType([neq(X(1), X(2)), eq(X(1), Y(1)), eq(X(2), Y(2))])


def forced_funnel():
    """After FORCE, the SPLIT edge into the accepting sink can never fire."""
    return ra(
        2,
        {"q0", "q1", "junk", "acc"},
        {"q0"},
        {"acc"},
        [
            ("q0", FORCE, "q1"),
            ("q1", SPLIT, "junk"),
            ("junk", KEEP2, "acc"),
            ("q1", KEEP2, "acc"),
            ("acc", KEEP2, "acc"),
        ],
    )


class TestCoReachability:
    def test_anchors_are_accepting_states_on_feasible_cycles(self):
        analysis = analyze_co_reachability(forced_funnel())
        assert analysis.anchors == frozenset({"acc"})

    def test_infeasible_corridor_is_not_co_reachable(self):
        analysis = analyze_co_reachability(forced_funnel())
        assert analysis.is_co_reachable("q0")
        assert analysis.is_co_reachable("q1")
        # junk is graph-co-accessible to acc, but its only incoming edge
        # is the infeasible SPLIT, so it has no reachable types and its
        # outgoing edge to acc is infeasible too: no anchor flows back.
        # (Sound: the DF007 pass only reports *abstractly reachable*
        # states, and junk is not one.)
        assert not analysis.is_co_reachable("junk")

    def test_state_with_no_feasible_path_to_any_anchor(self):
        dead_end = ra(
            1,
            {"s", "acc", "pit"},
            {"s"},
            {"acc"},
            [
                ("s", KEEP1, "acc"),
                ("acc", KEEP1, "acc"),
                ("s", KEEP1, "pit"),
                ("pit", KEEP1, "pit"),
            ],
        )
        analysis = analyze_co_reachability(dead_end)
        assert analysis.non_co_reachable_states() == ("pit",)
        assert analysis.anchors_from("s") == frozenset({"acc"})

    def test_no_accepting_cycle_means_no_anchors(self):
        automaton = ra(1, {"s", "acc"}, {"s"}, {"acc"}, [("s", KEEP1, "acc")])
        analysis = analyze_co_reachability(automaton)
        assert analysis.anchors == frozenset()
        assert analysis.non_co_reachable_states() == ("acc", "s")

    def test_declines_when_forward_analysis_declines(self):
        outcome = co_reachability_outcome(
            forced_funnel(), max_edge_evaluations=1
        )
        assert outcome.status is OutcomeStatus.DEGRADED
        assert outcome.stats["reason"] in ("forward-analysis", "edge-budget")


# --------------------------------------------------------------------- #
# trim
# --------------------------------------------------------------------- #


def junky():
    """An accepting cycle plus a reachable junk tail (same guard: no
    normalisation-shape flip when the tail is trimmed)."""
    return ra(
        1,
        {"s", "acc", "j1", "j2"},
        {"s"},
        {"acc"},
        [
            ("s", KEEP1, "acc"),
            ("acc", FRESH1, "acc"),
            ("s", KEEP1, "j1"),
            ("j1", KEEP1, "j2"),
            ("j2", KEEP1, "j1"),
        ],
    )


def _accepted_lassos(automaton, max_cycle=4, max_prefix=4):
    """All accepted lasso candidates, in enumeration order."""
    return list(
        scontrol_buchi(automaton).iter_accepted_lassos(max_cycle, max_prefix)
    )


class TestTrim:
    def test_drops_the_junk_tail(self):
        trimmed = trim(junky(), enabled=True)
        assert trimmed.states == frozenset({"s", "acc"})
        assert trimmed.initial == frozenset({"s"})
        assert trimmed.accepting == frozenset({"acc"})

    def test_candidate_sequence_preserved_exactly(self):
        automaton = junky()
        trimmed = trim(automaton, enabled=True)
        assert _accepted_lassos(automaton) == _accepted_lassos(trimmed)

    def test_identity_when_nothing_to_trim(self):
        trimmed = trim(junky(), enabled=True)
        assert trim(trimmed, enabled=True) is trimmed

    def test_identity_when_disabled(self):
        automaton = junky()
        assert trim(automaton, enabled=False) is automaton

    def test_knob_read_at_call_time(self, monkeypatch):
        automaton = junky()
        monkeypatch.setenv("REPRO_REDUCE", "0")
        assert not reduction_enabled()
        assert trim(automaton) is automaton
        monkeypatch.setenv("REPRO_REDUCE", "1")
        assert reduction_enabled()
        assert trim(automaton) is not automaton

    def test_budget_trip_returns_identity(self):
        automaton = junky()
        assert trim(automaton, enabled=True, max_steps=1) is automaton

    def test_default_budget_is_generous(self):
        assert DEFAULT_TRIM_BUDGET >= 100_000

    def test_state_driven_flip_falls_back_to_identity(self):
        # Trimming the FRESH1 branch would leave "s" single-guard and flip
        # is_state_driven() False -> True: trim must refuse.
        automaton = ra(
            1,
            {"s", "acc", "junk"},
            {"s"},
            {"acc"},
            [
                ("s", KEEP1, "acc"),
                ("acc", KEEP1, "acc"),
                ("s", FRESH1, "junk"),
            ],
        )
        assert not automaton.is_state_driven()
        assert trim(automaton, enabled=True) is automaton

    def test_empty_language_left_untouched(self):
        # No accepting cycle at all: keep-set misses the initial states.
        automaton = ra(1, {"s", "acc"}, {"s"}, {"acc"}, [("s", KEEP1, "acc")])
        assert trim(automaton, enabled=True) is automaton

    def test_trim_extended_remaps_constraint_dfas(self):
        automaton = junky()
        factor = concat(literal("s"), plus(literal("acc")))
        extended = ExtendedAutomaton(
            automaton, [GlobalConstraint("neq", 1, 1, factor)]
        )
        trimmed = trim_extended(extended, enabled=True)
        assert trimmed.automaton.states == frozenset({"s", "acc"})
        for constraint in trimmed.constraints:
            dfa = trimmed.constraint_dfa(constraint)
            assert dfa.alphabet == trimmed.automaton.states

    def test_trim_extended_identity_passthrough(self):
        extended = ExtendedAutomaton(trim(junky(), enabled=True), [])
        assert trim_extended(extended, enabled=True) is extended


# --------------------------------------------------------------------- #
# dead-register projection
# --------------------------------------------------------------------- #


class TestProjectDeadRegisters:
    def test_drops_a_write_only_register(self):
        guard = SigmaType([eq(X(1), Y(1)), eq(Y(2), Y(1))])
        automaton = ra(2, {"p", "q"}, {"p"}, {"q"},
                       [("p", guard, "q"), ("q", FRESH1, "q")])
        projected, dropped = project_dead_registers(automaton)
        assert dropped == (2,)
        assert projected.k == 1
        assert projected.states == automaton.states

    def test_saturation_keeps_entailed_facts(self):
        # y1 = y3 and y2 = y3 entails y1 = y2 *through* dropped register
        # 3; the syntactic restriction would lose it, the saturated
        # projection must keep it.
        guard = SigmaType([eq(Y(1), Y(3)), eq(Y(2), Y(3))])
        read12 = SigmaType([neq(X(1), X(2))])
        automaton = ra(3, {"p", "q"}, {"p"}, {"q"},
                       [("p", guard, "q"), ("q", read12, "q")])
        projected, dropped = project_dead_registers(automaton)
        assert dropped == (3,)
        assert projected.k == 2
        (first, _second) = sorted(
            projected.transitions, key=lambda t: t.source
        )
        assert first.guard.entails(eq(Y(1), Y(2)))

    def test_copy_into_live_register_is_kept(self):
        projected, dropped = project_dead_registers(chain())
        assert dropped == ()
        assert projected is chain() or projected.k == 2

    def test_refuses_relational_signatures(self):
        signature = Signature(relations={"R": 1})
        automaton = RegisterAutomaton(
            1, signature, {"p"}, {"p"}, {"p"}, [("p", KEEP1, "p")]
        )
        projected, dropped = project_dead_registers(automaton)
        assert projected is automaton and dropped == ()

    def test_verdict_preserved(self):
        guard = SigmaType([eq(X(1), Y(1)), eq(Y(2), Y(1))])
        automaton = ra(2, {"p", "q"}, {"p"}, {"q"},
                       [("p", guard, "q"), ("q", FRESH1, "q")])
        projected, dropped = project_dead_registers(automaton)
        assert dropped == (2,)
        original = check_emptiness(
            ExtendedAutomaton(automaton, []), max_prefix=2, max_cycle=3
        )
        reduced = check_emptiness(
            ExtendedAutomaton(projected, []), max_prefix=2, max_cycle=3
        )
        assert original.empty == reduced.empty
        assert original.exact == reduced.exact

    def test_verdict_preserved_when_empty(self):
        # Emptiness by control (acc unreachable); registers 1 and 3 are
        # pure copies that never feed a read, so both are dropped.
        dead = ra(
            3,
            {"p", "q", "acc"},
            {"p"},
            {"acc"},
            [("p", SigmaType([eq(Y(3), Y(1)), eq(X(1), Y(1))]), "q")],
        )
        projected, dropped = project_dead_registers(dead)
        assert 3 in dropped
        original = check_emptiness(
            ExtendedAutomaton(dead, []), max_prefix=2, max_cycle=2
        )
        reduced = check_emptiness(
            ExtendedAutomaton(projected, []), max_prefix=2, max_cycle=2
        )
        assert original.empty and reduced.empty


# --------------------------------------------------------------------- #
# the DF006/DF007/DF008 passes
# --------------------------------------------------------------------- #


class TestBackwardPasses:
    def test_df008_flags_the_write_only_register(self):
        from repro.analysis import analyze

        guard = SigmaType([eq(X(1), Y(1)), eq(Y(2), Y(1))])
        automaton = ra(2, {"p", "q"}, {"p"}, {"q"},
                       [("p", guard, "q"), ("q", FRESH1, "q")])
        report = analyze(automaton)
        assert "DF008" in report.codes()
        finding = next(d for d in report.diagnostics if d.code == "DF008")
        assert finding.data["register"] == 2
        assert "project_dead_registers" in finding.data["reduction"]
        assert report.ok  # warnings do not fail the report

    def test_df008_silent_when_the_copy_feeds_a_read(self):
        from repro.analysis import analyze

        assert "DF008" not in analyze(chain()).codes()

    def test_df006_reports_positionally_dead_registers(self):
        from repro.analysis import analyze

        report = analyze(chain())
        assert "DF006" in report.codes()
        finding = next(d for d in report.diagnostics if d.code == "DF006")
        assert finding.data["dead"]
        assert finding.data["proofs"]

    def test_df007_flags_states_cut_from_every_anchor(self):
        from repro.analysis import analyze

        dead_end = ra(
            1,
            {"s", "acc", "pit"},
            {"s"},
            {"acc"},
            [
                ("s", KEEP1, "acc"),
                ("acc", KEEP1, "acc"),
                ("s", KEEP1, "pit"),
                ("pit", KEEP1, "pit"),
            ],
        )
        # pit never reaches acc in the graph: RA111 claims it and DF007
        # stays silent (each state is explained exactly once).
        assert "DF007" not in analyze(dead_end).codes()
        # DF007 fires where the graph-level check cannot see the problem:
        # junk2 reaches acc, but only over an infeasible edge.
        automaton = ra(
            2,
            {"q0", "q1", "junk2", "acc"},
            {"q0"},
            {"acc"},
            [
                ("q0", FORCE, "q1"),
                ("q1", KEEP2, "acc"),
                ("acc", KEEP2, "acc"),
                ("q1", KEEP2, "junk2"),
                ("junk2", SPLIT, "acc"),
            ],
        )
        report = analyze(automaton)
        assert "DF007" in report.codes()
        finding = next(d for d in report.diagnostics if d.code == "DF007")
        assert "junk2" in finding.location
        assert report.ok


# --------------------------------------------------------------------- #
# end-to-end: REPRO_REDUCE is byte-identical
# --------------------------------------------------------------------- #


def _fingerprint(result):
    witness = result.witness
    return (
        result.empty,
        result.exact,
        result.candidates_checked,
        result.max_prefix,
        result.max_cycle,
        None if witness is None else witness.trace,
    )


def _compare_reduce_modes(extended, max_prefix=2, max_cycle=4):
    """check_emptiness under REPRO_REDUCE=1 then =0; byte-identity bar."""
    previous = os.environ.get("REPRO_REDUCE")
    try:
        os.environ["REPRO_REDUCE"] = "1"
        reduced = check_emptiness(
            extended, max_prefix=max_prefix, max_cycle=max_cycle
        )
        os.environ["REPRO_REDUCE"] = "0"
        baseline = check_emptiness(
            extended, max_prefix=max_prefix, max_cycle=max_cycle
        )
    finally:
        if previous is None:
            os.environ.pop("REPRO_REDUCE", None)
        else:
            os.environ["REPRO_REDUCE"] = previous
    assert _fingerprint(reduced) == _fingerprint(baseline)
    return reduced, baseline


def junky_constrained():
    factor = concat(literal("s"), plus(literal("acc")))
    return ExtendedAutomaton(
        junky(), [GlobalConstraint("neq", 1, 1, factor)]
    )


class TestReduceSoundEndToEnd:
    def test_junky_unconstrained(self):
        _compare_reduce_modes(ExtendedAutomaton(junky(), []))

    def test_junky_with_inequality_constraint(self):
        _compare_reduce_modes(junky_constrained())

    def test_empty_language(self):
        automaton = ra(
            1, {"s", "acc"}, {"s"}, {"acc"}, [("s", KEEP1, "s")]
        )
        reduced, _ = _compare_reduce_modes(ExtendedAutomaton(automaton, []))
        assert reduced.empty

    def test_sound_with_interning_off(self):
        with interning(False):
            _compare_reduce_modes(junky_constrained())

    def test_sound_with_antichain_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANTICHAIN", "0")
        _compare_reduce_modes(junky_constrained())

    def test_sound_under_two_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert worker_count() == 2
        try:
            _compare_reduce_modes(junky_constrained())
        finally:
            shutdown_executor()


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_reduce_byte_identical_on_random_extended_automata(seed):
    """The headline property: REPRO_REDUCE never changes a single byte.

    Verdict, exactness, bounds, candidates_checked and the winning
    witness trace are identical with the reduction on and off -- trim is
    candidate-preserving, not merely sound.  Inequality constraints only,
    for the same tractability reason as the pruning property.
    """
    extended = random_extended_automaton(
        random.Random(seed),
        k=2,
        n_states=4,
        n_transitions=5,
        n_constraints=1,
        equality_fraction=0.0,
    )
    _compare_reduce_modes(extended, max_prefix=1, max_cycle=3)
