"""Tests for enhanced automata and Theorem 24 (Section 6)."""

import pytest

from repro import (
    Database,
    EnhancedAutomaton,
    ExtendedAutomaton,
    FiniteRun,
    FinitenessConstraint,
    GlobalConstraint,
    LassoRun,
    PairSelector,
    RegisterAutomaton,
    SigmaType,
    Signature,
    TupleInequalityConstraint,
    X,
    Y,
    eq,
    generate_finite_runs,
    neq,
    nrel,
    project_with_database,
    rel,
)
from repro.automata.regex import any_of, concat, literal, star
from repro.core.theorem24 import _normalize_db, adom_position_dfa
from repro.foundations.errors import SpecificationError
from repro.logic.types import project_type_dataless

EMPTY = SigmaType()


class TestConstraintModel:
    def test_tuple_arity_must_match(self):
        with pytest.raises(SpecificationError):
            TupleInequalityConstraint(
                left=((0, 1),),
                right=((0, 1), (1, 1)),
                selector=PairSelector(literal("q"), literal("q")),
            )

    def test_register_bounds_checked(self):
        base = RegisterAutomaton(
            1, Signature.empty(), {"q"}, {"q"}, {"q"}, [("q", EMPTY, "q")]
        )
        constraint = TupleInequalityConstraint(
            left=((0, 2),),
            right=((0, 2),),
            selector=PairSelector(star(literal("q")), literal("q")),
        )
        with pytest.raises(SpecificationError):
            EnhancedAutomaton(base, tuple_constraints=[constraint])

    def test_only_equalities_in_global_slot(self):
        base = RegisterAutomaton(
            1, Signature.empty(), {"q"}, {"q"}, {"q"}, [("q", EMPTY, "q")]
        )
        with pytest.raises(SpecificationError):
            EnhancedAutomaton(
                base, equality_constraints=[GlobalConstraint("neq", 1, 1, literal("q"))]
            )

    def test_from_extended_embedding(self, example7_extended):
        enhanced = EnhancedAutomaton.from_extended(example7_extended)
        assert len(enhanced.tuple_constraints) == 1
        run = FiniteRun((("a",), ("a",)), ("q", "q"), (EMPTY,))
        assert not enhanced.satisfies_constraints(run)
        run2 = FiniteRun((("a",), ("b",)), ("q", "q"), (EMPTY,))
        assert enhanced.satisfies_constraints(run2)


class TestTupleChecking:
    @pytest.fixture
    def pairwise(self):
        """Adjacent pairs (x, x+1) at p-anchors must differ as 2-tuples."""
        base = RegisterAutomaton(
            1,
            Signature.empty(),
            {"p", "q"},
            {"p"},
            {"p"},
            [("p", EMPTY, "q"), ("q", EMPTY, "p")],
        )
        selector = PairSelector(
            prefix=concat(star(any_of(["p", "q"])), literal("p")),
            factor=concat(literal("p"), star(any_of(["p", "q"])), literal("p")),
        )
        constraint = TupleInequalityConstraint(
            left=((0, 1), (1, 1)), right=((0, 1), (1, 1)), selector=selector
        )
        return EnhancedAutomaton(base, tuple_constraints=[constraint])

    def test_finite_run_tuple_violation(self, pairwise):
        run = FiniteRun(
            (("a",), ("b",), ("a",), ("b",)), ("p", "q", "p", "q"), (EMPTY,) * 3
        )
        # anchors 0 and 2: tuples (a,b) and (a,b) equal -> violation
        assert not pairwise.satisfies_constraints(run)

    def test_finite_run_tuple_ok(self, pairwise):
        run = FiniteRun(
            (("a",), ("b",), ("c",), ("b",)), ("p", "q", "p", "q"), (EMPTY,) * 3
        )
        assert pairwise.satisfies_constraints(run)

    def test_lasso_run_wrapped_violation(self, pairwise):
        run = LassoRun(
            (("a",), ("b",)), ("p", "q"), (EMPTY, EMPTY), loop_start=0
        )
        # every p-anchor repeats the same (a, b) pair
        assert not pairwise.satisfies_constraints(run)

    def test_selected_values(self):
        base = RegisterAutomaton(
            1,
            Signature.empty(),
            {"p", "q"},
            {"p"},
            {"p"},
            [("p", EMPTY, "q"), ("q", EMPTY, "p")],
        )
        fin = FinitenessConstraint(
            register=1, selector=concat(star(any_of(["p", "q"])), literal("p"))
        )
        enhanced = EnhancedAutomaton(base, finiteness_constraints=[fin])
        run = FiniteRun(
            (("a",), ("b",), ("c",), ("d",)), ("p", "q", "p", "q"), (EMPTY,) * 3
        )
        assert enhanced.selected_values(fin, run) == ["a", "c"]


class TestTheorem24Example23:
    def test_shape(self, example23_automaton):
        view = project_with_database(example23_automaton, 1)
        assert view.automaton.k == 1
        assert view.automaton.signature.is_empty()
        assert view.equality_constraints
        assert view.tuple_constraints
        assert view.finiteness_constraints

    def test_projected_runs_satisfy_view(self, example23_automaton, example23_database):
        normalised = _normalize_db(example23_automaton)
        view = project_with_database(example23_automaton, 1)
        checked = 0
        for run in generate_finite_runs(
            normalised, example23_database, 7, pool=("c", "d0", "d1"), limit=200
        ):
            projected = FiniteRun(
                tuple(row[:1] for row in run.data[:6]),
                run.states[:6],
                tuple(project_type_dataless(g, 1) for g in run.guards[:5]),
            )
            assert view.constraint_violation(projected) is None
            checked += 1
        assert checked > 0

    def test_even_odd_clash_rejected(self, example23_automaton):
        """The paper's analysis: even and odd values must be disjoint."""
        normalised = _normalize_db(example23_automaton)
        view = project_with_database(example23_automaton, 1)

        def search(values):
            transition_set = {
                (t.source, t.guard, t.target) for t in normalised.transitions
            }

            def extend(index, states):
                if index == len(values):
                    guards = tuple(
                        project_type_dataless(normalised.guard_of_state(states[i]), 1)
                        for i in range(len(values) - 1)
                    )
                    run = FiniteRun(tuple((v,) for v in values), tuple(states), guards)
                    from repro.db import Database as DB
                    from repro.db.evaluation import evaluate_type, transition_valuation

                    empty = DB(Signature.empty())
                    for i in range(len(values) - 1):
                        if not evaluate_type(
                            guards[i],
                            empty,
                            transition_valuation((values[i],), (values[i + 1],)),
                        ):
                            return None
                        if (
                            states[i],
                            normalised.guard_of_state(states[i]),
                            states[i + 1],
                        ) not in transition_set:
                            return None
                    if view.constraint_violation(run) is None:
                        return run
                    return None
                target = "p" if index % 2 == 0 else "q"
                for state in sorted(normalised.states, key=repr):
                    if state[0] != target:
                        continue
                    if index == 0 and state not in normalised.initial:
                        continue
                    found = extend(index + 1, states + [state])
                    if found is not None:
                        return found
                return None

            return extend(0, [])

        assert search(["u", "v", "u", "v", "u"]) is not None
        assert search(["u", "v", "u", "u", "u"]) is None

    def test_ternary_variant(self):
        """Example 23 with ternary E: pairs may repeat values but not tuples."""
        signature = Signature(relations={"E": 3, "U": 1})
        delta = SigmaType(
            [eq(X(2), Y(2)), rel("U", X(1)), rel("E", X(1), X(2), Y(1))]
        )
        delta_neg = SigmaType(
            [eq(X(2), Y(2)), rel("U", X(1)), nrel("E", X(1), X(2), Y(1))]
        )
        automaton = RegisterAutomaton(
            2,
            signature,
            {"p", "q"},
            {"p"},
            {"p"},
            [("p", delta, "q"), ("q", delta_neg, "p")],
        )
        view = project_with_database(automaton, 1)
        # the binary tuple constraints (value at alpha, value at alpha+1) exist
        binary = [c for c in view.tuple_constraints if c.arity == 2]
        assert binary

    def test_register_bound_checked(self, example23_automaton):
        with pytest.raises(SpecificationError):
            project_with_database(example23_automaton, 3)


class TestAdomPositions:
    def test_all_positions_selected_when_always_in_relation(self, example23_automaton):
        normalised = _normalize_db(example23_automaton)
        dfa = adom_position_dfa(normalised, 1)
        # register 1 is in U at every position: every non-empty prefix accepted
        state = dfa.initial
        for symbol in [sorted(normalised.states, key=repr)[0]] * 3:
            state = dfa.delta(state, symbol)
            assert state in dfa.accepting

    def test_no_relations_never_selected(self):
        base = RegisterAutomaton(
            1, Signature.empty(), {"q"}, {"q"}, {"q"}, [("q", EMPTY, "q")]
        ).equality_completed().state_driven()
        dfa = adom_position_dfa(base, 1)
        assert dfa.is_empty()
