"""Tests for LR-boundedness and Theorem 19 (Section 5)."""

import pytest

from repro import (
    Database,
    ExtendedAutomaton,
    GlobalConstraint,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    eq,
    generate_finite_runs,
    is_lr_bounded,
    lr_bound_estimate,
    neq,
    project_register_automaton,
    synthesize_register_automaton,
)
from repro.automata.regex import concat, literal, plus
from repro.core.lr import bipartite_vertex_cover
from repro.foundations.errors import SpecificationError

from tests.helpers import canonical_trace

EMPTY = SigmaType()


class TestVertexCover:
    def test_empty_graph(self):
        assert bipartite_vertex_cover([], [], []) == 0

    def test_star(self):
        edges = [(0, "a"), (0, "b"), (0, "c")]
        assert bipartite_vertex_cover([0], ["a", "b", "c"], edges) == 1

    def test_perfect_matching(self):
        edges = [(0, "a"), (1, "b"), (2, "c")]
        assert bipartite_vertex_cover([0, 1, 2], ["a", "b", "c"], edges) == 3

    def test_koenig_on_path(self):
        edges = [(0, "a"), (1, "a"), (1, "b")]
        assert bipartite_vertex_cover([0, 1], ["a", "b"], edges) == 2


class TestExamples16And17:
    def test_local_disequality_is_bounded(self, example16_bounded):
        assert is_lr_bounded(example16_bounded)

    def test_trace_equivalent_variant_is_not(self, example16_unbounded):
        """Example 16: LR-boundedness is syntactic, not semantic."""
        assert not is_lr_bounded(example16_unbounded)

    def test_all_distinct_is_not_bounded(self, example7_extended):
        """Example 17: the all-distinct automaton is not LR-bounded,
        hence (Theorem 19) not a projection of any register automaton."""
        assert not is_lr_bounded(example7_extended)

    def test_bound_estimate_small_for_local(self, example16_bounded):
        assert lr_bound_estimate(example16_bounded) <= 1


class TestProposition20:
    def test_projection_outputs_are_lr_bounded(self, example1_automaton):
        projected = project_register_automaton(example1_automaton, 1)
        assert is_lr_bounded(projected, max_cycle=3)

    def test_projection_bound_at_most_k(self, example1_automaton):
        projected = project_register_automaton(example1_automaton, 1)
        assert lr_bound_estimate(projected, max_cycle=3) <= example1_automaton.k


class TestProposition22:
    @pytest.fixture
    def alternating(self):
        """p/q alternation with adjacent values distinct (LR bound 1)."""
        base = RegisterAutomaton(
            1,
            Signature.empty(),
            {"p", "q"},
            {"p"},
            {"p"},
            [("p", EMPTY, "q"), ("q", EMPTY, "p")],
        )
        return ExtendedAutomaton(
            base, [GlobalConstraint("neq", 1, 1, concat(literal("p"), literal("q")))]
        )

    def test_requires_single_register(self, example1_automaton):
        with pytest.raises(SpecificationError):
            synthesize_register_automaton(ExtendedAutomaton(example1_automaton, []))

    def test_requires_no_equalities(self, example5_extended):
        with pytest.raises(SpecificationError):
            synthesize_register_automaton(example5_extended)

    def test_soundness_and_completeness(self, alternating, empty_database):
        """Pi_1(Reg(A)) == Reg(B) on bounded prefixes."""
        synthesized = synthesize_register_automaton(alternating, bank_a=1, bank_b=1)
        pool = ("a", "b", "c")
        length = 5
        constrained = {
            canonical_trace(run.data)
            for run in generate_finite_runs(
                alternating.automaton, empty_database, length, pool=pool
            )
            if alternating.satisfies_constraints(run)
        }
        projected = {
            canonical_trace(tuple(row[:1] for row in run.data))
            for run in generate_finite_runs(
                synthesized, empty_database, length, pool=pool
            )
        }
        assert projected == constrained

    def test_register_layout(self, alternating):
        synthesized = synthesize_register_automaton(alternating, bank_a=2, bank_b=3)
        assert synthesized.k == 1 + 2 + 3
