"""Tests for the caching/indexing layer (repro.core.caching).

The headline regression here is id-recycling safety: no cache may serve an
entry recorded for a garbage-collected object to a new object that happens
to be allocated at the same address.  The original symptom was the flaky
``test_inequality_constraint_streamed`` failure, caused by a module-level
dead-state cache keyed by the DFA's id.
"""

import gc
from pathlib import Path

import pytest

from repro import (
    Database,
    ExtendedAutomaton,
    GlobalConstraint,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    eq,
    rel,
)
from repro.automata.dfa import Dfa
from repro.automata.regex import concat, literal, plus
from repro.core.caching import (
    AutomatonIndex,
    CacheStats,
    ValueCache,
    agreement,
    all_cache_stats,
    cache_stats,
    cached_method,
    dead_states,
)
from repro.core.streaming import StreamingChecker, StreamingViolation
from repro.db.evaluation import evaluate_type, transition_valuation
from repro.foundations.errors import EvaluationError

EMPTY = SigmaType()

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"


def _chain_dfa(accepting):
    """A two-state DFA s -> t -> t over one symbol, with given accepting set."""
    return Dfa(
        states={"s", "t"},
        alphabet={"a"},
        transitions={("s", "a"): "t", ("t", "a"): "t"},
        initial="s",
        accepting=accepting,
    )


class TestCacheStats:
    def test_counters_and_hit_rate(self):
        stats = CacheStats("unit.counters")
        assert stats.hit_rate == 0.0
        stats.hit()
        stats.hit()
        stats.miss()
        stats.eviction()
        stats.note_entries(3)
        stats.note_entries(2)
        assert stats.lookups == 3
        assert stats.hits == 2 and stats.misses == 1 and stats.evictions == 1
        assert stats.peak_entries == 3
        assert stats.hit_rate == pytest.approx(2 / 3)
        stats.reset()
        assert stats.lookups == 0 and stats.peak_entries == 0

    def test_registry_shares_by_name(self):
        first = cache_stats("unit.shared")
        second = cache_stats("unit.shared")
        assert first is second
        first.hit()
        assert "unit.shared" in all_cache_stats()
        assert all_cache_stats()["unit.shared"]["hits"] >= 1


class TestValueCache:
    def test_computes_once_per_key(self):
        cache = ValueCache("unit.value")
        calls = []
        for _ in range(3):
            value = cache.lookup("k", lambda: calls.append(1) or "v")
            assert value == "v"
        assert len(calls) == 1
        assert "k" in cache and len(cache) == 1

    def test_fifo_eviction_at_maxsize(self):
        cache = ValueCache("unit.bounded", maxsize=2)
        cache.lookup(1, lambda: "one")
        cache.lookup(2, lambda: "two")
        cache.lookup(3, lambda: "three")
        assert len(cache) == 2
        assert 1 not in cache and 3 in cache
        assert cache.stats.evictions >= 1


class TestCachedMethod:
    def test_instances_never_share_entries(self):
        class Box:
            def __init__(self, payload):
                self.payload = payload

            @cached_method("unit.box")
            def doubled(self, factor):
                return self.payload * factor

        a, b = Box(1), Box(100)
        assert a.doubled(2) == 2
        # A second instance with identical arguments must compute its own
        # value, not inherit the first instance's.
        assert b.doubled(2) == 200
        assert a.doubled(2) == 2  # and the hit path returns the stored value

    def test_entries_die_with_the_instance(self):
        class Box:
            @cached_method("unit.box_lifetime")
            def answer(self):
                return 42

        before = cache_stats("unit.box_lifetime").misses
        for _ in range(20):
            box = Box()
            assert box.answer() == 42
            del box
            gc.collect()
        # every fresh instance misses: nothing leaked across lifetimes
        assert cache_stats("unit.box_lifetime").misses == before + 20


class TestAutomatonIndex:
    def test_matches_naive_filtering(self, example1_automaton):
        index = AutomatonIndex.of(example1_automaton)
        transitions = example1_automaton.transitions
        for state in example1_automaton.states:
            expected = tuple(t for t in transitions if t.source == state)
            assert index.transitions_from(state) == expected
            for target in example1_automaton.states:
                expected_pair = tuple(
                    t for t in transitions if t.source == state and t.target == target
                )
                assert index.transitions_between(state, target) == expected_pair
        for transition in transitions:
            assert transition in index.transitions_with_guard(
                transition.source, transition.guard
            )

    def test_unknown_keys_return_empty(self, example1_automaton):
        index = AutomatonIndex.of(example1_automaton)
        assert index.transitions_from("nowhere") == ()
        assert index.transitions_between("q1", "nowhere") == ()
        assert index.transitions_with_guard("nowhere", EMPTY) == ()

    def test_one_index_per_automaton_object(self, example1_automaton):
        assert AutomatonIndex.of(example1_automaton) is AutomatonIndex.of(
            example1_automaton
        )

    def test_automaton_methods_delegate(self, example1_automaton):
        for state in example1_automaton.states:
            assert example1_automaton.transitions_from(state) == AutomatonIndex.of(
                example1_automaton
            ).transitions_from(state)


class TestDeadStates:
    def test_backward_reachability(self):
        trap = _chain_dfa(accepting={"s"})
        assert dead_states(trap) == frozenset({"t"})
        live = _chain_dfa(accepting={"t"})
        assert dead_states(live) == frozenset()

    def test_id_reuse_cannot_poison_the_cache(self):
        """The headline regression: alternate structurally different DFAs
        through create/discard cycles so the allocator recycles addresses;
        the dead-state classification must stay correct every time."""
        for _ in range(100):
            trap = _chain_dfa(accepting={"s"})
            assert "t" in dead_states(trap)
            del trap
            gc.collect()
            live = _chain_dfa(accepting={"t"})
            assert dead_states(live) == frozenset()
            del live
            gc.collect()


class TestStreamingRegression:
    def test_inequality_constraint_fires_across_checker_churn(self, empty_database):
        """Rebuild spec + checker from scratch each round (churning DFA
        objects) and require the duplicate-value violation to fire every
        round -- the original flake missed it when a recycled id hit a
        stale dead-state entry."""
        for _ in range(25):
            base = RegisterAutomaton(
                1, Signature.empty(), {"q"}, {"q"}, {"q"}, [("q", EMPTY, "q")]
            )
            spec = ExtendedAutomaton(
                base,
                [GlobalConstraint("neq", 1, 1, concat(literal("q"), plus(literal("q"))))],
            )
            checker = StreamingChecker(spec, empty_database)
            for index in range(4):
                assert checker.feed("q", ("v%d" % index,)) is None
            with pytest.raises(StreamingViolation):
                checker.feed("q", ("v1",))
            del spec, checker
            gc.collect()


class TestGuardAgreement:
    def test_memoized_agreement_matches_direct(self, example1_guards):
        from repro.logic.types import agree

        d1, d2, d3 = example1_guards
        for now, nxt in [(d1, d2), (d2, d3), (d3, d1), (d2, d2)]:
            assert agreement(now, nxt, 2) == agree(now, nxt, 2)
            # second call takes the hit path and must return the same verdict
            assert agreement(now, nxt, 2) == agree(now, nxt, 2)


class TestEvaluateTypeMemo:
    def test_equality_guard_memoized_by_pattern(self, empty_database):
        guard = SigmaType([eq(X(1), Y(1))])
        same = transition_valuation(("a",), ("a",))
        other_same = transition_valuation(("z",), ("z",))  # same pattern, new values
        different = transition_valuation(("a",), ("b",))
        assert evaluate_type(guard, empty_database, same) is True
        assert evaluate_type(guard, empty_database, other_same) is True
        assert evaluate_type(guard, empty_database, different) is False

    def test_database_sensitive_guards_are_not_memoized(self):
        signature = Signature(relations={"P": 1})
        guard = SigmaType([rel("P", X(1))])
        holds = Database(signature, relations={"P": [("a",)]})
        empty = Database(signature, relations={"P": []})
        valuation = transition_valuation(("a",), ("a",))
        assert evaluate_type(guard, holds, valuation) is True
        # same guard, same valuation, different database: must re-evaluate
        assert evaluate_type(guard, empty, valuation) is False

    def test_missing_valuation_still_raises(self, empty_database):
        guard = SigmaType([eq(X(1), Y(1))])
        with pytest.raises(EvaluationError):
            evaluate_type(guard, empty_database, {})


class TestStructuralKey:
    def test_equal_structure_equal_key(self):
        assert _chain_dfa({"s"}).structural_key() == _chain_dfa({"s"}).structural_key()
        assert _chain_dfa({"s"}).structural_key() != _chain_dfa({"t"}).structural_key()


class TestNoIdKeyedCaches:
    def test_src_contains_no_id_calls(self):
        """The CI lint, executed as a test: object ids must never be used
        (in cache keys or anywhere else) in the library source.  Runs the
        AST linter (``tools/lint_repro.py``) rather than a grep, so
        comments, strings and identifiers ending in ``id`` don't trip it."""
        import sys

        sys.path.insert(0, str(SRC_ROOT.parent / "tools"))
        try:
            import lint_repro
        finally:
            sys.path.pop(0)
        offenders = [
            finding.format()
            for finding in lint_repro.lint_paths([str(SRC_ROOT)])
            if finding.code == "ID001"
        ]
        assert not offenders, "id()-keyed code found:\n" + "\n".join(offenders)
