"""Tests for the static-analysis layer (repro.analysis + tools/lint_repro)."""

import random
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Dfa, Nfa, RegisterAutomaton, SigmaType, Signature, X, Y, eq, neq, rel
from repro.analysis import (
    Severity,
    analyze,
    is_clean,
    passes_for,
    registered_passes,
)
from repro.analysis.cli import analyze_target, capture_instances, main as cli_main
from repro.analysis.dataflow import MAX_REGISTERS
from repro.foundations.diagnostics import Diagnostic, Report, error, info, warning
from repro.foundations.errors import SpecificationError
from repro.generators import random_register_automaton
from repro.workflows import Stage, WorkflowSpec

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOLS = REPO_ROOT / "tools"
sys.path.insert(0, str(TOOLS))

import lint_repro  # noqa: E402  (path injected above)


EMPTY = Signature.empty()


def ra(k, states, initial, accepting, transitions, signature=EMPTY):
    return RegisterAutomaton(k, signature, states, initial, accepting, transitions)


def example1():
    d1 = SigmaType([eq(X(1), X(2)), eq(X(2), Y(2))])
    d2 = SigmaType([eq(X(2), Y(2))])
    d3 = SigmaType([eq(X(2), Y(2)), eq(Y(1), Y(2))])
    return ra(
        2,
        {"q1", "q2"},
        {"q1"},
        {"q1"},
        [("q1", d1, "q2"), ("q2", d2, "q2"), ("q2", d3, "q1")],
    )


# --------------------------------------------------------------------- #
# diagnostics / report plumbing
# --------------------------------------------------------------------- #


class TestReport:
    def test_severity_rollups(self):
        report = Report("subject")
        report.extend([info("A1", "i"), warning("B1", "w"), error("C1", "e")])
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert len(report.infos) == 1
        assert not report.ok
        assert report.codes() == ("A1", "B1", "C1")

    def test_ok_means_no_errors(self):
        report = Report("s")
        report.add(warning("W1", "just a warning"))
        assert report.ok

    def test_render_mentions_code_and_summary(self):
        report = Report("thing")
        report.add(error("RA101", "boom", "somewhere"))
        rendered = report.render()
        assert "RA101" in rendered
        assert "1 error(s)" in rendered

    def test_render_clean(self):
        assert "clean" in Report("thing").render(min_severity=Severity.WARNING)

    def test_merge_prefixes_subject(self):
        inner = Report("obj#1")
        inner.add(error("E1", "bad", "state 'q'"))
        outer = Report("script")
        outer.merge(inner)
        assert outer.diagnostics[0].location == "obj#1: state 'q'"


class TestSpecificationErrorDiagnostics:
    """Construction-time validation and analysis share one codepath."""

    def test_unknown_initial_state_carries_diagnostic(self):
        with pytest.raises(SpecificationError) as caught:
            ra(1, {"a"}, {"zz"}, {"a"}, [])
        assert [d.code for d in caught.value.diagnostics] == ["RA001"]

    def test_unknown_accepting_state(self):
        with pytest.raises(SpecificationError) as caught:
            ra(1, {"a"}, {"a"}, {"zz"}, [])
        assert [d.code for d in caught.value.diagnostics] == ["RA002"]

    def test_unknown_transition_state(self):
        with pytest.raises(SpecificationError) as caught:
            ra(1, {"a"}, {"a"}, {"a"}, [("a", SigmaType(), "ghost")])
        assert "RA003" in [d.code for d in caught.value.diagnostics]

    def test_non_register_guard_variable(self):
        from repro.logic.terms import Var

        with pytest.raises(SpecificationError) as caught:
            ra(1, {"a"}, {"a"}, {"a"}, [("a", SigmaType([eq(Var("z1"), X(1))]), "a")])
        assert "RA004" in [d.code for d in caught.value.diagnostics]

    def test_register_index_beyond_k(self):
        with pytest.raises(SpecificationError) as caught:
            ra(1, {"a"}, {"a"}, {"a"}, [("a", SigmaType([eq(X(1), X(2))]), "a")])
        assert "RA004" in [d.code for d in caught.value.diagnostics]

    def test_undeclared_constant(self):
        from repro.logic.terms import Const

        with pytest.raises(SpecificationError) as caught:
            ra(1, {"a"}, {"a"}, {"a"}, [("a", SigmaType([eq(X(1), Const("c"))]), "a")])
        assert "RA005" in [d.code for d in caught.value.diagnostics]

    def test_unknown_relation(self):
        with pytest.raises(SpecificationError) as caught:
            ra(1, {"a"}, {"a"}, {"a"}, [("a", SigmaType([rel("P", X(1))]), "a")])
        assert "RA006" in [d.code for d in caught.value.diagnostics]

    def test_multiple_findings_all_reported(self):
        with pytest.raises(SpecificationError) as caught:
            ra(1, {"a"}, {"p"}, {"q"}, [])
        assert {d.code for d in caught.value.diagnostics} == {"RA001", "RA002"}

    def test_plain_message_error_still_works(self):
        failure = SpecificationError("just a message")
        assert failure.diagnostics == ()
        assert "just a message" in str(failure)


# --------------------------------------------------------------------- #
# register-automaton passes
# --------------------------------------------------------------------- #


class TestAutomatonPasses:
    def test_example1_is_error_free(self):
        report = analyze(example1())
        assert report.ok
        # ... but informatively not complete and not state-driven:
        assert "RA130" in report.codes()
        assert "RA140" in report.codes()

    def test_unsatisfiable_guard_detected(self):
        bad = SigmaType([eq(X(1), Y(1)), neq(X(1), Y(1))], check=False)
        automaton = ra(1, {"a"}, {"a"}, {"a"}, [("a", bad, "a")])
        report = analyze(automaton)
        assert not report.ok
        assert "RA101" in [d.code for d in report.errors]

    def test_unreachable_state(self):
        keep = SigmaType([eq(X(1), Y(1))])
        automaton = ra(
            1, {"a", "b"}, {"a"}, {"a"}, [("a", keep, "a"), ("b", keep, "a")]
        )
        report = analyze(automaton)
        codes = [d.code for d in report.warnings]
        assert "RA110" in codes

    def test_dead_state(self):
        keep = SigmaType([eq(X(1), Y(1))])
        # "b" is reachable but cannot reach the accepting state "a".
        automaton = ra(
            1, {"a", "b"}, {"a"}, {"a"}, [("a", keep, "a"), ("a", keep, "b")]
        )
        report = analyze(automaton)
        assert any(
            d.code == "RA111" and "'b'" in d.location for d in report.warnings
        )

    def test_empty_acceptance_set(self):
        keep = SigmaType([eq(X(1), Y(1))])
        automaton = ra(1, {"a"}, {"a"}, set(), [("a", keep, "a")])
        report = analyze(automaton)
        assert "RA112" in [d.code for d in report.warnings]

    def test_unreachable_acceptance(self):
        keep = SigmaType([eq(X(1), Y(1))])
        automaton = ra(
            1, {"a", "b"}, {"a"}, {"b"}, [("a", keep, "a"), ("b", keep, "b")]
        )
        report = analyze(automaton)
        assert "RA112" in [d.code for d in report.warnings]

    def test_dead_register(self):
        keep1 = SigmaType([eq(X(1), Y(1))])
        automaton = ra(3, {"a"}, {"a"}, {"a"}, [("a", keep1, "a")])
        report = analyze(automaton)
        dead = [d for d in report.warnings if d.code == "RA120"]
        assert len(dead) == 2  # registers 2 and 3
        assert "register 2" in dead[0].message

    def test_nondeterministic_targets(self):
        keep = SigmaType([eq(X(1), Y(1))])
        automaton = ra(
            1, {"a", "b"}, {"a"}, {"a"},
            [("a", keep, "a"), ("a", keep, "b"), ("b", keep, "a")],
        )
        report = analyze(automaton)
        assert "RA141" in report.codes()

    def test_completed_is_certified_complete(self):
        completed = example1().completed()
        report = analyze(completed)
        assert "RA130" not in report.codes()
        assert "RA131" not in report.codes()

    def test_state_driven_is_certified_deterministic(self):
        converted = example1().state_driven()
        report = analyze(converted)
        assert "RA140" not in report.codes()

    def test_completeness_cap_bails_out(self):
        signature = Signature(relations={"R": 8})  # 4 terms^8 >> the cap
        guard = SigmaType([rel("R", *[X(1)] * 8)])
        automaton = ra(2, {"a"}, {"a"}, {"a"}, [("a", guard, "a")], signature)
        report = analyze(automaton)
        assert "RA139" in report.codes()
        assert "RA130" not in report.codes()


# --------------------------------------------------------------------- #
# guard passes
# --------------------------------------------------------------------- #


class TestGuardPasses:
    def test_satisfiable_guard_clean(self):
        guard = SigmaType([eq(X(1), Y(1)), neq(X(1), X(2))])
        assert analyze(guard).ok

    def test_unsatisfiable_guard(self):
        guard = SigmaType([eq(X(1), Y(1)), neq(X(1), Y(1))], check=False)
        report = analyze(guard)
        assert [d.code for d in report.errors] == ["GT001"]

    def test_redundant_literal(self):
        guard = SigmaType([eq(X(1), X(2)), eq(X(2), Y(1)), eq(X(1), Y(1))])
        report = analyze(guard)
        assert "GT002" in report.codes()

    def test_non_register_variable(self):
        from repro.logic.terms import Var

        guard = SigmaType([eq(Var("z9"), Var("z8"))])
        report = analyze(guard)
        assert "GT003" in report.codes()


# --------------------------------------------------------------------- #
# workflow passes
# --------------------------------------------------------------------- #


def _spec(rules=(), attributes=("a", "b"), distinct=False, extra_stages=()):
    stages = [Stage("start"), Stage("loop", recurring=True)] + list(extra_stages)
    spec = WorkflowSpec(
        attributes=list(attributes), stages=stages, distinct_attributes=distinct
    )
    spec.rule("start", "loop").keep("a")
    spec.rule("loop", "loop").keep("a")
    for build in rules:
        build(spec)
    return spec


class TestWorkflowPasses:
    def test_clean_spec(self):
        report = analyze(_spec())
        assert report.ok
        assert not report.warnings

    def test_unknown_attribute(self):
        spec = _spec(rules=[lambda s: s.rule("loop", "loop").keep("ghost")])
        report = analyze(spec)
        assert "WF001" in [d.code for d in report.errors]

    def test_unknown_relation(self):
        spec = _spec(rules=[lambda s: s.rule("loop", "loop").lookup("Nope", "a", "b")])
        report = analyze(spec)
        assert "WF002" in [d.code for d in report.errors]

    def test_contradictory_rule(self):
        def build(s):
            s.rule("loop", "loop").equal("a", "b").distinct("a", "b")

        report = analyze(_spec(rules=[build]))
        assert "WF003" in [d.code for d in report.errors]

    def test_rule_contradicts_distinct_attributes(self):
        def build(s):
            s.rule("loop", "loop").equal("a", "b")

        report = analyze(_spec(rules=[build], distinct=True))
        assert "WF003" in [d.code for d in report.errors]

    def test_unreachable_stage(self):
        report = analyze(_spec(extra_stages=[Stage("island")]))
        assert any(
            d.code == "WF010" and "island" in d.location for d in report.warnings
        )

    def test_dead_end_stage(self):
        def build(s):
            s.rule("start", "cul-de-sac")

        report = analyze(_spec(rules=[build], extra_stages=[Stage("cul-de-sac")]))
        assert "WF012" in [d.code for d in report.warnings]

    def test_unreachable_recurring_stage_is_vacuous(self):
        stages = [Stage("start"), Stage("loop", recurring=True)]
        spec = WorkflowSpec(attributes=["a"], stages=stages)
        spec.rule("start", "start").keep("a")  # never reaches "loop"
        report = analyze(spec)
        assert "WF011" in [d.code for d in report.warnings]

    def test_manuscript_review_workflow_is_error_free(self):
        from repro.workflows import manuscript_review_workflow

        report = analyze(manuscript_review_workflow())
        assert report.ok, report.render()
        assert not report.warnings


# --------------------------------------------------------------------- #
# finite-automaton passes
# --------------------------------------------------------------------- #


def _dfa(accepting):
    return Dfa(
        states={0, 1},
        alphabet={"a"},
        transitions={(0, "a"): 1, (1, "a"): 1},
        initial=0,
        accepting=accepting,
    )


class TestFinitePasses:
    def test_live_dfa_clean(self):
        assert not analyze(_dfa({1})).codes()

    def test_dead_state_and_empty_language(self):
        report = analyze(_dfa(set()))
        assert "FA002" in report.codes()
        assert "FA003" in report.codes()

    def test_unreachable_dfa_state(self):
        dfa = Dfa(
            states={0, 1, 2},
            alphabet={"a"},
            transitions={(0, "a"): 1, (1, "a"): 1, (2, "a"): 1},
            initial=0,
            accepting={1},
        )
        report = analyze(dfa)
        assert "FA001" in report.codes()

    def test_nfa_unreachable_and_empty(self):
        nfa = Nfa({0: {"a": {0}}, 5: {"a": {6}}}, initial={0}, accepting={6})
        report = analyze(nfa)
        assert "NF001" in report.codes()
        assert "NF002" in report.codes()

    def test_nfa_live_clean(self):
        nfa = Nfa({0: {"a": {1}}}, initial={0}, accepting={1})
        assert not analyze(nfa).codes()


# --------------------------------------------------------------------- #
# the engine itself
# --------------------------------------------------------------------- #


class TestEngine:
    def test_passes_selected_by_type(self):
        names = {p.name for p in passes_for(example1())}
        assert "structure" in names
        assert "dfa-liveness" not in names

    def test_only_filter(self):
        report = analyze(example1(), only=["completeness"])
        assert set(report.codes()) <= {"RA130", "RA131", "RA139"}

    def test_crashing_pass_becomes_finding(self):
        from repro.analysis.engine import _FunctionPass

        def explode(obj):
            raise RuntimeError("kaboom")

        bad_pass = _FunctionPass(explode, "explode", object, ())
        report = analyze(example1(), passes=[bad_pass])
        assert [d.code for d in report.errors] == ["XX000"]
        assert "kaboom" in report.errors[0].message

    def test_is_clean(self):
        assert is_clean(example1())
        bad = SigmaType([eq(X(1), Y(1)), neq(X(1), Y(1))], check=False)
        assert not is_clean(ra(1, {"a"}, {"a"}, {"a"}, [("a", bad, "a")]))

    def test_registry_covers_documented_targets(self):
        targets = {p.target for p in registered_passes()}
        assert {RegisterAutomaton, SigmaType, WorkflowSpec, Dfa, Nfa} <= targets


# --------------------------------------------------------------------- #
# property tests: normal forms are certified by the passes
# --------------------------------------------------------------------- #


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=2))
def test_completed_automata_pass_completeness(seed, k):
    rng = random.Random(seed)
    automaton = random_register_automaton(rng, k=k, n_states=3, n_transitions=4)
    report = analyze(automaton.equality_completed(), only=["completeness", "guard-sat"])
    assert report.ok, report.render()
    assert "RA130" not in report.codes()


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=2))
def test_fully_completed_automata_pass_completeness(seed, k):
    """``completed()`` parity with the ``equality_completed()`` test above.

    On a relation-free signature the two coincide semantically, but they
    run different code paths (``completions`` with the full relation map
    vs the empty one); both must be certified RA130-clean.
    """
    rng = random.Random(seed)
    automaton = random_register_automaton(rng, k=k, n_states=3, n_transitions=4)
    report = analyze(automaton.completed(), only=["completeness", "guard-sat"])
    assert report.ok, report.render()
    assert "RA130" not in report.codes()


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=3))
def test_state_driven_automata_pass_determinism(seed, k):
    rng = random.Random(seed)
    automaton = random_register_automaton(rng, k=k, n_states=3, n_transitions=5)
    report = analyze(automaton.state_driven(), only=["determinism", "guard-sat"])
    assert report.ok, report.render()
    assert "RA140" not in report.codes()


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_generated_automata_never_error(seed):
    """Generator outputs are valid by construction: no ERROR diagnostics."""
    rng = random.Random(seed)
    automaton = random_register_automaton(rng, k=2, n_states=4, n_transitions=6)
    report = analyze(automaton)
    assert report.ok, report.render()


# --------------------------------------------------------------------- #
# the CLI
# --------------------------------------------------------------------- #

CLEAN_SCRIPT = textwrap.dedent(
    """
    from repro import RegisterAutomaton, SigmaType, Signature, X, Y, eq

    keep = SigmaType([eq(X(1), Y(1))])
    RegisterAutomaton(1, Signature.empty(), {"a"}, {"a"}, {"a"}, [("a", keep, "a")])
    """
)

BROKEN_SCRIPT = textwrap.dedent(
    """
    from repro import RegisterAutomaton, SigmaType, Signature, X, Y, eq, neq

    bad = SigmaType([eq(X(1), Y(1)), neq(X(1), Y(1))], check=False)
    RegisterAutomaton(1, Signature.empty(), {"a"}, {"a"}, {"a"}, [("a", bad, "a")])
    """
)

CRASHING_SCRIPT = "raise ValueError('no automata today')\n"


class TestCli:
    def test_clean_script_exits_zero(self, tmp_path, capsys):
        script = tmp_path / "clean.py"
        script.write_text(CLEAN_SCRIPT)
        assert cli_main([str(script)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_broken_corpus_exits_nonzero_and_names_the_code(self, tmp_path, capsys):
        script = tmp_path / "broken.py"
        script.write_text(BROKEN_SCRIPT)
        assert cli_main([str(script)]) == 1
        out = capsys.readouterr().out
        assert "RA101" in out
        assert "unsatisfiable" in out

    def test_crashing_script_is_reported(self, tmp_path, capsys):
        script = tmp_path / "crash.py"
        script.write_text(CRASHING_SCRIPT)
        assert cli_main([str(script)]) == 1
        assert "XX001" in capsys.readouterr().out

    def test_strict_turns_warnings_into_failures(self, tmp_path):
        script = tmp_path / "warned.py"
        script.write_text(
            textwrap.dedent(
                """
                from repro import RegisterAutomaton, SigmaType, Signature, X, Y, eq

                keep = SigmaType([eq(X(1), Y(1))])
                RegisterAutomaton(
                    2, Signature.empty(), {"a"}, {"a"}, {"a"}, [("a", keep, "a")]
                )  # register 2 dead -> RA120 warning
                """
            )
        )
        assert cli_main([str(script)]) == 0
        assert cli_main(["--strict", str(script)]) == 1

    def test_capture_restores_init(self, tmp_path):
        original = RegisterAutomaton.__init__
        with capture_instances() as captured:
            example1()
        assert RegisterAutomaton.__init__ is original
        assert len(captured) == 1
        # constructing after the context does not append
        example1()
        assert len(captured) == 1

    def test_analyze_target_counts_subjects(self, tmp_path):
        script = tmp_path / "two.py"
        script.write_text(CLEAN_SCRIPT + CLEAN_SCRIPT.replace("import", "import  "))
        report = analyze_target(str(script))
        assert report.subject == str(script)

    def test_examples_analyze_clean_in_subprocess(self):
        """The acceptance gate: the CLI exits 0 on a real example script."""
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(REPO_ROOT / "examples" / "quickstart.py")],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        import json

        script = tmp_path / "broken.py"
        script.write_text(BROKEN_SCRIPT)
        assert cli_main(["--format", "json", str(script)]) == 1
        payload = json.loads(capsys.readouterr().out)
        (entry,) = payload["reports"]
        assert entry["target"] == str(script)
        assert not entry["ok"]
        assert entry["counts"]["error"] >= 1
        codes = {d["code"] for d in entry["diagnostics"]}
        assert "RA101" in codes
        by_code = {d["code"]: d for d in entry["diagnostics"]}
        assert by_code["RA101"]["severity"] == "error"
        assert by_code["RA101"]["source"]  # the pass that produced it

    def test_json_format_clean_script(self, tmp_path, capsys):
        import json

        script = tmp_path / "clean.py"
        script.write_text(CLEAN_SCRIPT)
        assert cli_main(["--format", "json", str(script)]) == 0
        payload = json.loads(capsys.readouterr().out)
        (entry,) = payload["reports"]
        assert entry["ok"]


# --------------------------------------------------------------------- #
# the AST repo linter
# --------------------------------------------------------------------- #

ID_CACHE_FIXTURE = textwrap.dedent(
    """
    _DEAD_CACHE = {}

    def dead_states(dfa):
        key = id(dfa)  # the historical bug: ids are recycled
        if key not in _DEAD_CACHE:
            _DEAD_CACHE[key] = compute(dfa)
        return _DEAD_CACHE[key]
    """
)


class TestLintRepro:
    def test_reproduces_the_id_cache_finding(self):
        findings = list(lint_repro.iter_findings(ID_CACHE_FIXTURE, "fixture.py"))
        assert [f.code for f in findings] == ["ID001"]
        assert findings[0].line == 5

    def test_grep_false_positives_are_not_flagged(self):
        source = textwrap.dedent(
            """
            # id( in a comment is fine
            text = "id(obj) in a string is fine"
            def guard_id(x):  # a function merely *named* ...id is fine
                return x
            def shadowing(id):
                return id(3)  # calls the parameter, not the builtin
            """
        )
        assert list(lint_repro.iter_findings(source, "ok.py")) == []

    def test_mutable_default_argument(self):
        source = "def f(pool=[], table={}, items=set(), ok=None):\n    pass\n"
        codes = [f.code for f in lint_repro.iter_findings(source, "x.py")]
        assert codes == ["DEF001", "DEF001", "DEF001"]

    def test_keyword_only_mutable_default(self):
        source = "def f(*, pool=[]):\n    pass\n"
        codes = [f.code for f in lint_repro.iter_findings(source, "x.py")]
        assert codes == ["DEF001"]

    def test_naked_except(self):
        source = "try:\n    pass\nexcept:\n    pass\n"
        codes = [f.code for f in lint_repro.iter_findings(source, "x.py")]
        assert codes == ["EXC001"]

    def test_typed_except_ok(self):
        source = "try:\n    pass\nexcept ValueError:\n    pass\n"
        assert list(lint_repro.iter_findings(source, "x.py")) == []

    def test_syntax_error_is_a_finding(self):
        codes = [f.code for f in lint_repro.iter_findings("def broken(:\n", "x.py")]
        assert codes == ["SYN001"]

    def test_hot_construction_flagged_in_core(self):
        source = "def f(x):\n    return SigmaType([Literal(x)])\n"
        codes = [
            f.code
            for f in lint_repro.iter_findings(source, "src/repro/core/hot.py")
        ]
        assert codes == ["HC001", "HC001"]

    def test_hot_construction_ignored_outside_core(self):
        source = "def f(x):\n    return SigmaType([Literal(x)])\n"
        for path in ("src/repro/logic/types.py", "tests/test_logic.py"):
            assert list(lint_repro.iter_findings(source, path)) == []

    def test_src_tree_is_clean(self):
        findings = lint_repro.lint_paths([str(REPO_ROOT / "src")])
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_tools_examples_benchmarks_clean(self):
        findings = lint_repro.lint_paths(
            [str(REPO_ROOT / d) for d in ("tools", "examples", "benchmarks")]
        )
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_cli_exit_codes(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(ID_CACHE_FIXTURE)
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert lint_repro.main([str(clean)]) == 0
        assert lint_repro.main([str(dirty)]) == 1


class TestEnv001:
    """ENV001: environment reads at import time."""

    def _codes(self, source):
        return [f.code for f in lint_repro.iter_findings(source, "x.py")]

    def test_module_level_environ_get(self):
        source = 'import os\nQUICK = os.environ.get("REPRO_BENCH_QUICK", "")\n'
        assert self._codes(source) == ["ENV001"]

    def test_module_level_getenv(self):
        source = 'import os\nWORKERS = os.getenv("REPRO_WORKERS")\n'
        assert self._codes(source) == ["ENV001"]

    def test_aliased_import_tracked(self):
        source = 'import os as operating\nX = operating.environ["HOME"]\n'
        assert self._codes(source) == ["ENV001"]

    def test_from_import_alias_tracked(self):
        source = 'from os import environ as env\nX = env.get("HOME")\n'
        assert self._codes(source) == ["ENV001"]

    def test_from_import_getenv(self):
        source = 'from os import getenv\nX = getenv("HOME")\n'
        assert self._codes(source) == ["ENV001"]

    def test_read_inside_function_is_fine(self):
        source = textwrap.dedent(
            """
            import os

            def worker_count():
                return os.environ.get("REPRO_WORKERS", "")
            """
        )
        assert self._codes(source) == []

    def test_default_argument_is_import_time(self):
        source = textwrap.dedent(
            """
            import os

            def f(workers=os.environ.get("REPRO_WORKERS")):
                return workers
            """
        )
        assert self._codes(source) == ["ENV001"]

    def test_class_body_is_import_time(self):
        source = textwrap.dedent(
            """
            import os

            class Config:
                workers = os.environ.get("REPRO_WORKERS")
            """
        )
        assert self._codes(source) == ["ENV001"]

    def test_lambda_body_is_call_time(self):
        source = 'import os\nreader = lambda: os.environ.get("REPRO_WORKERS")\n'
        assert self._codes(source) == []

    def test_method_body_is_call_time(self):
        source = textwrap.dedent(
            """
            import os

            class Config:
                def workers(self):
                    return os.environ.get("REPRO_WORKERS")
            """
        )
        assert self._codes(source) == []

    def test_unrelated_environ_attribute_not_flagged(self):
        source = "X = settings.environ\n"
        assert self._codes(source) == []


class TestTime001:
    """TIME001: wall-clock time.time() for durations/deadlines."""

    def _codes(self, source):
        return [f.code for f in lint_repro.iter_findings(source, "x.py")]

    def test_time_time_flagged(self):
        source = "import time\ndef f():\n    return time.time()\n"
        assert self._codes(source) == ["TIME001"]

    def test_module_level_time_time_flagged(self):
        source = "import time\nSTART = time.time()\n"
        assert self._codes(source) == ["TIME001"]

    def test_aliased_module_tracked(self):
        source = "import time as clock\ndef f():\n    return clock.time()\n"
        assert self._codes(source) == ["TIME001"]

    def test_from_import_tracked(self):
        source = "from time import time\ndef f():\n    return time()\n"
        assert self._codes(source) == ["TIME001"]

    def test_from_import_alias_tracked(self):
        source = "from time import time as now\ndef f():\n    return now()\n"
        assert self._codes(source) == ["TIME001"]

    def test_monotonic_and_perf_counter_ok(self):
        source = (
            "import time\n"
            "def f():\n"
            "    return time.monotonic() + time.perf_counter()\n"
        )
        assert self._codes(source) == []

    def test_unrelated_time_attribute_not_flagged(self):
        source = "def f(stamp):\n    return stamp.time()\n"
        assert self._codes(source) == []


class TestMc001:
    """MC001: module-level dict caches that ignore the interning mode."""

    def _codes(self, source, path="src/repro/logic/example.py"):
        return [f.code for f in lint_repro.iter_findings(source, path)]

    MUTATING_CACHE = textwrap.dedent(
        """
        _CACHE = {}

        def lookup(key):
            if key not in _CACHE:
                _CACHE[key] = compute(key)
            return _CACHE[key]
        """
    )

    def test_unregistered_cache_flagged(self):
        findings = list(
            lint_repro.iter_findings(self.MUTATING_CACHE, "src/repro/logic/x.py")
        )
        assert [f.code for f in findings] == ["MC001"]
        assert "_CACHE" in findings[0].message

    def test_setdefault_counts_as_mutation(self):
        source = "_MEMO = {}\n\ndef f(k):\n    return _MEMO.setdefault(k, [])\n"
        assert self._codes(source) == ["MC001"]

    def test_mode_listener_registration_exempts(self):
        source = self.MUTATING_CACHE + (
            "\nregister_mode_listener(_CACHE.clear)\n"
        )
        assert self._codes(source) == []

    def test_mode_ok_marker_exempts(self):
        source = self.MUTATING_CACHE.replace(
            "_CACHE = {}", "_CACHE = {}  # mode-ok: pure integer tables"
        )
        assert self._codes(source) == []

    def test_read_only_table_not_flagged(self):
        source = '_NAMES = {1: "one"}\n\ndef f(k):\n    return _NAMES[k]\n'
        assert self._codes(source) == []

    def test_module_level_population_not_flagged(self):
        # Filled at import time, read-only afterwards: no mode hazard the
        # rule can see (values predate any flip a test could perform).
        source = "_T = {}\nfor i in range(3):\n    _T[i] = i\n"
        assert self._codes(source) == []

    def test_outside_repro_tree_ignored(self):
        assert self._codes(self.MUTATING_CACHE, path="tests/test_x.py") == []
        assert self._codes(self.MUTATING_CACHE, path="tools/helper.py") == []


# --------------------------------------------------------------------- #
# dataflow passes (DF0xx)
# --------------------------------------------------------------------- #


def _infeasible_automaton():
    """q1 forces x1 = x2; the x1 != x2 edge out of q1 can never fire."""
    force = SigmaType([eq(X(1), X(2)), eq(X(1), Y(1)), eq(X(2), Y(2))])
    keep = SigmaType([eq(X(1), Y(1)), eq(X(2), Y(2))])
    split = SigmaType([neq(X(1), X(2)), eq(X(1), Y(1)), eq(X(2), Y(2))])
    return ra(
        2,
        {"q0", "q1", "q2", "q3"},
        {"q0"},
        {"q2"},
        [
            ("q0", force, "q1"),
            ("q1", keep, "q2"),
            ("q1", split, "q3"),
            ("q3", keep, "q3"),
        ],
    )


class TestDataflowPasses:
    def test_infeasible_transition_reported_with_proof(self):
        report = analyze(_infeasible_automaton(), only=["dataflow-feasibility"])
        findings = [d for d in report.warnings if d.code == "DF001"]
        assert len(findings) == 1
        finding = findings[0]
        assert "q1" in finding.location and "q3" in finding.location
        assert finding.source == "dataflow-feasibility"
        proof = finding.data["proof"]
        assert proof["reachable_source_types"] == proof["refuted_types"]
        assert finding.data["witness_to_source"]  # a concrete path to q1

    def test_abstractly_unreachable_state_reported(self):
        report = analyze(_infeasible_automaton(), only=["dataflow-feasibility"])
        unreachable = [d for d in report.warnings if d.code == "DF002"]
        assert len(unreachable) == 1
        assert "q3" in unreachable[0].location

    def test_forced_aliasing_reported(self):
        report = analyze(_infeasible_automaton(), only=["dataflow-constancy"])
        aliased = [d for d in report.infos if d.code == "DF004"]
        assert {d.location for d in aliased} >= {"state 'q1'"}
        by_state = {d.location: d for d in aliased}
        assert [1, 2] in [list(p) for p in by_state["state 'q1'"].data["pairs"]]

    def test_feasible_automaton_is_df_clean(self):
        report = analyze(example1(), only=["dataflow-feasibility"])
        assert not [d for d in report.diagnostics if d.code in ("DF001", "DF002")]

    def test_over_budget_automaton_reports_df005(self):
        # k = 13 exceeds MAX_REGISTERS even for the antichain domain:
        # the analysis declines, honestly.
        k = MAX_REGISTERS + 1
        literals = [eq(X(i), Y(i)) for i in range(1, k + 1)]
        automaton = ra(k, {"a"}, {"a"}, {"a"}, [("a", SigmaType(literals), "a")])
        report = analyze(automaton, only=["dataflow-feasibility"])
        assert "DF005" in report.codes()
        assert not [d for d in report.diagnostics if d.code in ("DF001", "DF002")]

    def test_graph_unreachable_state_left_to_ra110(self):
        keep = SigmaType([eq(X(1), Y(1))])
        automaton = ra(
            1, {"a", "island"}, {"a"}, {"a"},
            [("a", keep, "a"), ("island", keep, "island")],
        )
        report = analyze(automaton, only=["dataflow-feasibility"])
        assert "DF002" not in report.codes()
