"""Integration tests: full pipelines crossing several modules."""

import random

import pytest

from repro import (
    Database,
    ExtendedAutomaton,
    LtlFoSentence,
    Signature,
    check_emptiness,
    find_lasso_run,
    generate_finite_runs,
    is_lr_bounded,
    manuscript_review_workflow,
    project_register_automaton,
    role_view,
    verify,
)
from repro.generators import random_register_automaton
from repro.logic.formulas import atom_eq
from repro.logic.terms import X
from repro.ltl import Eventually, Globally, Not_, Prop
from repro.ltl.syntax import Or_
from tests.helpers import canonical_trace


class TestProjectionPipeline:
    """Project random automata and compare against brute force (Theorem 13)."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_projection_exact(self, seed, empty_database):
        from tests.helpers import projection_prefix_sets

        automaton = random_register_automaton(
            random.Random(seed), k=2, n_states=2, n_transitions=3
        )
        projected = project_register_automaton(automaton, 1)
        original, image = projection_prefix_sets(automaton, projected, 1, length=3)
        assert original == image

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_projection_is_lr_bounded(self, seed):
        """Proposition 20 on random instances."""
        automaton = random_register_automaton(
            random.Random(seed), k=2, n_states=2, n_transitions=3
        )
        projected = project_register_automaton(automaton, 1)
        assert is_lr_bounded(projected, max_cycle=3, max_candidates=40)


class TestEmptinessAgainstSearch:
    """The symbolic emptiness decision agrees with concrete run search."""

    @pytest.mark.parametrize("seed", list(range(8)))
    def test_plain_automata(self, seed, empty_database):
        automaton = random_register_automaton(
            random.Random(seed), k=1, n_states=3, n_transitions=4, ensure_live=False
        )
        symbolic = not check_emptiness(ExtendedAutomaton(automaton, [])).empty
        concrete = find_lasso_run(automaton, empty_database, pool=("a", "b", "c")) is not None
        assert symbolic == concrete


class TestWorkflowVerification:
    def test_review_workflow_properties(self):
        spec = manuscript_review_workflow(with_database=False)
        automaton = spec.compile()
        extended = ExtendedAutomaton(automaton, [])
        author = spec.register_of("author")
        reviewer = spec.register_of("reviewer")
        # Safety: the reviewer is never the author while under review...
        # expressed positionally: G (under-review -> reviewer != author).
        # States are not propositions in LTL-FO, so use the stage-invariant
        # encoding: on every transition out of under-review the registers
        # already satisfy the disequality; here we check the weaker global
        # eventuality: F (reviewer != author).
        sentence = LtlFoSentence(
            skeleton=Eventually(Prop("distinct")),
            propositions={"distinct": ~atom_eq(X(author), X(reviewer))},
        )
        result = verify(extended, sentence)
        assert result.holds and result.exact

    def test_review_workflow_negative_property(self):
        spec = manuscript_review_workflow(with_database=False)
        automaton = spec.compile()
        extended = ExtendedAutomaton(automaton, [])
        paper = spec.register_of("paper")
        topic = spec.register_of("topic")
        # G (paper = topic) is absurd and must fail with a counterexample.
        sentence = LtlFoSentence(
            skeleton=Globally(Prop("same")),
            propositions={"same": atom_eq(X(paper), X(topic))},
        )
        result = verify(extended, sentence)
        assert not result.holds

    def test_author_view_roundtrip(self, empty_database):
        """Projected concrete runs satisfy the view's constraints."""
        spec = manuscript_review_workflow(with_database=False)
        automaton = spec.compile()
        view = role_view(spec, "author", hidden=["reviewer"])
        # states of the view automaton are normalised; check data-level:
        # every projected register trace of a concrete run appears among
        # the view automaton's constrained traces.
        pool = ("p", "a", "t", "r", "s")
        length = 4
        original = {
            canonical_trace(tuple(row[:3] for row in run.data))
            for run in generate_finite_runs(automaton, empty_database, length, pool=pool, limit=60)
        }
        image = {
            canonical_trace(run.data)
            for run in generate_finite_runs(
                view.automaton.automaton, empty_database, length, pool=pool, limit=100000
            )
            if view.automaton.satisfies_constraints(run)
        }
        assert original <= image


class TestEndToEndEmptinessWitness:
    def test_witness_runs_check_out(self, example8_extended):
        result = check_emptiness(example8_extended, max_prefix=1, max_cycle=4)
        assert not result.empty
        database, run = result.witness.lasso_run()
        normalised = result.witness.normalised
        assert normalised.is_run(run, database)
        # and the finite unfolding is a valid prefix too
        prefix = run.unfold(9)
        assert prefix.is_valid(normalised.automaton, database)
