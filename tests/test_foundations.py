"""Unit tests for repro.foundations."""

import pytest

from repro.foundations import (
    EvaluationError,
    FreshSupply,
    InconsistentTypeError,
    ReproError,
    SpecificationError,
    is_data_value,
)


class TestFreshSupply:
    def test_values_are_distinct(self):
        supply = FreshSupply()
        values = supply.take_many(100)
        assert len(set(values)) == 100

    def test_reserved_values_never_produced(self):
        supply = FreshSupply(used={"fresh0", "fresh2"})
        produced = supply.take_many(3)
        assert "fresh0" not in produced
        assert "fresh2" not in produced

    def test_reserve_after_construction(self):
        supply = FreshSupply()
        supply.reserve(["fresh0"])
        assert supply.take() != "fresh0"

    def test_prefix_is_used(self):
        supply = FreshSupply(prefix="val")
        assert supply.take().startswith("val")

    def test_iteration_yields_fresh_values(self):
        supply = FreshSupply()
        stream = iter(supply)
        first, second = next(stream), next(stream)
        assert first != second

    def test_take_many_zero(self):
        assert FreshSupply().take_many(0) == []


class TestDataValues:
    def test_hashables_are_data_values(self):
        assert is_data_value("a")
        assert is_data_value(3)
        assert is_data_value(("tuple", 1))

    def test_unhashables_are_not(self):
        assert not is_data_value([1, 2])
        assert not is_data_value({"a": 1})


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (SpecificationError, InconsistentTypeError, EvaluationError):
            assert issubclass(exc, ReproError)

    def test_inconsistent_type_is_specification_error(self):
        assert issubclass(InconsistentTypeError, SpecificationError)
