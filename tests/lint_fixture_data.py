"""Fixture tree for the lint-engine golden tests.

``FIXTURES`` maps a relative path (under a ``fixtures/`` root a test
materialises in a tmp directory) to the source of one deliberately-bad
module.  There is one seeded violation per lint rule -- the eight legacy
rules (``ID001`` .. ``ORD001``) and the three new cross-file families
(``PAR00x`` / ``KNB00x`` / ``RSL00x``) -- plus the clean counterparts the
exemption comments demonstrate.

The contents are data, not code: nothing in this module is imported or
executed by the library.  Two golden files pin the linter's behaviour
over this tree:

* ``tests/goldens/lint_legacy_fixture.json`` -- the eight legacy rules'
  findings, generated with the *pre-refactor* ``tools/lint_repro.py``.
  The new engine must reproduce it byte for byte (the migration
  acceptance anchor).
* ``tests/goldens/lint_full_fixture.json`` -- the full new-engine
  output, all rules, pinning the JSON shape and the new families'
  findings going forward.

Regenerate the full golden (from the repo root, after a deliberate
rule change; the legacy golden is the pre-refactor anchor and is never
regenerated)::

    PYTHONPATH=src python tests/test_lint_engine.py --regen

Paths are chosen so the path-sensitive rules see the tree they expect:
``src/repro/core/...`` is the HC001 hot tree, anything under a ``repro``
directory is in scope for MC001/ORD001/KNB001/PAR00x, and module names
derived from the ``repro`` package root (``repro.core.streaming``) land
in the RSL long-running set.
"""

import textwrap

FIXTURES = {
    # -- legacy rules ------------------------------------------------- #
    "plain/bad_id.py": textwrap.dedent(
        """\
        _DEAD_CACHE = {}


        def dead_states(dfa):
            key = id(dfa)
            if key not in _DEAD_CACHE:
                _DEAD_CACHE[key] = list(dfa)
            return _DEAD_CACHE[key]
        """
    ),
    "plain/bad_default.py": textwrap.dedent(
        """\
        def collect(item, pool=[]):
            pool.append(item)
            return pool
        """
    ),
    "plain/bad_except.py": textwrap.dedent(
        """\
        def swallow(fn):
            try:
                return fn()
            except:
                return None
        """
    ),
    "plain/bad_env.py": textwrap.dedent(
        """\
        import os

        QUICK = os.environ.get("REPRO_BENCH_QUICK", "")


        def quick():
            return QUICK
        """
    ),
    "plain/bad_time.py": textwrap.dedent(
        """\
        import time


        def stamp():
            return time.time()
        """
    ),
    "src/repro/core/bad_hot.py": textwrap.dedent(
        """\
        def rebuild(guards, x):
            return [Literal(x) for _guard in guards]
        """
    ),
    "src/repro/logic/bad_modecache.py": textwrap.dedent(
        """\
        _TYPES = {}


        def lookup(key):
            if key not in _TYPES:
                _TYPES[key] = key
            return _TYPES[key]
        """
    ),
    "src/repro/logic/bad_order.py": textwrap.dedent(
        """\
        def render(items):
            out = []
            for item in set(items):
                out.append(item)
            return out
        """
    ),
    # -- PAR00x: worker-purity race detector -------------------------- #
    # The call site and the payload live in different modules: the rule
    # must chase `record` through the import graph into the payload
    # module and flag the hidden writes there.
    "src/repro/core/bad_worker.py": textwrap.dedent(
        """\
        from repro.core.bad_worker_payload import record
        from repro.core.parallel import parallel_map


        def fan_out(items):
            return parallel_map(record, list(items), chunk_size=2)
        """
    ),
    "src/repro/core/bad_worker_payload.py": textwrap.dedent(
        """\
        import os

        _HITS = 0
        _CACHE = {}  # mode-ok: fixture cache of plain ints
        _BLESSED = {}  # mode-ok: fixture cache of plain ints


        def record(item):
            global _HITS
            _HITS = _HITS + 1
            os.environ["REPRO_SEEN"] = str(item)
            _CACHE[item] = item
            _BLESSED[item] = item  # worker-ok: fixture demonstrates the exemption
            return item
        """
    ),
    # -- KNB00x: knob registry discipline ------------------------------ #
    # Read at call time (so legacy ENV001 stays quiet) but bypassing
    # foundations.knobs: exactly the read KNB001 exists to catch.
    "src/repro/core/bad_knob.py": textwrap.dedent(
        """\
        import os


        def fancy_enabled():
            return os.environ.get("REPRO_FANCY", "") not in ("", "0")
        """
    ),
    # -- RSL00x: deadline-poll discipline ------------------------------ #
    # The module name resolves to repro.core.streaming -- a long-running
    # module -- and the loop drives an expensive callee that provably
    # never polls a deadline.
    "src/repro/core/streaming.py": textwrap.dedent(
        """\
        def feed_run(batch):
            return len(batch)


        def drain(batches):
            total = 0
            for batch in batches:
                total += feed_run(batch)
            return total
        """
    ),
    "src/repro/core/emptiness.py": textwrap.dedent(
        """\
        import time


        def wait_for(flag):
            while not flag.ready():
                time.sleep(0.05)
            return True
        """
    ),
}

#: The eight pre-refactor rule codes -- the identity-test selection.
LEGACY_CODES = (
    "ID001",
    "DEF001",
    "EXC001",
    "ENV001",
    "HC001",
    "TIME001",
    "MC001",
    "ORD001",
)
