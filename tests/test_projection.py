"""Tests for projections (Theorem 13, Lemma 21, Examples 4/5)."""

import pytest

from repro import (
    Database,
    ExtendedAutomaton,
    FiniteRun,
    GlobalConstraint,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    eq,
    equality_tracker_dfa,
    generate_finite_runs,
    inequality_tracker_dfa,
    neq,
    project_extended,
    project_register_automaton,
)
from repro.automata.regex import literal
from repro.foundations.errors import SpecificationError

from tests.helpers import canonical_trace

EMPTY = SigmaType()


class TestTrackers:
    @pytest.fixture
    def normalized_example1(self, example1_automaton):
        return example1_automaton.completed().state_driven()

    def test_equality_tracker_accepts_carried_values(self, normalized_example1):
        """Register 2 carries its value along every factor of Example 1."""
        dfa = equality_tracker_dfa(normalized_example1, 2, 2)
        for state_word_len in (1, 2, 3):
            # every factor of every state trace keeps register 2 constant:
            # pick any path through the state-driven control
            state = sorted(normalized_example1.states, key=repr)[0]
            word = [state]
            for _ in range(state_word_len - 1):
                nexts = normalized_example1.transitions_from(word[-1])
                if not nexts:
                    break
                word.append(nexts[0].target)
            assert dfa.accepts(word)

    def test_equality_tracker_single_position(self, normalized_example1):
        """e=_{12} accepts single states whose guard has x1 = x2."""
        dfa = equality_tracker_dfa(normalized_example1, 1, 2)
        for state in normalized_example1.states:
            guard = normalized_example1.guard_of_state(state)
            assert dfa.accepts([state]) == guard.entails(eq(X(1), X(2)))

    def test_inequality_tracker_single_position(self):
        change = SigmaType([neq(X(1), Y(1))])
        automaton = RegisterAutomaton(
            1, Signature.empty(), {"q"}, {"q"}, {"q"}, [("q", change, "q")]
        ).completed().state_driven()
        dfa = inequality_tracker_dfa(automaton, 1, 1)
        states = sorted(automaton.states, key=repr)
        # adjacent positions differ: factors of length 2 accepted
        for source in states:
            for transition in automaton.transitions_from(source):
                assert dfa.accepts([source, transition.target])
        # single positions never (x1 != x1 unsatisfiable)
        for state in states:
            assert not dfa.accepts([state])


class TestExample4And5:
    """Example 4: register automata are NOT closed under projection;
    Example 5 / Theorem 13: extended automata describe the projection."""

    def test_projection_needs_global_constraints(self, example1_automaton):
        """Example 4's moral: the projection cannot be purely local.

        The projected view carries an equality constraint whose language
        contains factors longer than 2 -- exactly the long-distance
        "initial value recurs" condition no register automaton can state
        on one register.
        """
        projected = project_register_automaton(example1_automaton, 1)
        long_equalities = []
        for constraint in projected.constraints:
            if constraint.kind != "eq":
                continue
            dfa = projected.constraint_dfa(constraint)
            witness = dfa.shortest_accepted()
            if witness is not None:
                # is there also a *longer* accepted factor?
                longer = any(
                    dfa.accepts(witness[:1] * n + witness)
                    for n in range(1, 4)
                ) or not dfa.intersect(dfa).is_empty()
                long_equalities.append(constraint)
        assert long_equalities

    def test_example1_projection_exact(self, example1_automaton, empty_database):
        """Brute-force check: Pi_1(prefixes of A) == constrained prefixes of B."""
        from tests.helpers import projection_prefix_sets

        projected = project_register_automaton(example1_automaton, 1)
        original, image = projection_prefix_sets(
            example1_automaton, projected, 1, length=4
        )
        assert original == image

    def test_projection_to_zero_registers(self, example1_automaton):
        projected = project_register_automaton(example1_automaton, 0)
        assert projected.automaton.k == 0

    def test_projection_rejects_database_automata(self, example23_automaton):
        with pytest.raises(SpecificationError):
            project_register_automaton(example23_automaton, 1)

    def test_projection_register_bound(self, example1_automaton):
        with pytest.raises(SpecificationError):
            project_register_automaton(example1_automaton, 3)


class TestProjectExtended:
    def test_projecting_away_constraint_free_register(self, empty_database):
        """2 registers, register 2 independent: projection is the free automaton."""
        keep2 = SigmaType([eq(X(2), Y(2))])
        automaton = RegisterAutomaton(
            2, Signature.empty(), {"q"}, {"q"}, {"q"}, [("q", keep2, "q")]
        )
        extended = ExtendedAutomaton(automaton, [])
        projected = project_extended(extended, 1)
        from tests.helpers import projection_prefix_sets

        original, image = projection_prefix_sets(automaton, projected, 1, length=4)
        assert original == image

    def test_inequality_constraint_transported(self, empty_database):
        """1 visible + 1 hidden register tied together; a global inequality
        on the hidden register must reappear on the visible one."""
        tie = SigmaType([eq(X(1), X(2)), eq(Y(1), Y(2))])
        automaton = RegisterAutomaton(
            2, Signature.empty(), {"q"}, {"q"}, {"q"}, [("q", tie, "q")]
        )
        # hidden register pairwise distinct at adjacent positions
        extended = ExtendedAutomaton(
            automaton,
            [GlobalConstraint("neq", 2, 2, literal("q") + literal("q"))],
        )
        projected = project_extended(extended, 1)
        from repro.db import Database
        from tests.helpers import value_pool_of_size

        length = 4
        pool = value_pool_of_size(length + length + 1)
        original = {
            canonical_trace(tuple(row[:1] for row in run.data))
            for run in generate_finite_runs(automaton, empty_database, length, pool=pool)
            if extended.satisfies_constraints(run)
        }
        image = {
            canonical_trace(run.data)
            for run in generate_finite_runs(
                projected.automaton, empty_database, length, pool=value_pool_of_size(length + 1)
            )
            if projected.satisfies_constraints(run)
        }
        assert original == image
