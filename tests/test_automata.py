"""Unit tests for the automata substrate: lassos, regexes, NFA/DFA, Buchi."""

import pytest

from repro.automata import BuchiAutomaton, Dfa, Lasso, Nfa, parse_regex
from repro.automata.regex import (
    Epsilon,
    any_of,
    concat,
    literal,
    optional,
    plus,
    star,
    union,
    word,
)
from repro.foundations.errors import SpecificationError


class TestLasso:
    def test_canonical_form(self):
        assert Lasso(("a",), ("b", "a", "b", "a")) == Lasso(("a", "b"), ("a", "b"))

    def test_primitive_period(self):
        assert Lasso((), ("a", "b", "a", "b")).period == ("a", "b")

    def test_indexing(self):
        w = Lasso(("p",), ("q", "r"))
        assert [w[i] for i in range(6)] == ["p", "q", "r", "q", "r", "q"]

    def test_factor(self):
        w = Lasso((), ("a", "b"))
        assert w.factor(1, 3) == ("b", "a", "b")

    def test_empty_period_rejected(self):
        with pytest.raises(ValueError):
            Lasso(("a",), ())

    def test_map(self):
        w = Lasso(("a",), ("b",))
        assert w.map(str.upper) == Lasso(("A",), ("B",))

    def test_shift(self):
        w = Lasso(("a", "b"), ("c",))
        assert w.shift(1) == Lasso(("b",), ("c",))
        assert w.shift(5) == Lasso((), ("c",))

    def test_shift_rotates_period(self):
        w = Lasso((), ("a", "b"))
        assert w.shift(1)[0] == "b"

    def test_letters(self):
        w = Lasso(("a",), ("b",))
        assert w.letters() == frozenset({"a", "b"})
        assert w.recurring_letters() == frozenset({"b"})

    def test_unroll_preserves_word(self):
        w = Lasso(("a",), ("b", "c"))
        assert w.unroll(3) == w

    def test_hash_consistency(self):
        assert hash(Lasso(("a",), ("b", "a"))) == hash(Lasso((), ("a", "b")))


class TestRegex:
    def test_parse_and_match(self):
        expression = parse_regex("p(q|r)*p")
        assert expression.matches("pqrqp")
        assert expression.matches("pp")
        assert not expression.matches("pq")

    def test_combinators(self):
        expression = concat(literal("a"), star(literal("b")))
        assert expression.matches("abbb")
        assert not expression.matches("ba")

    def test_plus_and_optional(self):
        assert plus(literal("a")).matches("aa")
        assert not plus(literal("a")).matches("")
        assert optional(literal("a")).matches("")

    def test_word_and_any_of(self):
        assert word("abc").matches("abc")
        assert any_of("xyz").matches("y")

    def test_union_flattening(self):
        expression = union(literal("a"), union(literal("b"), literal("c")))
        assert expression.matches("c")

    def test_epsilon(self):
        assert Epsilon().matches("")
        assert not Epsilon().matches("a")

    def test_parse_errors(self):
        with pytest.raises(SpecificationError):
            parse_regex("(ab")
        with pytest.raises(SpecificationError):
            parse_regex("*a")

    def test_symbols(self):
        assert parse_regex("ab|c").symbols() == frozenset("abc")


class TestNfaDfa:
    def test_determinize_equivalent(self):
        expression = parse_regex("(a|b)*abb")
        dfa = expression.to_dfa()
        for w, expected in [("abb", True), ("aabb", True), ("ab", False), ("", False)]:
            assert dfa.accepts(w) == expected

    def test_minimize_is_minimal_for_simple_language(self):
        dfa = parse_regex("a*").to_dfa(alphabet="ab")
        assert dfa.minimize().size() == 2  # accept-all-a's + dead

    def test_complement(self):
        dfa = parse_regex("ab").to_dfa(alphabet="ab")
        comp = dfa.complement()
        assert not comp.accepts("ab")
        assert comp.accepts("a")

    def test_products(self):
        a_star = parse_regex("a*").to_dfa(alphabet="ab")
        contains_b = parse_regex("(a|b)*b(a|b)*").to_dfa(alphabet="ab")
        assert a_star.intersect(contains_b).is_empty()
        assert not a_star.union(contains_b).is_empty()

    def test_difference_and_equivalence(self):
        one = parse_regex("a(a)*").to_dfa(alphabet="a")
        two = parse_regex("aa*").to_dfa(alphabet="a")
        assert one.equivalent(two)

    def test_shortest_accepted(self):
        dfa = parse_regex("aab|b").to_dfa(alphabet="ab")
        assert dfa.shortest_accepted() == ("b",)

    def test_shortest_accepted_empty_language(self):
        assert Dfa.empty_language("ab").shortest_accepted() is None

    def test_universal(self):
        dfa = Dfa.universal("ab")
        assert dfa.accepts("abba")
        assert dfa.accepts("")

    def test_period_transform(self):
        dfa = parse_regex("(ab)*").to_dfa(alphabet="ab")
        transform = dfa.period_transform(("a", "b"))
        assert transform[dfa.initial] == dfa.initial

    def test_symbol_outside_alphabet_raises(self):
        dfa = parse_regex("a").to_dfa()
        with pytest.raises(SpecificationError):
            dfa.accepts("z")


class TestBuchi:
    @pytest.fixture
    def infinitely_many_p(self):
        transitions = {0: {"p": {1}, "q": {0}}, 1: {"p": {1}, "q": {0}}}
        return BuchiAutomaton(transitions, {0}, {1})

    def test_lasso_membership(self, infinitely_many_p):
        assert infinitely_many_p.accepts(Lasso((), ("p", "q")))
        assert infinitely_many_p.accepts(Lasso(("q", "q"), ("p",)))
        assert not infinitely_many_p.accepts(Lasso(("p",), ("q",)))

    def test_emptiness_witness(self, infinitely_many_p):
        witness = infinitely_many_p.find_accepted_lasso()
        assert witness is not None
        assert infinitely_many_p.accepts(witness)

    def test_empty_automaton(self):
        automaton = BuchiAutomaton({0: {"a": {0}}}, {0}, set())
        assert automaton.is_empty()

    def test_intersection(self, infinitely_many_p):
        # infinitely many q
        other = BuchiAutomaton(
            {0: {"q": {1}, "p": {0}}, 1: {"q": {1}, "p": {0}}}, {0}, {1}
        )
        product = infinitely_many_p.intersect(other)
        witness = product.find_accepted_lasso()
        assert witness is not None
        assert infinitely_many_p.accepts(witness)
        assert other.accepts(witness)

    def test_intersection_empty(self, infinitely_many_p):
        only_q = BuchiAutomaton({0: {"q": {0}}}, {0}, {0})
        assert infinitely_many_p.intersect(only_q).is_empty()

    def test_union(self, infinitely_many_p):
        only_q = BuchiAutomaton({0: {"q": {0}}}, {0}, {0})
        combined = infinitely_many_p.union(only_q)
        assert combined.accepts(Lasso((), ("q",)))
        assert combined.accepts(Lasso((), ("p",)))

    def test_map_symbols(self, infinitely_many_p):
        mapped = infinitely_many_p.map_symbols(lambda s: "x")
        assert mapped.accepts(Lasso((), ("x",)))

    def test_iter_accepted_lassos_sound(self, infinitely_many_p):
        found = list(infinitely_many_p.iter_accepted_lassos(3, 2))
        assert found
        for lasso in found:
            assert infinitely_many_p.accepts(lasso)

    def test_relabel_states_preserves_language(self, infinitely_many_p):
        relabeled = infinitely_many_p.relabel_states()
        assert relabeled.accepts(Lasso((), ("p", "q")))
        assert not relabeled.accepts(Lasso((), ("q",)))
