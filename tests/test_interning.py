"""Interning invariants (PR 3): identity, hashing, pickling, parallelism.

The hash-consed logic kernel promises that structural equality *is*
identity for terms, literals and sigma-types.  These properties pin the
promise down:

* permutation identity -- a sigma-type built from any ordering of the
  same literal bag is the same object;
* hash stability -- hashes agree across construction orders and across
  the ``intern()`` escape hatch;
* pickle safety -- values re-intern on unpickle, so a round trip yields
  the canonical instance (this is what lets values cross the
  ``ProcessPoolExecutor`` boundary);
* parallel determinism -- ``check_emptiness`` under ``REPRO_WORKERS=2``
  returns byte-identical results to the serial run on the Example 2/3
  automaton and its completed / state-driven normal forms.
"""

import os
import pickle
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    ExtendedAutomaton,
    GlobalConstraint,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    check_emptiness,
    eq,
    neq,
    rel,
)
from repro.automata.regex import concat, literal, plus
from repro.core.parallel import shutdown_executor, worker_count
from repro.foundations.errors import InconsistentTypeError
from repro.foundations.interning import interning_enabled
from repro.generators import random_equality_type
from repro.logic.intern import intern
from repro.logic.literals import EqAtom, Literal, RelAtom
from repro.logic.terms import Const, Var

# --------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------- #

terms = st.one_of(
    st.sampled_from([X(1), X(2), X(3), Y(1), Y(2), Y(3)]),
    st.sampled_from([Const("a"), Const("b")]),
)

equality_literals = st.builds(
    lambda left, right, positive: eq(left, right) if positive else neq(left, right),
    terms,
    terms,
    st.booleans(),
)

relational_literals = st.builds(
    lambda name, args, positive: Literal(RelAtom(name, tuple(args)), positive),
    st.sampled_from(["P", "R"]),
    st.lists(terms, min_size=1, max_size=2),
    st.booleans(),
)

literal_bags = st.lists(
    st.one_of(equality_literals, relational_literals), max_size=6
)


def _sigma(literals):
    """Build a SigmaType, skipping the (valid) inconsistent bags."""
    try:
        return SigmaType(literals)
    except InconsistentTypeError:
        return None


def _assert_canonical(left, right):
    """Identity under interning, plain structural equality under the
    ``REPRO_INTERN=0`` ablation (where hash-consing is off by design)."""
    if interning_enabled():
        assert left is right
    else:
        assert left == right
        assert type(left) is type(right)


# --------------------------------------------------------------------- #
# identity and hashing
# --------------------------------------------------------------------- #


@given(literal_bags, st.randoms(use_true_random=False))
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_permutation_identity(literals, rng):
    """Any ordering of the same literal bag interns to the same object."""
    first = _sigma(literals)
    if first is None:
        return
    shuffled = list(literals)
    rng.shuffle(shuffled)
    second = _sigma(shuffled)
    _assert_canonical(second, first)
    assert hash(second) == hash(first)
    assert repr(second) == repr(first)


@given(literal_bags)
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_duplicate_literals_collapse(literals):
    """Repeating literals does not change the interned value."""
    first = _sigma(literals)
    if first is None:
        return
    _assert_canonical(_sigma(literals + literals), first)


@given(equality_literals)
def test_literal_identity(lit):
    """Reconstructing a literal field by field yields the same object."""
    rebuilt = Literal(EqAtom(lit.atom.left, lit.atom.right), lit.positive)
    _assert_canonical(rebuilt, lit)
    _assert_canonical(lit.negate().negate(), lit)


@given(st.integers(min_value=1, max_value=3), st.integers(min_value=0, max_value=2**32))
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_random_equality_type_hash_stable(k, seed):
    """Generator output re-interns to itself with a stable hash."""
    delta = random_equality_type(random.Random(seed), k)
    again = random_equality_type(random.Random(seed), k)
    _assert_canonical(again, delta)
    assert hash(again) == hash(delta)
    _assert_canonical(intern(delta), delta)


# --------------------------------------------------------------------- #
# pickling (the process-pool boundary)
# --------------------------------------------------------------------- #


@given(literal_bags)
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_pickle_reinterns(literals):
    """A pickle round trip returns the canonical interned instance."""
    value = _sigma(literals)
    if value is None:
        return
    clone = pickle.loads(pickle.dumps(value))
    _assert_canonical(clone, value)
    for lit in value.literals:
        _assert_canonical(pickle.loads(pickle.dumps(lit)), lit)


def test_pickle_reinterns_terms():
    for term in (X(1), Y(2), Const("a")):
        _assert_canonical(pickle.loads(pickle.dumps(term)), term)


# --------------------------------------------------------------------- #
# serial / parallel parity
# --------------------------------------------------------------------- #


def _example23(constrained):
    d1 = SigmaType([eq(X(1), X(2)), eq(X(2), Y(2))])
    d2 = SigmaType([eq(X(2), Y(2))])
    d3 = SigmaType([eq(X(2), Y(2)), eq(Y(1), Y(2))])
    automaton = RegisterAutomaton(
        2,
        Signature.empty(),
        {"q1", "q2"},
        {"q1"},
        {"q1"},
        [("q1", d1, "q2"), ("q2", d2, "q2"), ("q2", d3, "q1")],
    )
    constraints = []
    if constrained:
        factor = concat(literal("q1"), plus(literal("q2")), literal("q1"))
        constraints = [GlobalConstraint("neq", 1, 1, factor)]
    return automaton, constraints


def _p_only():
    signature = Signature(relations={"P": 1})
    guard = SigmaType([rel("P", X(1))])
    base = RegisterAutomaton(1, signature, {"p"}, {"p"}, {"p"}, [("p", guard, "p")])
    factor = concat(literal("p"), plus(literal("p")), literal("p"))
    return base, [GlobalConstraint("neq", 1, 1, factor)]


def _fingerprint(result):
    witness = result.witness
    return (
        result.empty,
        result.exact,
        result.candidates_checked,
        result.max_prefix,
        result.max_cycle,
        None if witness is None else witness.trace,
    )


@pytest.fixture
def two_workers(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "2")
    assert worker_count() == 2  # the knob must actually cross processes
    yield
    shutdown_executor()


def test_parallel_matches_serial(two_workers, monkeypatch):
    """REPRO_WORKERS=2 emptiness is byte-identical to the serial answer."""
    cases = []
    for constrained in (False, True):
        base, constraints = _example23(constrained)
        for variant in (base, base.completed(), base.state_driven()):
            cases.append(ExtendedAutomaton(variant, constraints))
    base, constraints = _p_only()
    cases.append(ExtendedAutomaton(base, constraints))

    for extended in cases:
        parallel = _fingerprint(
            check_emptiness(extended, max_prefix=2, max_cycle=4)
        )
        monkeypatch.setenv("REPRO_WORKERS", "1")
        serial = _fingerprint(check_emptiness(extended, max_prefix=2, max_cycle=4))
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert parallel == serial


def test_worker_count_parsing(monkeypatch):
    for raw, expected in [
        ("", 1),
        ("0", 1),
        ("1", 1),
        ("2", 2),
        ("junk", 1),
        ("-3", 1),
        ("999", 64),
    ]:
        monkeypatch.setenv("REPRO_WORKERS", raw)
        assert worker_count() == expected
    monkeypatch.delenv("REPRO_WORKERS")
    assert worker_count() == 1
