"""Tests for the workflow layer and role views."""

import pytest

from repro import (
    Database,
    Signature,
    database_hidden_view,
    find_lasso_run,
    manuscript_review_workflow,
    role_view,
)
from repro.foundations.errors import SpecificationError
from repro.workflows import Stage, WorkflowSpec


class TestWorkflowSpec:
    def test_needs_recurring_stage(self):
        with pytest.raises(SpecificationError):
            WorkflowSpec(attributes=["a"], stages=[Stage("s")])

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SpecificationError):
            WorkflowSpec(
                attributes=["a", "a"], stages=[Stage("s", recurring=True)]
            )

    def test_unknown_stage_in_rule(self):
        spec = WorkflowSpec(attributes=["a"], stages=[Stage("s", recurring=True)])
        with pytest.raises(SpecificationError):
            spec.rule("s", "missing")

    def test_compilation_shape(self):
        spec = WorkflowSpec(
            attributes=["a", "b"],
            stages=[Stage("start"), Stage("end", recurring=True)],
        )
        spec.rule("start", "end").keep("a").changed("b")
        spec.rule("end", "end").keep("a", "b")
        automaton = spec.compile()
        assert automaton.k == 2
        assert automaton.initial == {"start"}
        assert automaton.accepting == {"end"}
        assert len(automaton.transitions) == 2

    def test_lookup_validates_against_signature(self):
        spec = WorkflowSpec(
            attributes=["a"],
            stages=[Stage("s", recurring=True)],
            signature=Signature(relations={"R": 2}),
        )
        spec.rule("s", "s").lookup("R", "a")  # wrong arity
        with pytest.raises(SpecificationError):
            spec.compile()

    def test_distinct_attributes_conflict_detected(self):
        spec = WorkflowSpec(
            attributes=["a", "b"],
            stages=[Stage("s", recurring=True)],
            distinct_attributes=True,
        )
        spec.rule("s", "s").equal("a", "b")
        with pytest.raises(SpecificationError):
            spec.compile()

    def test_reordered_preserves_semantics(self):
        spec = WorkflowSpec(
            attributes=["a", "b"],
            stages=[Stage("s", recurring=True)],
        )
        spec.rule("s", "s").keep("a")
        reordered = spec.reordered(["b", "a"])
        automaton = reordered.compile()
        # "a" now lives in register 2
        assert reordered.register_of("a") == 2
        guard = automaton.transitions[0].guard
        from repro.logic import X, Y, eq

        assert guard.entails(eq(X(2), Y(2)))


class TestReviewWorkflow:
    def test_compiles_and_runs(self):
        spec = manuscript_review_workflow(with_database=False)
        automaton = spec.compile()
        run = find_lasso_run(automaton, Database(Signature.empty()))
        assert run is not None
        assert "decided" in run.states

    def test_runs_respect_database(self):
        spec = manuscript_review_workflow(with_database=True)
        automaton = spec.compile()
        database = Database(
            spec.signature,
            relations={
                "PaperTopic": [("p1", "db-theory")],
                "Prefers": [("alice", "db-theory")],
            },
        )
        run = find_lasso_run(automaton, database)
        assert run is not None
        reviewer_register = spec.register_of("reviewer") - 1
        reviewing = [
            row[reviewer_register]
            for row, state in zip(run.data, run.states)
            if state in ("under-review", "decided")
        ]
        assert "alice" in reviewing

    def test_no_self_review(self):
        spec = manuscript_review_workflow(with_database=False)
        automaton = spec.compile()
        run = find_lasso_run(automaton, Database(Signature.empty()))
        author = spec.register_of("author") - 1
        reviewer = spec.register_of("reviewer") - 1
        for row, state in zip(run.data, run.states):
            if state == "under-review":
                assert row[author] != row[reviewer]


class TestViews:
    def test_author_view_hides_reviewer(self):
        spec = manuscript_review_workflow(with_database=False)
        view = role_view(spec, "author", hidden=["reviewer"])
        assert view.visible_attributes == ["paper", "author", "topic"]
        assert view.automaton.automaton.k == 3

    def test_double_blind_view(self):
        spec = manuscript_review_workflow(with_database=False)
        view = role_view(spec, "reviewer", hidden=["author"])
        assert "author" not in view.visible_attributes

    def test_role_view_requires_no_database(self):
        spec = manuscript_review_workflow(with_database=True)
        with pytest.raises(SpecificationError):
            role_view(spec, "author", hidden=["reviewer"])

    def test_database_hidden_view(self):
        spec = manuscript_review_workflow(with_database=True)
        view = database_hidden_view(spec, "author", hidden=["reviewer"])
        assert view.automaton.automaton.signature.is_empty()
        assert view.automaton.finiteness_constraints

    def test_unknown_hidden_attribute(self):
        spec = manuscript_review_workflow(with_database=False)
        with pytest.raises(SpecificationError):
            role_view(spec, "author", hidden=["salary"])
