"""Tests for the streaming run checker."""

import pytest

from repro import (
    Database,
    ExtendedAutomaton,
    GlobalConstraint,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    eq,
    neq,
)
from repro.automata.regex import concat, literal, plus, star
from repro.core.streaming import StreamingChecker, StreamingViolation

EMPTY = SigmaType()


@pytest.fixture
def example5(example5_extended):
    return example5_extended


@pytest.fixture
def db(empty_database):
    return empty_database


class TestValidity:
    def test_accepts_valid_stream(self, example1_automaton, db):
        checker = StreamingChecker(ExtendedAutomaton(example1_automaton, []), db)
        assert checker.feed("q1", ("v", "v")) is None
        assert checker.feed("q2", ("w", "v")) is None
        assert checker.feed("q2", ("u", "v")) is None
        assert checker.feed("q1", ("v", "v")) is None

    def test_rejects_bad_initial_state(self, example1_automaton, db):
        checker = StreamingChecker(ExtendedAutomaton(example1_automaton, []), db)
        with pytest.raises(StreamingViolation):
            checker.feed("q2", ("v", "v"))

    def test_rejects_guard_violation(self, example1_automaton, db):
        checker = StreamingChecker(ExtendedAutomaton(example1_automaton, []), db)
        checker.feed("q1", ("v", "v"))
        # delta1 and delta2/3 all require x2 = y2: changing register 2 fails
        with pytest.raises(StreamingViolation):
            checker.feed("q2", ("w", "CHANGED"))

    def test_rejects_wrong_arity(self, example1_automaton, db):
        checker = StreamingChecker(ExtendedAutomaton(example1_automaton, []), db)
        with pytest.raises(StreamingViolation):
            checker.feed("q1", ("v",))

    def test_non_strict_mode_reports(self, example1_automaton, db):
        checker = StreamingChecker(
            ExtendedAutomaton(example1_automaton, []), db, strict=False
        )
        message = checker.feed("q2", ("v", "v"))
        assert message is not None
        assert checker.failed == message


class TestConstraints:
    def test_equality_constraint_streamed(self, example5, db):
        checker = StreamingChecker(example5, db)
        checker.feed("p1", ("d",))
        checker.feed("p2", ("a",))
        checker.feed("p2", ("b",))
        assert checker.feed("p1", ("d",)) is None  # same value back at p1

    def test_equality_violation_detected_at_completion(self, example5, db):
        checker = StreamingChecker(example5, db)
        checker.feed("p1", ("d",))
        checker.feed("p2", ("a",))
        with pytest.raises(StreamingViolation):
            checker.feed("p1", ("OTHER",))

    def test_inequality_constraint_streamed(self, example7_extended, db):
        checker = StreamingChecker(example7_extended, db)
        for index in range(6):
            assert checker.feed("q", ("v%d" % index,)) is None
        with pytest.raises(StreamingViolation):
            checker.feed("q", ("v2",))  # repeats an earlier value

    def test_agrees_with_batch_checker(self, example7_extended, db):
        """Streaming and batch verdicts coincide on finite runs."""
        from repro import FiniteRun

        good = FiniteRun(
            tuple(("v%d" % i,) for i in range(5)), ("q",) * 5, (EMPTY,) * 4
        )
        bad = FiniteRun(
            (("a",), ("b",), ("a",)), ("q",) * 3, (EMPTY,) * 2
        )
        for run, expected in ((good, True), (bad, False)):
            checker = StreamingChecker(example7_extended, db, strict=False)
            message = checker.feed_run(run)
            assert (message is None) == expected
            assert example7_extended.satisfies_constraints(run) == expected


class TestMemoryDiscipline:
    def test_bounded_threads_on_lr_bounded_spec(self, db):
        """Adjacent-disequality spec: live threads stay bounded (Thm 19)."""
        base = RegisterAutomaton(
            1,
            Signature.empty(),
            {"p", "q"},
            {"p"},
            {"p"},
            [("p", EMPTY, "q"), ("q", EMPTY, "p")],
        )
        spec = ExtendedAutomaton(
            base, [GlobalConstraint("neq", 1, 1, concat(literal("p"), literal("q")))]
        )
        checker = StreamingChecker(spec, db)
        for index in range(200):
            state = "p" if index % 2 == 0 else "q"
            checker.feed(state, ("v%d" % index,))
        assert checker.peak_threads <= 4

    def test_unbounded_threads_on_all_distinct(self, example7_extended, db):
        """All-distinct: stored values grow with the stream (the paper's
        point: no register automaton, hence no bounded memory, suffices)."""
        checker = StreamingChecker(example7_extended, db)
        for index in range(50):
            checker.feed("q", ("v%d" % index,))
        assert checker.peak_threads >= 49


class TestFailedStateAndSnapshots:
    """The failed-state contract `MonitorMultiplexer` snapshots rely on."""

    def test_non_strict_failure_is_sticky_and_verbatim(
        self, example7_extended, db
    ):
        checker = StreamingChecker(example7_extended, db, strict=False)
        checker.feed("q", ("a",))
        checker.feed("q", ("b",))
        message = checker.feed("q", ("a",))
        assert message is not None
        position = checker.position
        for _ in range(3):
            assert checker.feed("q", ("fresh",)) == message
        assert checker.failed == message
        assert checker.position == position  # failed feeds consume nothing

    def test_snapshot_after_violation_restores_failed(
        self, example7_extended, db
    ):
        # Regression: the snapshot carries strictness, so a non-strict
        # session restored into a default (strict) checker keeps
        # *returning* the original message instead of raising.
        checker = StreamingChecker(example7_extended, db, strict=False)
        checker.feed("q", ("a",))
        checker.feed("q", ("b",))
        message = checker.feed("q", ("a",))
        snapshot = checker.snapshot()
        restored = StreamingChecker(example7_extended, db).restore(snapshot)
        assert restored.feed("q", ("c",)) == message
        assert restored.failed == message

    def test_strict_failure_keeps_raising_after_restore(
        self, example7_extended, db
    ):
        checker = StreamingChecker(example7_extended, db)
        checker.feed("q", ("a",))
        checker.feed("q", ("b",))
        with pytest.raises(StreamingViolation) as first:
            checker.feed("q", ("a",))
        restored = StreamingChecker(example7_extended, db, strict=False).restore(
            checker.snapshot()
        )
        with pytest.raises(StreamingViolation) as again:
            restored.feed("q", ("c",))
        assert str(again.value) == str(first.value)

    def test_mid_run_snapshot_resumes_byte_identically(
        self, example7_extended, db
    ):
        events = [("q", ("a",)), ("q", ("b",)), ("q", ("c",)), ("q", ("b",))]
        reference = StreamingChecker(example7_extended, db, strict=False)
        expected = [reference.feed(s, r) for s, r in events]
        resumed = StreamingChecker(example7_extended, db, strict=False)
        resumed.feed(*events[0])
        resumed.feed(*events[1])
        resumed = StreamingChecker(example7_extended, db, strict=False).restore(
            resumed.snapshot()
        )
        outputs = expected[:2] + [resumed.feed(s, r) for s, r in events[2:]]
        assert outputs == expected
        assert resumed.peak_threads == reference.peak_threads
