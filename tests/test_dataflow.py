"""Dataflow engine (PR 4): fixpoints, the equality domain, proved pruning.

Four layers, tested bottom-up:

* the generic worklist solver (``repro.analysis.dataflow.framework``);
* the reachable-equality-types domain -- exact per-state type sets,
  witness paths and forced equalities on hand-built automata;
* the sound pruner ``prune_infeasible`` / ``prune_extended`` -- the
  valid-run set is preserved *exactly* (brute-forced over all data words
  from a small pool), and the ``REPRO_PRUNE`` knob flips it per call;
* the end-to-end contract: ``check_emptiness`` returns the same verdict
  and witness with pruning on and off while never checking *more*
  candidates -- across interning modes and under ``REPRO_WORKERS=2``.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Database,
    ExtendedAutomaton,
    GlobalConstraint,
    RegisterAutomaton,
    SigmaType,
    Signature,
    Transition,
    X,
    Y,
    check_emptiness,
    eq,
    generate_finite_runs,
    neq,
    prune_extended,
    prune_infeasible,
    pruning_enabled,
)
from repro.analysis.dataflow import (
    MAX_REGISTERS,
    ForwardProblem,
    PowersetLattice,
    analyze_reachable_types,
    solve_forward,
)
from repro.automata.buchi import BuchiAutomaton
from repro.automata.regex import concat, literal, plus
from repro.core.parallel import shutdown_executor, worker_count
from repro.core.pruning import build_narrowing
from repro.foundations.interning import interning
from repro.generators import random_extended_automaton, random_register_automaton
from repro.logic.types import complete_equality_x_types

EMPTY = Signature.empty()


def ra(k, states, initial, accepting, transitions):
    return RegisterAutomaton(k, EMPTY, states, initial, accepting, transitions)


# --------------------------------------------------------------------- #
# the generic solver
# --------------------------------------------------------------------- #


class _LabelReach(ForwardProblem):
    """Toy problem: collect the labels of all edge paths into each node."""

    lattice = PowersetLattice()

    def __init__(self, edges, entries):
        self._edges = edges  # node -> [(label, successor)]
        self._entries = entries  # node -> frozenset seed

    def nodes(self):
        return self._edges.keys()

    def entry(self, node):
        return self._entries.get(node, frozenset())

    def out_edges(self, node):
        return self._edges[node]

    def transfer(self, label, value):
        return value | {label}


class TestSolver:
    def test_fixpoint_on_a_cyclic_graph(self):
        problem = _LabelReach(
            {
                "a": [("ab", "b")],
                "b": [("bc", "c")],
                "c": [("cb", "b")],
            },
            {"a": frozenset({"start"})},
        )
        result = solve_forward(problem)
        assert result is not None
        assert result.values["a"] == frozenset({"start"})
        assert result.values["b"] == frozenset({"start", "ab", "bc", "cb"})
        assert result.values["c"] == frozenset({"start", "ab", "bc", "cb"})
        assert result.edge_evaluations >= 3

    def test_budget_exhaustion_returns_none(self):
        problem = _LabelReach(
            {"a": [("ab", "b")], "b": [("ba", "a")]},
            {"a": frozenset({"seed"})},
        )
        assert solve_forward(problem, max_edge_evaluations=1) is None

    def test_unreachable_node_stays_bottom(self):
        problem = _LabelReach(
            {"a": [], "island": []}, {"a": frozenset({"start"})}
        )
        result = solve_forward(problem)
        assert result.values["island"] == frozenset()


class TestCompleteTypes:
    def test_bell_numbers(self):
        # One complete type per partition of {x1..xk}: the Bell numbers.
        assert [len(complete_equality_x_types(k)) for k in range(5)] == [
            1, 1, 2, 5, 15,
        ]

    def test_memoised(self):
        assert complete_equality_x_types(3) is complete_equality_x_types(3)

    def test_types_are_complete_and_exclusive(self):
        one, two = complete_equality_x_types(2)
        assert one.entails(eq(X(1), X(2))) != two.entails(eq(X(1), X(2)))


# --------------------------------------------------------------------- #
# the equality domain on a hand-built automaton
# --------------------------------------------------------------------- #

FORCE = SigmaType([eq(X(1), X(2)), eq(X(1), Y(1)), eq(X(2), Y(2))])
KEEP = SigmaType([eq(X(1), Y(1)), eq(X(2), Y(2))])
SPLIT = SigmaType([neq(X(1), X(2)), eq(X(1), Y(1)), eq(X(2), Y(2))])


def funnel():
    """q1 is only reached with x1 = x2; the neq edge to q3 never fires."""
    return ra(
        2,
        {"q0", "q1", "q2", "q3"},
        {"q0"},
        {"q2"},
        [
            ("q0", FORCE, "q1"),
            ("q1", KEEP, "q2"),
            ("q1", SPLIT, "q3"),
            ("q3", KEEP, "q3"),
        ],
    )


class TestEqualityDomain:
    def test_per_state_types_are_exact(self):
        types = analyze_reachable_types(funnel())
        merged, split = complete_equality_x_types(2)
        if not merged.entails(eq(X(1), X(2))):
            merged, split = split, merged
        assert types.types_at("q0") == frozenset((merged, split))
        assert types.types_at("q1") == frozenset((merged,))
        assert types.types_at("q2") == frozenset((merged,))
        assert types.types_at("q3") == frozenset()

    def test_infeasible_transition_and_unreachable_state(self):
        types = analyze_reachable_types(funnel())
        # The split edge is refuted at its (reachable) source; the q3
        # self-loop is infeasible because q3 itself is unreachable.
        assert {(t.source, t.guard) for t in types.infeasible_transitions()} == {
            ("q1", SPLIT),
            ("q3", KEEP),
        }
        assert types.unreachable_states() == ("q3",)

    def test_feasibility_queries(self):
        types = analyze_reachable_types(funnel())
        assert types.feasible_from("q1", KEEP)
        assert not types.feasible_from("q1", SPLIT)
        assert types.feasible_from("q0", FORCE)

    def test_witness_paths(self):
        types = analyze_reachable_types(funnel())
        assert types.witness_path("q0") == []
        path = types.witness_path("q1")
        assert [t.guard for t in path] == [FORCE]
        assert types.witness_path("q3") is None

    def test_forced_equalities(self):
        types = analyze_reachable_types(funnel())
        assert types.forced_equalities("q1") == ((1, 2),)
        assert types.forced_equalities("q0") == ()

    def test_declines_above_register_cap(self):
        k = MAX_REGISTERS + 1
        literals = [eq(X(i), Y(i)) for i in range(1, k + 1)]
        automaton = ra(k, {"a"}, {"a"}, {"a"}, [("a", SigmaType(literals), "a")])
        assert analyze_reachable_types(automaton) is None

    def test_declines_over_edge_budget(self):
        assert analyze_reachable_types(funnel(), max_edge_evaluations=1) is None


# --------------------------------------------------------------------- #
# prune_infeasible / prune_extended
# --------------------------------------------------------------------- #


def _run_set(automaton, length, pool=("a", "b", "c")):
    database = Database(EMPTY)
    return {
        (run.states, run.data)
        for run in generate_finite_runs(automaton, database, length, pool=pool)
    }


class TestPruneInfeasible:
    def test_drops_proved_dead_control(self):
        pruned = prune_infeasible(funnel(), enabled=True)
        assert pruned.states == frozenset({"q0", "q1", "q2"})
        assert SPLIT not in [t.guard for t in pruned.transitions]
        assert pruned.initial == frozenset({"q0"})
        assert pruned.accepting == frozenset({"q2"})

    def test_identity_when_nothing_to_prune(self):
        automaton = ra(1, {"a"}, {"a"}, {"a"}, [("a", SigmaType([eq(X(1), Y(1))]), "a")])
        assert prune_infeasible(automaton, enabled=True) is automaton

    def test_identity_when_disabled(self):
        automaton = funnel()
        assert prune_infeasible(automaton, enabled=False) is automaton

    def test_knob_read_at_call_time(self, monkeypatch):
        automaton = funnel()
        monkeypatch.setenv("REPRO_PRUNE", "0")
        assert not pruning_enabled()
        assert prune_infeasible(automaton) is automaton
        monkeypatch.setenv("REPRO_PRUNE", "1")
        assert pruning_enabled()
        assert prune_infeasible(automaton) is not automaton

    def test_valid_run_set_preserved_exactly(self):
        automaton = funnel()
        pruned = prune_infeasible(automaton, enabled=True)
        for length in range(5):
            assert _run_set(automaton, length) == _run_set(pruned, length)

    def test_restricted_filters_both_endpoints(self):
        automaton = funnel()
        shrunk = automaton.restricted({"q0", "q1"})
        assert shrunk.states == frozenset({"q0", "q1"})
        assert all(
            t.source in shrunk.states and t.target in shrunk.states
            for t in shrunk.transitions
        )


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=2))
def test_prune_preserves_runs_on_random_automata(seed, k):
    automaton = random_register_automaton(
        random.Random(seed), k=k, n_states=3, n_transitions=5
    )
    pruned = prune_infeasible(automaton, enabled=True)
    assert _run_set(automaton, 3, pool=("a", "b")) == _run_set(
        pruned, 3, pool=("a", "b")
    )


def _example23(constrained):
    d1 = SigmaType([eq(X(1), X(2)), eq(X(2), Y(2))])
    d2 = SigmaType([eq(X(2), Y(2))])
    d3 = SigmaType([eq(X(2), Y(2)), eq(Y(1), Y(2))])
    automaton = ra(
        2,
        {"q1", "q2"},
        {"q1"},
        {"q1"},
        [("q1", d1, "q2"), ("q2", d2, "q2"), ("q2", d3, "q1")],
    )
    constraints = []
    if constrained:
        factor = concat(literal("q1"), plus(literal("q2")), literal("q1"))
        constraints = [GlobalConstraint("neq", 1, 1, factor)]
    return ExtendedAutomaton(automaton, constraints), d1, d2, d3


class TestPruneExtended:
    def _constrained_funnel(self):
        factor = concat(literal("q0"), plus(literal("q1")), literal("q2"))
        return ExtendedAutomaton(
            funnel(), [GlobalConstraint("neq", 1, 2, factor)]
        )

    def test_constraint_dfas_remapped_to_surviving_states(self):
        extended = self._constrained_funnel()
        pruned = prune_extended(extended, enabled=True)
        assert pruned.automaton.states == frozenset({"q0", "q1", "q2"})
        (constraint,) = pruned.constraints
        dfa = pruned.constraint_dfa(constraint)  # alphabet check passes
        assert dfa.alphabet == pruned.automaton.states

    def test_identity_when_automaton_untouched(self):
        extended, *_ = _example23(True)
        assert prune_extended(extended, enabled=True) is extended

    def test_emptiness_verdict_survives_pruning(self):
        extended = self._constrained_funnel()
        on = check_emptiness(extended, max_prefix=2, max_cycle=4)
        pruned = prune_extended(extended, enabled=True)
        off = check_emptiness(pruned, max_prefix=2, max_cycle=4)
        assert on.empty == off.empty


# --------------------------------------------------------------------- #
# constraint narrowing in the lasso enumeration
# --------------------------------------------------------------------- #


class _BanState:
    """Stub filter: prune any path whose word visits the banned state."""

    def __init__(self, banned):
        self.banned = banned

    def empty(self):
        return ()

    def step(self, filter_state, symbol):
        state, _guard = symbol
        return None if state == self.banned else filter_state


def _pair_buchi():
    """SControl-shaped Buchi: states and symbols are (state, guard) pairs."""
    a, b, c = ("a", "ga"), ("b", "gb"), ("c", "gc")
    return BuchiAutomaton(
        {a: {a: {b, c}}, b: {b: {a}}, c: {c: {a}}},
        initial={a},
        accepting={a},
    )


class TestNarrowedEnumeration:
    def test_filter_only_skips_and_keeps_order(self):
        buchi = _pair_buchi()
        everything = list(buchi.iter_accepted_lassos(3, 2))
        narrowed = list(
            buchi.iter_accepted_lassos(3, 2, narrow=_BanState("b"))
        )
        banned = lambda lasso: any(
            state == "b" for state, _ in tuple(lasso.prefix) + tuple(lasso.period)
        )
        assert narrowed == [lasso for lasso in everything if not banned(lasso)]
        assert any(banned(lasso) for lasso in everything)  # filter had work

    def test_none_narrow_is_the_identity(self):
        buchi = _pair_buchi()
        assert list(buchi.iter_accepted_lassos(3, 2, narrow=None)) == list(
            buchi.iter_accepted_lassos(3, 2)
        )

    def test_narrowing_mirrors_the_consistency_walk(self):
        extended, d1, d2, d3 = _example23(True)
        narrow = build_narrowing(extended, enabled=True)
        assert narrow is not None
        fstate = narrow.empty()
        for symbol in [("q1", d1), ("q2", d2), ("q2", d3)]:
            fstate = narrow.step(fstate, symbol)
            assert fstate is not None
        # Closing the q1 q2+ q1 factor forces register 1 equal across it:
        # the "neq" constraint is violated inside the word, so the whole
        # subtree is pruned.
        assert narrow.step(fstate, ("q1", d1)) is None
        assert narrow.paths_pruned == 1

    def test_narrowing_none_without_inequality_constraints(self):
        extended, *_ = _example23(False)
        assert build_narrowing(extended, enabled=True) is None
        constrained, *_ = _example23(True)
        assert build_narrowing(constrained, enabled=False) is None


# --------------------------------------------------------------------- #
# end-to-end: pruning never changes the answer, never checks more
# --------------------------------------------------------------------- #


def _fingerprint(result):
    witness = result.witness
    return (
        result.empty,
        result.exact,
        result.max_prefix,
        result.max_cycle,
        None if witness is None else witness.trace,
    )


def _compare_modes(extended, max_prefix=2, max_cycle=4):
    """check_emptiness under REPRO_PRUNE=1 then =0; assert the contract."""
    import os

    previous = os.environ.get("REPRO_PRUNE")
    try:
        os.environ["REPRO_PRUNE"] = "1"
        pruned = check_emptiness(
            extended, max_prefix=max_prefix, max_cycle=max_cycle
        )
        os.environ["REPRO_PRUNE"] = "0"
        baseline = check_emptiness(
            extended, max_prefix=max_prefix, max_cycle=max_cycle
        )
    finally:
        if previous is None:
            os.environ.pop("REPRO_PRUNE", None)
        else:
            os.environ["REPRO_PRUNE"] = previous
    assert _fingerprint(pruned) == _fingerprint(baseline)
    assert pruned.candidates_checked <= baseline.candidates_checked
    return pruned, baseline


class TestPruningSoundEndToEnd:
    def test_example23_both_verdicts(self):
        for constrained in (False, True):
            extended, *_ = _example23(constrained)
            pruned, _ = _compare_modes(extended)
            assert pruned.empty == constrained

    def test_narrowing_strictly_shrinks_the_search(self):
        extended, *_ = _example23(True)
        pruned, baseline = _compare_modes(extended)
        assert pruned.candidates_checked < baseline.candidates_checked

    def test_funnel_with_junk_subgraph(self):
        factor = concat(literal("q0"), plus(literal("q1")), literal("q2"))
        extended = ExtendedAutomaton(
            funnel(), [GlobalConstraint("neq", 1, 2, factor)]
        )
        _compare_modes(extended)

    def test_sound_with_interning_off(self):
        extended, *_ = _example23(True)
        with interning(False):
            _compare_modes(extended)

    def test_sound_under_two_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert worker_count() == 2
        try:
            extended, *_ = _example23(True)
            _compare_modes(extended)
        finally:
            shutdown_executor()


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_pruning_sound_on_random_extended_automata(seed):
    """The headline property: REPRO_PRUNE never changes the answer.

    Verdict, exactness, bounds and the winning witness trace are identical
    with pruning on and off, and the pruned run never checks more
    candidates.  Instances are small enough to stay far below the
    candidate cap, where the contract is exact.  Inequality constraints
    only: the narrowing targets them, and planted equality constraints
    route through the (exponential) Proposition 6 elimination, which makes
    random instances intractably slow regardless of pruning.
    """
    extended = random_extended_automaton(
        random.Random(seed),
        k=2,
        n_states=3,
        n_transitions=4,
        n_constraints=2,
        equality_fraction=0.0,
    )
    pruned, baseline = _compare_modes(extended, max_prefix=1, max_cycle=3)
    if not pruned.empty:
        assert pruned.witness.trace == baseline.witness.trace
