"""Tests for extended automata: constraints, run checking, Proposition 6."""

import pytest

from repro import (
    Database,
    ExtendedAutomaton,
    FiniteRun,
    GlobalConstraint,
    LassoRun,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    eliminate_equality_constraints,
    eq,
    find_lasso_run,
    neq,
)
from repro.automata.regex import concat, literal, plus, star
from repro.foundations.errors import SpecificationError
from repro.logic.types import project_type

EMPTY = SigmaType()


class TestModel:
    def test_constraint_validation(self):
        with pytest.raises(SpecificationError):
            GlobalConstraint("both", 1, 1, literal("q"))
        with pytest.raises(SpecificationError):
            GlobalConstraint("eq", 0, 1, literal("q"))

    def test_register_range_checked(self, example5_extended):
        base = example5_extended.automaton
        with pytest.raises(SpecificationError):
            ExtendedAutomaton(base, [GlobalConstraint("eq", 2, 1, literal("p1"))])

    def test_constraint_partition(self, example5_extended):
        assert len(example5_extended.equality_constraints()) == 1
        assert len(example5_extended.inequality_constraints()) == 0


class TestConstraintChecking:
    def test_example5_finite_run(self, example5_extended):
        # p1 p2 p1 with the same value at both p1 positions
        good = FiniteRun(
            (("d",), ("a",), ("d",)), ("p1", "p2", "p1"), (EMPTY, EMPTY)
        )
        assert example5_extended.satisfies_constraints(good)
        bad = FiniteRun(
            (("d",), ("a",), ("e",)), ("p1", "p2", "p1"), (EMPTY, EMPTY)
        )
        assert not example5_extended.satisfies_constraints(bad)

    def test_example5_lasso_run(self, example5_extended):
        good = LassoRun(
            (("d",), ("a",)), ("p1", "p2"), (EMPTY, EMPTY), loop_start=0
        )
        assert example5_extended.satisfies_constraints(good)
        # Two p1 positions inside the loop with different values.
        bad = LassoRun(
            (("d",), ("a",), ("e",), ("b",)),
            ("p1", "p2", "p1", "p2"),
            (EMPTY,) * 4,
            loop_start=0,
        )
        violation = example5_extended.constraint_violation(bad)
        assert violation is not None and "e=" in violation

    def test_lasso_check_covers_wrapped_factors(self, example7_extended):
        """All-distinct violated only between loop iterations."""
        run = LassoRun((("a",), ("b",)), ("q", "q"), (EMPTY, EMPTY), loop_start=0)
        # value 'a' recurs at positions 0, 2, 4...: caught only by wrapping
        assert not example7_extended.satisfies_constraints(run)

    def test_inequality_on_finite_run(self, example7_extended):
        distinct = FiniteRun((("a",), ("b",), ("c",)), ("q",) * 3, (EMPTY, EMPTY))
        repeat = FiniteRun((("a",), ("b",), ("a",)), ("q",) * 3, (EMPTY, EMPTY))
        assert example7_extended.satisfies_constraints(distinct)
        assert not example7_extended.satisfies_constraints(repeat)

    def test_is_run_combines_validity_and_constraints(
        self, example5_extended, empty_database
    ):
        run = LassoRun((("d",), ("a",)), ("p1", "p2"), (EMPTY, EMPTY), loop_start=0)
        assert example5_extended.is_run(run, empty_database)


class TestProposition6:
    def test_elimination_removes_equalities(self, example5_extended):
        eliminated, original_k = eliminate_equality_constraints(example5_extended)
        assert original_k == 1
        assert not eliminated.equality_constraints()
        assert eliminated.automaton.k > 1

    def test_no_equalities_is_identity(self, example7_extended):
        eliminated, _k = eliminate_equality_constraints(example7_extended)
        assert eliminated is example7_extended

    def test_projected_runs_satisfy_original(self, example5_extended, empty_database):
        """Pi_k(Reg(B)) subseteq Reg(A): project a B-run, check A's constraints."""
        eliminated, original_k = eliminate_equality_constraints(example5_extended)
        run = find_lasso_run(eliminated.automaton, empty_database, pool=("a", "b"))
        assert run is not None
        projected = (
            run.project(original_k)
            .map_states(lambda s: s[0])
            .map_guards(lambda g: project_type(g, original_k, eliminated.automaton.k))
        )
        assert projected.is_valid(example5_extended.automaton, empty_database)
        assert example5_extended.satisfies_constraints(projected)

    def test_original_runs_liftable(self, example5_extended, empty_database):
        """Reg(A) subseteq Pi_k(Reg(B)): witnessed on the canonical run."""
        eliminated, original_k = eliminate_equality_constraints(example5_extended)
        # collect projections of all B lasso runs over a tiny pool and check
        # the canonical A-run's register trace appears
        target = LassoRun(
            (("a",), ("b",)), ("p1", "p2"), (EMPTY, EMPTY), loop_start=0
        )
        assert example5_extended.satisfies_constraints(target)
        run = find_lasso_run(eliminated.automaton, empty_database, pool=("a", "b"))
        assert run is not None  # B is nonempty whenever A is

    def test_inequality_constraints_lifted(self):
        """Mixed constraints: equalities eliminated, inequalities kept."""
        base = RegisterAutomaton(
            1,
            Signature.empty(),
            {"p", "q"},
            {"p"},
            {"p"},
            [("p", EMPTY, "q"), ("q", EMPTY, "p")],
        )
        extended = ExtendedAutomaton(
            base,
            [
                GlobalConstraint("eq", 1, 1, concat(literal("p"), star(literal("q")), literal("p"))),
                GlobalConstraint("neq", 1, 1, concat(literal("p"), literal("q"))),
            ],
        )
        eliminated, _k = eliminate_equality_constraints(extended)
        assert not eliminated.equality_constraints()
        assert len(eliminated.inequality_constraints()) == 1
