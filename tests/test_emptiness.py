"""Tests for emptiness of extended automata (Theorem 9 / Corollary 10)."""

import pytest

from repro import (
    ExtendedAutomaton,
    GlobalConstraint,
    RegisterAutomaton,
    SigmaType,
    Signature,
    check_emptiness,
    has_run,
)
from repro.automata.regex import concat, literal, plus
from repro.core.emptiness import clique_number

EMPTY = SigmaType()


class TestCliqueNumber:
    def test_empty_graph(self):
        assert clique_number([], set()) == 0

    def test_triangle(self):
        edges = {(1, 2), (2, 3), (1, 3)}
        assert clique_number([1, 2, 3, 4], edges) == 3

    def test_bipartite(self):
        edges = {(1, 3), (1, 4), (2, 3), (2, 4)}
        assert clique_number([1, 2, 3, 4], edges) == 2


class TestNoConstraints:
    def test_plain_automaton_nonempty(self, example1_automaton):
        result = check_emptiness(ExtendedAutomaton(example1_automaton, []))
        assert not result.empty
        assert result.exact

    def test_unreachable_acceptance_empty(self):
        automaton = RegisterAutomaton(
            1, Signature.empty(), {"a", "b"}, {"a"}, {"b"}, [("a", EMPTY, "a")]
        )
        result = check_emptiness(ExtendedAutomaton(automaton, []))
        assert result.empty and result.exact


class TestExample7:
    def test_all_distinct_nonempty(self, example7_extended):
        result = check_emptiness(example7_extended)
        assert not result.empty
        assert result.exact

    def test_no_data_periodic_witness(self, example7_extended):
        """Example 7 has runs but no ultimately periodic (in data) run."""
        result = check_emptiness(example7_extended)
        assert result.witness.lasso_run() is None

    def test_finite_witnesses_are_valid_and_distinct(self, example7_extended):
        result = check_emptiness(example7_extended)
        for length in (3, 7, 12):
            database, run = result.witness.finite_witness(length)
            assert len(run) == length
            assert run.is_valid(result.witness.normalised.automaton, database)
            values = [row[0] for row in run.data]
            assert len(set(values)) == length  # all pairwise distinct

    def test_contradictory_constraints_empty(self, example7_extended):
        base = example7_extended.automaton
        all_pairs = concat(literal("q"), plus(literal("q")))
        contradictory = ExtendedAutomaton(
            base,
            list(example7_extended.constraints)
            + [GlobalConstraint("eq", 1, 1, all_pairs)],
        )
        result = check_emptiness(contradictory)
        assert result.empty


class TestExample8:
    def test_with_breaks_nonempty(self, example8_extended):
        """(p q)^omega-style traces are realisable over a finite database."""
        result = check_emptiness(example8_extended, max_prefix=1, max_cycle=4)
        assert not result.empty
        out = result.witness.lasso_run()
        assert out is not None
        database, run = out
        assert run.is_valid(result.witness.normalised.automaton, database)

    def test_p_only_empty(self, example8_p_only):
        """p^omega demands infinitely many distinct values inside finite P."""
        result = check_emptiness(example8_p_only, max_prefix=1, max_cycle=3)
        assert result.empty

    def test_has_run_wrapper(self, example8_extended, example8_p_only):
        assert has_run(example8_extended, max_prefix=1, max_cycle=4)
        assert not has_run(example8_p_only, max_prefix=1, max_cycle=3)


class TestWitnessProjection:
    def test_witness_projects_to_original_arity(self, example7_extended):
        result = check_emptiness(example7_extended)
        _db, run = result.witness.finite_witness(5)
        projected = result.witness.project_to_original(run)
        assert all(len(row) == example7_extended.k for row in projected.data)
