"""Tests for the whole-program lint engine (``repro.analysis.lint``).

Two golden files pin the engine's output over the fixture tree in
:mod:`tests.lint_fixture_data`:

* ``tests/goldens/lint_legacy_fixture.json`` was generated with the
  **pre-refactor** ``tools/lint_repro.py`` and is the migration
  acceptance anchor: the new engine, selected down to the eight legacy
  codes, must reproduce it byte for byte.  It is never regenerated.
* ``tests/goldens/lint_full_fixture.json`` is the full new-engine
  output (all rules) and pins the JSON shape and the new families'
  findings going forward.  After a *deliberate* rule change, regenerate
  it from the repo root with::

      PYTHONPATH=src python tests/test_lint_engine.py --regen

The rest of the module unit-tests the layers the goldens cannot reach
individually: the program model's cross-module resolution, the pure
rule helpers driven with fixture registries and workflow texts, the
knob registry's parsers and call-time semantics, and the generated-docs
round-trip (``--emit-docs``).
"""

import ast
import json
import os
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.analysis.lint import (
    LintContext,
    all_rules,
    get_rule,
    iter_findings,
    lint_paths,
    load_program,
    main,
)
from repro.analysis.lint import deadlines, docs, knob_rules, purity
from repro.analysis.lint.program import ModuleInfo, Program, module_name_for
from repro.foundations import knobs
from tests.lint_fixture_data import FIXTURES, LEGACY_CODES

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDENS = Path(__file__).resolve().parent / "goldens"
LEGACY_GOLDEN = GOLDENS / "lint_legacy_fixture.json"
FULL_GOLDEN = GOLDENS / "lint_full_fixture.json"


def materialise(root: Path) -> Path:
    """Write the fixture tree under ``root / "fixtures"``."""
    base = root / "fixtures"
    for relative, source in FIXTURES.items():
        target = base / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return base


def run_cli(args, tmp_path, monkeypatch, capsys):
    """Run the CLI from *tmp_path*; ``(exit status, stdout)``."""
    materialise(tmp_path)
    monkeypatch.chdir(tmp_path)
    status = main(args)
    return status, capsys.readouterr().out


def _module(path: str, source: str) -> ModuleInfo:
    return ModuleInfo(path, source, ast.parse(source))


def _program(files: dict) -> Program:
    program, failures = load_program(sorted(files.items()))
    assert not failures
    return program


# --------------------------------------------------------------------- #
# the goldens
# --------------------------------------------------------------------- #


class TestGoldens:
    def test_legacy_rules_byte_identical_to_prerefactor(
        self, tmp_path, monkeypatch, capsys
    ):
        """The migration acceptance anchor.

        The golden was produced by the monolithic pre-refactor
        ``tools/lint_repro.py``; the new registry-driven engine selected
        down to the eight legacy codes must emit the identical bytes.
        """
        status, out = run_cli(
            ["fixtures", "--format", "json", "--select", ",".join(LEGACY_CODES)],
            tmp_path,
            monkeypatch,
            capsys,
        )
        assert status == 1
        assert out == LEGACY_GOLDEN.read_text()

    def test_full_output_matches_golden(self, tmp_path, monkeypatch, capsys):
        status, out = run_cli(
            ["fixtures", "--format", "json"], tmp_path, monkeypatch, capsys
        )
        assert status == 1
        assert out == FULL_GOLDEN.read_text()

    def test_every_rule_family_fires_on_the_fixture_tree(self):
        """Each seeded violation is caught -- no rule is vacuous."""
        codes = {f["code"] for f in json.loads(FULL_GOLDEN.read_text())["findings"]}
        assert set(LEGACY_CODES) <= codes
        assert {"PAR001", "PAR002", "PAR003", "KNB001", "RSL001", "RSL002"} <= codes
        # Artifact rules need a CI workflow / docs tree; the fixture
        # tree has neither, so they must stay silent rather than guess.
        assert "KNB002" not in codes and "KNB003" not in codes

    def test_text_format_and_exit_codes(self, tmp_path, monkeypatch, capsys):
        status, out = run_cli(
            ["fixtures/plain/bad_time.py"], tmp_path, monkeypatch, capsys
        )
        assert status == 1
        assert out.splitlines()[0].startswith(
            "fixtures/plain/bad_time.py:5:11: TIME001 "
        )
        (tmp_path / "clean.py").write_text("x = 1\n")
        assert main(["clean.py"]) == 0

    def test_missing_path_is_inline_syn002(self, tmp_path, monkeypatch, capsys):
        status, out = run_cli(
            ["no/such/dir", "fixtures/plain/bad_time.py"],
            tmp_path,
            monkeypatch,
            capsys,
        )
        assert status == 1
        lines = out.splitlines()
        assert lines[0] == "no/such/dir:0:0: SYN002 path does not exist"
        assert "TIME001" in lines[1]

    def test_select_and_ignore_filters(self, tmp_path, monkeypatch, capsys):
        status, out = run_cli(
            ["fixtures", "--select", "RSL002"], tmp_path, monkeypatch, capsys
        )
        assert status == 1
        assert [line.split()[1] for line in out.splitlines()] == ["RSL002"]
        monkeypatch.chdir(tmp_path)
        status = main(["fixtures", "--ignore", ",".join(LEGACY_CODES)])
        out = capsys.readouterr().out
        reported = {line.split()[1] for line in out.splitlines()}
        assert reported and not (reported & set(LEGACY_CODES))

    def test_tools_shim_still_runs_standalone(self, tmp_path):
        """``python tools/lint_repro.py`` keeps working (CI invokes it)."""
        materialise(tmp_path)
        result = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "tools" / "lint_repro.py"),
                "fixtures/plain/bad_id.py",
            ],
            cwd=tmp_path,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        assert "ID001" in result.stdout


# --------------------------------------------------------------------- #
# the program model
# --------------------------------------------------------------------- #


class TestProgramModel:
    def test_module_names_anchor_at_the_innermost_repro_dir(self):
        assert module_name_for("src/repro/core/streaming.py") == (
            "repro.core.streaming"
        )
        assert module_name_for("fixtures/src/repro/core/streaming.py") == (
            "repro.core.streaming"
        )
        assert module_name_for("src/repro/logic/__init__.py") == "repro.logic"
        assert module_name_for("tools/lint_repro.py") == "lint_repro"

    def test_payload_resolved_across_modules(self):
        """The fixture race: call site and payload in different files."""
        program = _program(
            {
                "src/repro/core/bad_worker.py": FIXTURES[
                    "src/repro/core/bad_worker.py"
                ],
                "src/repro/core/bad_worker_payload.py": FIXTURES[
                    "src/repro/core/bad_worker_payload.py"
                ],
            }
        )
        names = {fn.qualname for fn in purity.worker_functions(program)}
        assert "record" in names

    def test_payload_resolved_through_local_variable(self):
        source = (
            "from repro.core.parallel import parallel_map\n"
            "\n"
            "def _work(item):\n"
            "    return item\n"
            "\n"
            "def go(items):\n"
            "    payload = _work\n"
            "    return parallel_map(payload, items)\n"
        )
        program = _program({"src/repro/core/x.py": source})
        names = {fn.qualname for fn in purity.worker_functions(program)}
        assert "_work" in names

    def test_constructed_payload_resolves_to_dunder_call(self):
        source = (
            "from repro.core.parallel import parallel_map\n"
            "\n"
            "class Tracker:\n"
            "    def __call__(self, item):\n"
            "        return item\n"
            "\n"
            "def go(items):\n"
            "    return parallel_map(Tracker(), items)\n"
        )
        program = _program({"src/repro/core/x.py": source})
        names = {fn.qualname for fn in purity.worker_functions(program)}
        assert "Tracker.__call__" in names

    def test_unparseable_file_is_a_syn001_failure(self):
        program, failures = load_program([("x.py", "def broken(:\n")])
        assert not program.modules
        assert failures["x.py"].code == "SYN001"

    def test_registry_is_complete_and_deterministic(self):
        codes = [rule.code for rule in all_rules()]
        assert codes == sorted(codes)
        assert set(LEGACY_CODES) <= set(codes)
        assert get_rule("PAR001").scope == "program"
        assert get_rule("KNB002").scope == "artifact"
        assert get_rule("ID001").scope == "module"


# --------------------------------------------------------------------- #
# PAR00x: worker purity
# --------------------------------------------------------------------- #


class TestWorkerPurity:
    def _findings(self, files):
        return purity.purity_findings(_program(files))

    def test_fixture_payload_yields_all_three_codes(self):
        findings = self._findings(
            {
                "src/repro/core/bad_worker.py": FIXTURES[
                    "src/repro/core/bad_worker.py"
                ],
                "src/repro/core/bad_worker_payload.py": FIXTURES[
                    "src/repro/core/bad_worker_payload.py"
                ],
            }
        )
        assert [f.code for f in findings] == ["PAR001", "PAR002", "PAR003"]
        # The _BLESSED write on the `# worker-ok:` line stays exempt.
        blessed_line = FIXTURES["src/repro/core/bad_worker_payload.py"].splitlines()
        exempt = blessed_line.index(
            "    _BLESSED[item] = item  # worker-ok: fixture demonstrates the exemption"
        ) + 1
        assert all(f.line != exempt for f in findings)

    def test_registered_container_is_exempt(self):
        source = (
            "from repro.core.parallel import parallel_map\n"
            "from repro.core.caching import register_cache\n"
            "\n"
            "_CACHE = {}\n"
            "register_cache(_CACHE)\n"
            "\n"
            "def record(item):\n"
            "    _CACHE[item] = item\n"
            "    return item\n"
            "\n"
            "def go(items):\n"
            "    return parallel_map(record, items)\n"
        )
        assert self._findings({"src/repro/core/x.py": source}) == []

    def test_value_cache_is_exempt(self):
        source = (
            "from repro.core.parallel import parallel_map\n"
            "from repro.foundations.memo import ValueCache\n"
            "\n"
            "_MEMO = ValueCache('x')\n"
            "\n"
            "def record(item):\n"
            "    _MEMO[item] = item\n"
            "    return item\n"
            "\n"
            "def go(items):\n"
            "    return parallel_map(record, items)\n"
        )
        assert self._findings({"src/repro/core/x.py": source}) == []

    def test_functions_not_reachable_from_a_pool_stay_unchecked(self):
        source = (
            "_CACHE = {}\n"
            "\n"
            "def record(item):\n"
            "    _CACHE[item] = item\n"
            "    return item\n"
        )
        assert self._findings({"src/repro/core/x.py": source}) == []

    def test_outside_the_repro_tree_is_out_of_scope(self):
        source = (
            "from repro.core.parallel import parallel_map\n"
            "\n"
            "_SEEN = {}\n"
            "\n"
            "def record(item):\n"
            "    _SEEN[item] = item\n"
            "    return item\n"
            "\n"
            "def go(items):\n"
            "    return parallel_map(record, items)\n"
        )
        assert self._findings({"benchmarks/bench_x.py": source}) == []


# --------------------------------------------------------------------- #
# KNB00x: knob discipline
# --------------------------------------------------------------------- #


class TestKnobAccessRule:
    def _codes(self, source, path="src/repro/core/x.py"):
        return [
            f.code
            for f in knob_rules.knob_access_findings(_module(path, source))
        ]

    def test_environ_subscript_read_and_write(self):
        source = (
            "import os\n"
            "def f():\n"
            "    os.environ['REPRO_FANCY'] = '1'\n"
            "    return os.environ['REPRO_FANCY']\n"
        )
        assert self._codes(source) == ["KNB001", "KNB001"]

    def test_environ_get_and_os_getenv(self):
        source = (
            "import os\n"
            "from os import getenv\n"
            "def f():\n"
            "    a = os.environ.get('REPRO_FANCY', '')\n"
            "    b = os.getenv('REPRO_FANCY')\n"
            "    c = getenv('REPRO_FANCY')\n"
            "    return a, b, c\n"
        )
        assert self._codes(source) == ["KNB001", "KNB001", "KNB001"]

    def test_non_repro_names_are_fine(self):
        source = (
            "import os\n"
            "def f():\n"
            "    return os.environ.get('HOME', ''), os.environ['PATH']\n"
        )
        assert self._codes(source) == []

    def test_registry_module_itself_is_exempt(self):
        source = (
            "import os\n"
            "def f():\n"
            "    return os.environ.get('REPRO_FANCY')\n"
        )
        assert self._codes(source, "src/repro/foundations/knobs.py") == []

    def test_outside_the_repro_tree_is_out_of_scope(self):
        source = (
            "import os\n"
            "QUICK = os.environ.get('REPRO_BENCH_QUICK', '')\n"
        )
        assert self._codes(source, "benchmarks/_tables.py") == []


class TestAblationCoverage:
    @staticmethod
    def _knob(name, ablation="ci", reason=""):
        return SimpleNamespace(
            name=name, ablation=ablation, ablation_reason=reason
        )

    def _codes(self, knob_list, ci_text, registered=()):
        names = {k.name for k in knob_list} | set(registered)
        return [
            f.message
            for f in knob_rules.ablation_findings(
                knob_list, ci_text, "ci.yml", names.__contains__
            )
        ]

    def test_covered_ci_knob_is_clean(self):
        assert self._codes([self._knob("REPRO_PRUNE")], "REPRO_PRUNE: 0") == []

    def test_uncovered_ci_knob_is_flagged(self):
        (message,) = self._codes([self._knob("REPRO_PRUNE")], "jobs: {}")
        assert "REPRO_PRUNE" in message and "no leg" in message

    def test_opt_out_requires_a_reason(self):
        knob = self._knob("REPRO_X", ablation="none")
        (message,) = self._codes([knob], "")
        assert "without an ablation_reason" in message
        knob = self._knob("REPRO_X", ablation="none", reason="harness only")
        assert self._codes([knob], "") == []

    def test_unknown_ablation_kind_is_flagged(self):
        (message,) = self._codes([self._knob("REPRO_X", ablation="maybe")], "")
        assert "unknown ablation kind" in message

    def test_ghost_leg_is_flagged(self):
        (message,) = self._codes([], "env:\n  REPRO_GHOST: 1\n")
        assert "REPRO_GHOST" in message and "no such knob" in message

    def test_real_registry_matches_real_workflow(self):
        """The live KNB002 contract: registry and ci.yml are in lockstep."""
        ci_path = REPO_ROOT / ".github" / "workflows" / "ci.yml"
        findings = knob_rules.ablation_findings(
            knobs.all_knobs(),
            ci_path.read_text(),
            str(ci_path),
            knobs.is_registered,
        )
        assert findings == []


class TestKnobRegistry:
    def test_values_are_read_at_call_time(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert knobs.value("REPRO_WORKERS") == 3
        monkeypatch.setenv("REPRO_WORKERS", "junk")
        assert knobs.value("REPRO_WORKERS") == 1
        monkeypatch.delenv("REPRO_WORKERS")
        assert knobs.value("REPRO_WORKERS") == 1

    def test_parsers_absorb_junk(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "100")
        assert knobs.value("REPRO_WORKERS") == 64
        monkeypatch.setenv("REPRO_MAX_POOL_RETRIES", "0")
        assert knobs.value("REPRO_MAX_POOL_RETRIES") == 0
        monkeypatch.setenv("REPRO_POOL_BACKOFF_MS", "-5")
        assert knobs.value("REPRO_POOL_BACKOFF_MS") == 0.05
        monkeypatch.setenv("REPRO_DEADLINE_MS", "nope")
        assert knobs.value("REPRO_DEADLINE_MS") is None
        monkeypatch.setenv("REPRO_PRUNE", "Off")
        assert knobs.value("REPRO_PRUNE") is False
        monkeypatch.delenv("REPRO_PRUNE")
        assert knobs.value("REPRO_PRUNE") is True

    def test_redeclaring_identically_returns_the_original(self):
        existing = knobs.get_knob("REPRO_PRUNE")
        again = knobs.register_knob(
            knobs.Knob(
                name="REPRO_PRUNE",
                default=existing.default,
                parse=existing.parse,
                doc=existing.doc,
            )
        )
        assert again is existing

    def test_conflicting_redeclaration_raises(self):
        with pytest.raises(ValueError):
            knobs.register_knob(
                knobs.Knob(
                    name="REPRO_PRUNE",
                    default="something else",
                    parse=knobs.flag_default_on,
                    doc="a conflicting meaning",
                )
            )

    def test_pin_for_worker_is_a_real_environment_write(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        knobs.pin_for_worker("REPRO_WORKERS", "1")
        assert os.environ["REPRO_WORKERS"] == "1"
        assert knobs.value("REPRO_WORKERS") == 1

    def test_every_declaration_is_documented_and_certifiable(self):
        declared = knobs.all_knobs()
        assert [k.name for k in declared] == sorted(k.name for k in declared)
        for knob in declared:
            assert knob.name.startswith("REPRO_")
            assert knob.default and knob.doc
            assert knob.ablation in ("ci", "none")
            if knob.ablation == "none":
                assert knob.ablation_reason


# --------------------------------------------------------------------- #
# RSL00x: deadline polling
# --------------------------------------------------------------------- #


class TestDeadlineRules:
    def _findings(self, files):
        return deadlines.deadline_findings(_program(files))

    def test_fixture_loops_are_flagged(self):
        findings = self._findings(
            {
                "src/repro/core/streaming.py": FIXTURES[
                    "src/repro/core/streaming.py"
                ],
                "src/repro/core/emptiness.py": FIXTURES[
                    "src/repro/core/emptiness.py"
                ],
            }
        )
        codes = {(f.path, f.code) for f in findings}
        assert codes == {
            ("src/repro/core/streaming.py", "RSL001"),
            ("src/repro/core/emptiness.py", "RSL002"),
        }

    def test_direct_poll_silences_the_loop(self):
        source = (
            "from repro.foundations.resilience import current_deadline\n"
            "\n"
            "def feed_run(batch):\n"
            "    return len(batch)\n"
            "\n"
            "def drain(batches):\n"
            "    total = 0\n"
            "    for batch in batches:\n"
            "        current_deadline().check('streaming.feed_run')\n"
            "        total += feed_run(batch)\n"
            "    return total\n"
        )
        assert self._findings({"src/repro/core/streaming.py": source}) == []

    def test_poll_through_a_resolved_callee_counts(self):
        """The poll may live inside the expensive function itself."""
        source = (
            "from repro.foundations.resilience import current_deadline\n"
            "\n"
            "def feed_run(batch):\n"
            "    current_deadline().check('streaming.feed_run')\n"
            "    return len(batch)\n"
            "\n"
            "def drain(batches):\n"
            "    total = 0\n"
            "    for batch in batches:\n"
            "        total += feed_run(batch)\n"
            "    return total\n"
        )
        assert self._findings({"src/repro/core/streaming.py": source}) == []

    def test_deadline_ok_annotation_is_honoured(self):
        source = (
            "def feed_run(batch):\n"
            "    return len(batch)\n"
            "\n"
            "def drain(batches):\n"
            "    total = 0\n"
            "    for batch in batches:  # deadline-ok: fixture, bounded by construction\n"
            "        total += feed_run(batch)\n"
            "    return total\n"
        )
        assert self._findings({"src/repro/core/streaming.py": source}) == []

    def test_only_long_running_modules_are_in_scope(self):
        source = FIXTURES["src/repro/core/streaming.py"]
        assert self._findings({"src/repro/core/quiet.py": source}) == []
        assert "repro.core.quiet" not in deadlines.LONG_RUNNING_MODULES

    def test_cheap_loops_stay_quiet_even_in_scope(self):
        source = (
            "def drain(batches):\n"
            "    total = 0\n"
            "    for batch in batches:\n"
            "        total += len(batch)\n"
            "    return total\n"
        )
        assert self._findings({"src/repro/core/streaming.py": source}) == []


# --------------------------------------------------------------------- #
# generated docs
# --------------------------------------------------------------------- #


class TestGeneratedDocs:
    def _context(self, tmp_path, analysis_text, robustness_text):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "ANALYSIS.md").write_text(analysis_text)
        (tmp_path / "docs" / "ROBUSTNESS.md").write_text(robustness_text)
        return LintContext(root=tmp_path)

    @staticmethod
    def _marked(begin, end, block=""):
        return "# Doc\n\n%s\n%s%s\n\ntail\n" % (begin, block, end)

    def test_stale_update_ok_round_trip(self, tmp_path):
        context = self._context(
            tmp_path,
            self._marked(docs.RULE_TABLE_BEGIN, docs.RULE_TABLE_END, "old\n"),
            self._marked(docs.KNOB_TABLE_BEGIN, docs.KNOB_TABLE_END, "old\n"),
        )
        statuses = [status for _path, status in docs.sync_docs(context, check=True)]
        assert statuses == ["stale", "stale"]
        statuses = [status for _path, status in docs.sync_docs(context)]
        assert statuses == ["updated", "updated"]
        statuses = [status for _path, status in docs.sync_docs(context, check=True)]
        assert statuses == ["ok", "ok"]
        text = (tmp_path / "docs" / "ANALYSIS.md").read_text()
        assert text.startswith("# Doc\n") and text.endswith("tail\n")
        assert "| `ID001` | module |" in text
        knob_text = (tmp_path / "docs" / "ROBUSTNESS.md").read_text()
        assert "| `REPRO_WORKERS` |" in knob_text

    def test_drift_findings_report_stale_and_missing_markers(self, tmp_path):
        context = self._context(
            tmp_path,
            "# Doc without markers\n",
            self._marked(docs.KNOB_TABLE_BEGIN, docs.KNOB_TABLE_END, "old\n"),
        )
        findings = docs.drift_findings(context)
        assert [f.code for f in findings] == ["KNB003", "KNB003"]
        assert "markers" in findings[0].message
        assert "stale" in findings[1].message

    def test_missing_files_are_skipped_not_fabricated(self, tmp_path):
        context = LintContext(root=tmp_path)
        assert docs.drift_findings(context) == []
        statuses = [status for _path, status in docs.sync_docs(context)]
        assert statuses == ["missing", "missing"]

    def test_checked_in_docs_are_current(self):
        """The live KNB003 contract: the repo's tables match the registries."""
        context = LintContext(root=REPO_ROOT)
        statuses = dict(docs.sync_docs(context, check=True))
        assert set(statuses.values()) == {"ok"}


# --------------------------------------------------------------------- #
# the real tree
# --------------------------------------------------------------------- #


class TestSelfClean:
    def test_whole_repository_lints_clean(self, monkeypatch):
        """The engine runs self-clean over everything CI lints."""
        monkeypatch.chdir(REPO_ROOT)
        findings = lint_paths(
            ["src", "tools", "benchmarks", "examples", "tests"],
            LintContext(root=REPO_ROOT),
        )
        assert findings == []


# --------------------------------------------------------------------- #
# golden regeneration (manual, deliberate)
# --------------------------------------------------------------------- #


def _regenerate_full_golden() -> None:
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        materialise(Path(tmp))
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.analysis.lint",
                "fixtures",
                "--format",
                "json",
            ],
            cwd=tmp,
            capture_output=True,
            text=True,
            env=dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src")),
        )
    FULL_GOLDEN.write_text(result.stdout)
    print("wrote %s (%d findings)" % (
        FULL_GOLDEN, json.loads(result.stdout)["count"]
    ))


if __name__ == "__main__":
    if "--regen" in sys.argv:
        _regenerate_full_golden()
    else:
        print(__doc__)
