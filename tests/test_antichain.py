"""Antichain dataflow domain (PR 6): partition codes, subsumption, high k.

Five layers, tested bottom-up:

* the partition-code tables of ``repro.logic.types`` -- Bell counts,
  encode/decode roundtrips, and literal-for-literal agreement with the
  legacy ``completions`` enumeration (the byte-identity anchor);
* the generic :class:`~repro.analysis.dataflow.framework.SubsumptionLattice`;
* the cache-correctness regressions: mode listeners drop the
  ``_COMPLETE_X_TYPES`` table (and the decode cache) on an interning flip;
* antichain == explicit -- every query of :class:`ReachableTypes` agrees
  between ``REPRO_ANTICHAIN=1`` and ``=0`` on random automata (k <= 5,
  where the explicit Bell domain still runs);
* end-to-end above the old cap: DF001/DF002/DF004 fire on 7..12-register
  automata, and ``check_emptiness`` at k = 8 is invariant under
  ``REPRO_PRUNE`` and ``REPRO_WORKERS``.
"""

import os
import random
from contextlib import contextmanager

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    ExtendedAutomaton,
    GlobalConstraint,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    check_emptiness,
    eq,
    neq,
)
from repro.analysis import analyze
from repro.analysis.dataflow import (
    EXPLICIT_MAX_REGISTERS,
    MAX_REGISTERS,
    SubsumptionLattice,
    SymbolicReachableTypes,
    analyze_reachable_types,
    antichain_enabled,
    reachable_types_outcome,
)
from repro.automata.regex import concat, literal
from repro.core.caching import clear_value_caches
from repro.core.parallel import shutdown_executor
from repro.foundations.interning import clear_intern_tables, interning
from repro.foundations.resilience import OutcomeStatus
from repro.generators import random_register_automaton
from repro.logic.terms import x_vars
from repro.logic.types import (
    all_pairs_mask,
    closure_mask,
    complete_equality_x_types,
    decode_partition_code,
    enumerate_interval_codes,
    interval_contains,
    interval_size,
    pair_bit,
    pair_bits,
    partition_code,
    successor_atoms,
)

EMPTY = Signature.empty()

#: Bell numbers B(1)..B(8): the sizes of the complete-x-type domains.
BELL = (1, 2, 5, 15, 52, 203, 877, 4140)


@contextmanager
def _env(**overrides):
    """Pin environment knobs for one block (``None`` unsets a variable)."""
    previous = {name: os.environ.get(name) for name in overrides}
    for name, value in overrides.items():
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value
    try:
        yield
    finally:
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def ra(k, states, initial, accepting, transitions):
    return RegisterAutomaton(k, EMPTY, states, initial, accepting, transitions)


def _funnel(k):
    """init --all-equal--> narrow --x1!=x2--> dead: DF001/DF002/DF004 bait.

    The FORCE guard collapses every register into one class, so at
    ``narrow`` all pairs are provably aliased (DF004), the SPLIT edge can
    never fire (DF001) and ``dead`` is graph-reachable yet valid-run
    unreachable (DF002).  Guards mention at most two x-registers (the
    y-chains are free), so the sigma-reduction keeps every transfer at
    Bell(2) no matter how large k grows -- this family is what makes the
    12-register cap testable at all.
    """
    y_chain = [eq(Y(i), Y(i + 1)) for i in range(1, k)]
    force = SigmaType(y_chain)
    keep = SigmaType([eq(X(1), Y(1))] + y_chain)
    split = SigmaType([neq(X(1), X(2)), eq(X(1), Y(1))] + y_chain)
    return ra(
        k,
        {"init", "narrow", "dead"},
        {"init"},
        {"narrow"},
        [
            ("init", force, "narrow"),
            ("narrow", keep, "narrow"),
            ("narrow", split, "dead"),
            ("dead", keep, "dead"),
        ],
    )


# --------------------------------------------------------------------- #
# partition codes
# --------------------------------------------------------------------- #


class TestPartitionCodes:
    def test_pair_tables(self):
        assert pair_bits(3) == ((1, 2), (1, 3), (2, 3))
        assert pair_bit(2, 3, 3) == 2
        assert pair_bit(3, 2, 3) == 2  # order-insensitive
        assert all_pairs_mask(4) == (1 << 6) - 1

    def test_closure_mask_is_transitive(self):
        k = 4
        mask = 1 << pair_bit(1, 2, k) | 1 << pair_bit(2, 3, k)
        closed = closure_mask(mask, k)
        assert closed >> pair_bit(1, 3, k) & 1
        assert not closed >> pair_bit(1, 4, k) & 1

    def test_bell_counts(self):
        for k, bell in enumerate(BELL, start=1):
            assert interval_size(0, 0, k) == bell

    def test_codes_roundtrip_through_decode(self):
        for k in range(1, 6):
            for code in enumerate_interval_codes(0, 0, k):
                assert partition_code(decode_partition_code(code, k), k) == code

    def test_decode_replays_legacy_completions_exactly(self):
        # The byte-identity anchor: the code tables must reproduce the old
        # ``completions``-based enumeration literal for literal, in order.
        for k in range(1, 6):
            legacy = tuple(SigmaType([]).completions({}, tuple(x_vars(k))))
            rebuilt = complete_equality_x_types(k)
            assert [phi.literals for phi in rebuilt] == [
                phi.literals for phi in legacy
            ]

    def test_interval_containment(self):
        k = 3
        bit12 = 1 << pair_bit(1, 2, k)
        bit13 = 1 << pair_bit(1, 3, k)
        assert interval_contains((0, 0), (bit12, bit13))
        assert interval_contains((bit12, 0), (bit12, bit13))
        assert not interval_contains((bit12, 0), (bit13, 0))
        assert not interval_contains((0, bit13), (0, 0))

    def test_inconsistent_interval_is_empty(self):
        k = 3
        eq_mask = 1 << pair_bit(1, 2, k) | 1 << pair_bit(2, 3, k)
        neq_mask = 1 << pair_bit(1, 3, k)  # contradicts the closure
        assert interval_size(eq_mask, neq_mask, k) == 0

    def test_successor_atoms_ignore_unmentioned_registers(self):
        # The sigma-reduction: a guard over x1/x2 yields the same atoms no
        # matter how registers 3..k are related in the source interval.
        k = 4
        guard = SigmaType([eq(X(1), X(2)), eq(X(1), Y(1))])
        bit34 = 1 << pair_bit(3, 4, k)
        assert successor_atoms(0, 0, guard, k) == successor_atoms(
            bit34, 0, guard, k
        )


# --------------------------------------------------------------------- #
# the subsumption lattice
# --------------------------------------------------------------------- #


def _covers(outer, inner):
    """Bitmask superset: the partial order for the lattice unit tests."""
    return outer & inner == inner


class TestSubsumptionLattice:
    def test_prune_keeps_only_maximal_elements(self):
        lattice = SubsumptionLattice(_covers)
        assert lattice.prune([0b01, 0b11, 0b10, 0b01]) == frozenset({0b11})
        assert lattice.prune([0b01, 0b10]) == frozenset({0b01, 0b10})

    def test_join_is_union_plus_prune(self):
        lattice = SubsumptionLattice(_covers)
        left = frozenset({0b01})
        right = frozenset({0b11, 0b100})
        assert lattice.join(left, right) == frozenset({0b11, 0b100})
        assert lattice.join(left, left) is left  # equal values short-circuit

    def test_leq_means_every_element_subsumed(self):
        lattice = SubsumptionLattice(_covers)
        assert lattice.leq(frozenset(), frozenset({0b1}))
        assert lattice.leq(frozenset({0b01}), frozenset({0b11}))
        assert not lattice.leq(frozenset({0b100}), frozenset({0b11}))

    def test_bottom_is_empty(self):
        assert SubsumptionLattice(_covers).bottom() == frozenset()


# --------------------------------------------------------------------- #
# cache correctness across interning flips
# --------------------------------------------------------------------- #


class TestModeFlipRegression:
    def test_complete_types_table_dropped_on_interning_flip(self):
        # The historical bug: ``_COMPLETE_X_TYPES`` was keyed only by k, so
        # a flip of REPRO_INTERN kept handing out types built under the
        # other mode, breaking identity-is-equality for everything
        # downstream.  The mode listener must drop the table on the flip.
        with interning(True):
            interned = complete_equality_x_types(4)
            assert complete_equality_x_types(4) is interned  # memo hit
            with interning(False):
                plain = complete_equality_x_types(4)
                assert plain is not interned
                assert [phi.pretty() for phi in plain] == [
                    phi.pretty() for phi in interned
                ]
            rebuilt = complete_equality_x_types(4)
            assert rebuilt is not plain  # ablated tuple dropped on exit

    def test_decode_cache_dropped_on_interning_flip(self):
        with interning(True):
            first = decode_partition_code(0, 3)
            assert decode_partition_code(0, 3) is first
            with interning(False):
                ablated = decode_partition_code(0, 3)
                assert ablated == first
                assert ablated is not first

    def test_clear_intern_tables_also_fires_the_listeners(self):
        with interning(True):
            before = complete_equality_x_types(3)
            clear_intern_tables()
            after = complete_equality_x_types(3)
            assert after is not before
            assert after == before


# --------------------------------------------------------------------- #
# antichain == explicit
# --------------------------------------------------------------------- #


def _fingerprint(types):
    """Every observable query of the analysis, in deterministic order."""
    automaton = types.automaton
    rows = []
    for state in sorted(automaton.states, key=repr):
        witness = types.witness_path(state)
        rows.append(
            (
                state,
                sorted(phi.pretty() for phi in types.types_at(state)),
                types.forced_equalities(state),
                types.is_reachable(state),
                None if witness is None else [repr(t) for t in witness],
            )
        )
    return (
        tuple(rows),
        tuple((repr(t), types.feasible(t)) for t in automaton.transitions),
        types.unreachable_states(),
        tuple(repr(t) for t in types.infeasible_transitions()),
    )


class TestAntichainMatchesExplicit:
    def test_knob_defaults_on(self):
        with _env(REPRO_ANTICHAIN=None):  # unset = the default
            assert antichain_enabled()
        with _env(REPRO_ANTICHAIN="0"):
            assert not antichain_enabled()
        with _env(REPRO_ANTICHAIN="off"):
            assert not antichain_enabled()

    def test_funnel_fingerprints_agree(self):
        automaton = _funnel(4)
        with _env(REPRO_ANTICHAIN="1"):
            symbolic = analyze_reachable_types(automaton)
        with _env(REPRO_ANTICHAIN="0"):
            explicit = analyze_reachable_types(automaton)
        assert isinstance(symbolic, SymbolicReachableTypes)
        assert not isinstance(explicit, SymbolicReachableTypes)
        assert _fingerprint(symbolic) == _fingerprint(explicit)

    @settings(
        deadline=None,
        max_examples=30,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(2, 5),
        n_states=st.integers(2, 4),
        n_transitions=st.integers(3, 8),
    )
    def test_random_automata_fingerprints_agree(
        self, seed, k, n_states, n_transitions
    ):
        automaton = random_register_automaton(
            random.Random(seed),
            k=k,
            n_states=n_states,
            n_transitions=n_transitions,
        )
        with _env(REPRO_ANTICHAIN="1"):
            symbolic = analyze_reachable_types(automaton)
        with _env(REPRO_ANTICHAIN="0"):
            explicit = analyze_reachable_types(automaton)
        assert _fingerprint(symbolic) == _fingerprint(explicit)

    def test_explicit_mode_keeps_the_old_register_cap(self):
        with _env(REPRO_ANTICHAIN="0"):
            outcome = reachable_types_outcome(_funnel(EXPLICIT_MAX_REGISTERS + 1))
            assert outcome.status is OutcomeStatus.DEGRADED
            assert outcome.stats["reason"] == "register-cap"
        with _env(REPRO_ANTICHAIN="1"):
            assert reachable_types_outcome(_funnel(EXPLICIT_MAX_REGISTERS + 1)).ok


# --------------------------------------------------------------------- #
# end-to-end above the old cap
# --------------------------------------------------------------------- #


class TestHighRegisterEndToEnd:
    @pytest.fixture(autouse=True)
    def _antichain_on(self):
        # Everything here lives above EXPLICIT_MAX_REGISTERS, so the
        # antichain domain must be pinned on even when the surrounding
        # suite runs the REPRO_ANTICHAIN=0 ablation pass.
        with _env(REPRO_ANTICHAIN="1"):
            yield

    def test_df_passes_fire_at_seven_registers(self):
        k = EXPLICIT_MAX_REGISTERS + 1
        report = analyze(
            _funnel(k), only=["dataflow-feasibility", "dataflow-constancy"]
        )
        by_code = {}
        for diagnostic in report.diagnostics:
            by_code.setdefault(diagnostic.code, []).append(diagnostic)
        assert sorted(by_code) == ["DF001", "DF002", "DF004"]
        [infeasible] = by_code["DF001"]
        assert "narrow" in infeasible.location and "dead" in infeasible.location
        assert infeasible.data["proof"]["refuted_types"]
        assert infeasible.data["witness_to_source"] is not None
        [unreachable] = by_code["DF002"]
        assert "dead" in unreachable.location
        [constancy] = by_code["DF004"]
        assert constancy.data["pairs"] == [
            [i, j] for i in range(1, k + 1) for j in range(i + 1, k + 1)
        ]

    def test_df_passes_fire_at_eight_registers(self):
        report = analyze(
            _funnel(8), only=["dataflow-feasibility", "dataflow-constancy"]
        )
        assert sorted({d.code for d in report.diagnostics}) == [
            "DF001",
            "DF002",
            "DF004",
        ]

    def test_ten_registers_solve_through_the_interval_frontier(self):
        # Bell(10) = 115975: materialising the explicit domain (or even
        # one witness frontier) is out of the question, so this exercises
        # exactly the queries that stay on the interval representation.
        k = 10
        outcome = reachable_types_outcome(_funnel(k))
        assert outcome.ok
        types = outcome.value
        assert isinstance(types, SymbolicReachableTypes)
        assert types.is_reachable("narrow")
        assert not types.is_reachable("dead")
        assert types.unreachable_states() == ("dead",)
        assert {(t.source, t.target) for t in types.infeasible_transitions()} == {
            ("narrow", "dead"),
            ("dead", "dead"),
        }
        assert types.forced_equalities("narrow") == tuple(
            (i, j) for i in range(1, k + 1) for j in range(i + 1, k + 1)
        )
        assert types.forced_equalities("init") == ()
        # The one reachable non-top state materialises to a single type.
        [narrow_type] = types.types_at("narrow")
        assert narrow_type.entails(eq(X(1), X(k)))

    def test_register_cap_is_now_twelve(self):
        assert MAX_REGISTERS >= 10
        assert reachable_types_outcome(_funnel(MAX_REGISTERS)).ok
        declined = reachable_types_outcome(_funnel(MAX_REGISTERS + 1))
        assert declined.status is OutcomeStatus.DEGRADED
        assert declined.stats["reason"] == "register-cap"


# --------------------------------------------------------------------- #
# knob parity at k = 8
# --------------------------------------------------------------------- #


def _complete_k8_extended():
    """An eight-register extended automaton whose guards are complete.

    Complete guards keep the emptiness pipeline off the ``completed()``
    blow-up (Bell(2k) splits per transition), and one outgoing guard per
    state keeps ``state_driven()`` a no-op -- so normalisation is the
    identity whether or not the pruner ran, and the two modes' witnesses
    can be compared byte for byte.  ``mid``'s only guard requires
    ``x1 != x2`` where all registers are provably equal, so ``mid`` is a
    reachable dead end and ``junk`` is dead -- pruned under
    ``REPRO_PRUNE=1``, walked under ``=0``; verdict and witness must not
    move.
    """
    k = 8
    chain = lambda terms: [eq(a, b) for a, b in zip(terms, terms[1:])]
    xs = [X(i) for i in range(1, k + 1)]
    ys = [Y(i) for i in range(1, k + 1)]
    all_equal = SigmaType(chain(xs + ys))
    x1_apart = SigmaType(chain(xs[1:] + ys) + [neq(X(1), X(2))])
    automaton = ra(
        k,
        {"q0", "q1", "mid", "junk"},
        {"q0"},
        {"q1", "junk"},
        [
            ("q0", all_equal, "q1"),
            ("q0", all_equal, "mid"),
            ("q1", all_equal, "q1"),
            ("mid", x1_apart, "junk"),
            ("junk", x1_apart, "junk"),
        ],
    )
    factor = concat(literal("q0"), literal("q0"))  # never matches
    return ExtendedAutomaton(automaton, [GlobalConstraint("neq", 1, 1, factor)])


def _emptiness_fingerprint(result):
    witness = result.witness
    return (
        result.empty,
        result.exact,
        result.max_prefix,
        result.max_cycle,
        None if witness is None else witness.trace,
    )


def _decide_k8(**overrides):
    with _env(**overrides):
        clear_value_caches()
        clear_intern_tables()
        try:
            return check_emptiness(
                _complete_k8_extended(), max_prefix=3, max_cycle=3
            )
        finally:
            shutdown_executor()


class TestKnobParityAtEightRegisters:
    def test_prune_parity(self):
        pruned = _decide_k8(REPRO_ANTICHAIN="1", REPRO_PRUNE="1")
        baseline = _decide_k8(REPRO_ANTICHAIN="1", REPRO_PRUNE="0")
        assert not pruned.empty
        assert _emptiness_fingerprint(pruned) == _emptiness_fingerprint(baseline)
        assert pruned.candidates_checked <= baseline.candidates_checked

    def test_worker_parity(self):
        serial = _decide_k8(REPRO_ANTICHAIN="1", REPRO_WORKERS="1")
        parallel = _decide_k8(REPRO_ANTICHAIN="1", REPRO_WORKERS="2")
        assert _emptiness_fingerprint(serial) == _emptiness_fingerprint(parallel)
