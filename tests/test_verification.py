"""Tests for LTL-FO verification (Theorem 12)."""

import pytest

from repro import (
    ExtendedAutomaton,
    GlobalConstraint,
    LtlFoSentence,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    eq,
    neq,
    run_satisfies,
    verify,
)
from repro.automata.regex import concat, literal, plus
from repro.logic.formulas import atom_eq, atom_rel
from repro.logic.terms import Var
from repro.ltl import Eventually, Globally, Not_, Prop
from repro.ltl.syntax import Or_

EMPTY = SigmaType()


def sentence_eq12(skeleton_factory):
    return LtlFoSentence(
        skeleton=skeleton_factory(Prop("eq12")),
        propositions={"eq12": atom_eq(X(1), X(2))},
    )


class TestRegisterAutomatonVerification:
    """Exact verification: no global constraints."""

    def test_invariant_holds(self, example1_automaton):
        # G(eq12 -> F eq12) is a tautology-like response property
        sentence = LtlFoSentence(
            skeleton=Globally(Or_(Not_(Prop("eq12")), Eventually(Prop("eq12")))),
            propositions={"eq12": atom_eq(X(1), X(2))},
        )
        result = verify(ExtendedAutomaton(example1_automaton, []), sentence)
        assert result.holds and result.exact

    def test_violated_invariant_with_counterexample(self, example1_automaton):
        sentence = sentence_eq12(Globally)
        result = verify(ExtendedAutomaton(example1_automaton, []), sentence)
        assert not result.holds
        assert result.exact
        out = result.counterexample.lasso_run()
        assert out is not None
        database, run = out
        # the concrete counterexample genuinely violates the property
        visible = run.project(2)
        assert not run_satisfies(sentence, visible, database)

    def test_eventuality_holds(self, example1_automaton):
        # delta1 forces x1 = x2 at position 0, so F eq12 holds
        sentence = sentence_eq12(Eventually)
        result = verify(ExtendedAutomaton(example1_automaton, []), sentence)
        assert result.holds and result.exact

    def test_global_variables(self, example1_automaton):
        """forall z: G (x2 = z -> F x1 = z): register 2 pins register 1's recurrence."""
        z = Var("z1")
        sentence = LtlFoSentence(
            skeleton=Globally(Or_(Not_(Prop("x2z")), Eventually(Prop("x1z")))),
            propositions={"x2z": atom_eq(X(2), z), "x1z": atom_eq(X(1), z)},
            global_vars=(z,),
        )
        result = verify(ExtendedAutomaton(example1_automaton, []), sentence)
        assert result.holds

    def test_global_variables_violation(self, example1_automaton):
        """forall z: G x1 != z is false (choose z = the first value)."""
        z = Var("z1")
        sentence = LtlFoSentence(
            skeleton=Globally(Not_(Prop("hit"))),
            propositions={"hit": atom_eq(X(1), z)},
            global_vars=(z,),
        )
        result = verify(ExtendedAutomaton(example1_automaton, []), sentence)
        assert not result.holds


class TestExtendedVerification:
    def test_all_distinct_never_repeats(self, example7_extended):
        """On the all-distinct automaton, G (x1 != y1) holds."""
        sentence = LtlFoSentence(
            skeleton=Globally(Prop("change")),
            propositions={"change": ~atom_eq(X(1), Y(1))},
        )
        result = verify(example7_extended, sentence, max_cycle=4)
        assert result.holds

    def test_plain_base_would_violate(self, example7_extended):
        """Without the constraint the same property fails (sanity contrast)."""
        sentence = LtlFoSentence(
            skeleton=Globally(Prop("change")),
            propositions={"change": ~atom_eq(X(1), Y(1))},
        )
        bare = ExtendedAutomaton(example7_extended.automaton, [])
        result = verify(bare, sentence)
        assert not result.holds and result.exact

    def test_database_property(self, example8_extended):
        """G P(x1) holds: every guard requires membership."""
        sentence = LtlFoSentence(
            skeleton=Globally(Prop("inP")),
            propositions={"inP": atom_rel("P", X(1))},
        )
        result = verify(example8_extended, sentence, max_cycle=4)
        assert result.holds


class TestRunSatisfies:
    def test_oracle_on_lasso(self, example1_automaton, example1_guards, empty_database):
        from repro import LassoRun

        d1, d2, d3 = example1_guards
        run = LassoRun(
            data=(("v", "v"), ("w", "v"), ("v", "v")),
            states=("q1", "q2", "q2"),
            guards=(d1, d2, d3),
            loop_start=0,
        )
        eventually_eq = sentence_eq12(Eventually)
        globally_eq = sentence_eq12(Globally)
        assert run_satisfies(eventually_eq, run, empty_database)
        assert not run_satisfies(globally_eq, run, empty_database)
