"""Property-based tests (hypothesis) on the core data structures."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Lasso, RegisterAutomaton, SigmaType, Signature, X, Y, eq, neq
from repro.automata.regex import parse_regex
from repro.foundations.errors import InconsistentTypeError
from repro.generators import random_equality_type, random_register_automaton
from repro.logic.closure import EqualityClosure
from repro.ltl import ltl_to_buchi
from repro.ltl.syntax import (
    And_,
    Eventually,
    Globally,
    Next,
    Not_,
    Or_,
    Prop,
    Release,
    Until,
    nnf,
    satisfies,
)

# --------------------------------------------------------------------- #
# lassos
# --------------------------------------------------------------------- #

letters = st.sampled_from("abc")
lassos = st.builds(
    Lasso,
    st.lists(letters, max_size=4),
    st.lists(letters, min_size=1, max_size=4),
)


@given(lassos, st.integers(min_value=0, max_value=30))
def test_lasso_canonicalisation_preserves_letters(lasso, position):
    """The canonical form denotes the same omega-word."""
    rebuilt = Lasso(lasso.prefix, lasso.period)
    assert rebuilt[position] == lasso[position]


@given(
    st.lists(letters, max_size=3),
    st.lists(letters, min_size=1, max_size=3),
    st.integers(min_value=1, max_value=3),
)
def test_lasso_unrolling_is_identity(prefix, period, times):
    base = Lasso(prefix, period)
    unrolled = Lasso(tuple(prefix) + tuple(period) * times, period)
    assert base == unrolled


@given(lassos, st.integers(min_value=0, max_value=6))
def test_lasso_shift_semantics(lasso, count):
    shifted = lasso.shift(count)
    for offset in range(8):
        assert shifted[offset] == lasso[count + offset]


# --------------------------------------------------------------------- #
# equality types
# --------------------------------------------------------------------- #


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=3))
def test_random_types_close_consistently(seed, k):
    """The closure of a satisfiable type never entails both l and not-l."""
    delta = random_equality_type(random.Random(seed), k)
    for literal in delta.literals:
        assert delta.entails(literal)
        assert not delta.entails(literal.negate())


@given(st.integers(min_value=0, max_value=10_000))
def test_completions_are_mutually_exclusive(seed):
    rng = random.Random(seed)
    delta = random_equality_type(rng, 2)
    variables = [X(1), X(2), Y(1), Y(2)]
    completions = list(delta.completions({}, variables))
    assert completions  # a satisfiable type always has a completion
    for index, one in enumerate(completions):
        assert one.is_complete({}, variables)
        for other in completions[index + 1 :]:
            merged = list(one.literals) + list(other.literals)
            assert not EqualityClosure(merged).is_consistent()


@given(st.integers(min_value=0, max_value=10_000))
def test_restriction_is_entailed(seed):
    rng = random.Random(seed)
    delta = random_equality_type(rng, 3)
    restricted = delta.restrict([X(1), X(2), Y(1), Y(2)])
    for literal in restricted.literals:
        assert delta.entails(literal)


# --------------------------------------------------------------------- #
# regular expressions / DFA
# --------------------------------------------------------------------- #

regex_texts = st.sampled_from(
    ["a", "ab", "a*", "(ab)*", "a|b", "(a|b)*a", "a(a|b)*b", "ab|ba", "a?b+"]
)
words = st.lists(st.sampled_from("ab"), max_size=6).map(tuple)


@given(regex_texts, words)
def test_dfa_agrees_with_nfa(text, word):
    expression = parse_regex(text)
    dfa = expression.to_dfa(alphabet="ab")
    assert dfa.accepts(word) == expression.to_nfa().accepts(word)


@given(regex_texts, words)
def test_complement_flips_membership(text, word):
    dfa = parse_regex(text).to_dfa(alphabet="ab")
    assert dfa.accepts(word) != dfa.complement().accepts(word)


@given(regex_texts, regex_texts, words)
def test_products_are_boolean(one, two, word):
    left = parse_regex(one).to_dfa(alphabet="ab")
    right = parse_regex(two).to_dfa(alphabet="ab")
    assert left.intersect(right).accepts(word) == (
        left.accepts(word) and right.accepts(word)
    )
    assert left.union(right).accepts(word) == (
        left.accepts(word) or right.accepts(word)
    )


@given(regex_texts, words)
def test_minimisation_preserves_language(text, word):
    dfa = parse_regex(text).to_dfa(alphabet="ab")
    assert dfa.minimize().accepts(word) == dfa.accepts(word)


# --------------------------------------------------------------------- #
# LTL translation vs the semantic oracle
# --------------------------------------------------------------------- #

p, q = Prop("p"), Prop("q")


def ltl_formulas(depth):
    leaf = st.sampled_from([p, q])
    return st.recursive(
        leaf,
        lambda inner: st.one_of(
            st.builds(Not_, inner),
            st.builds(And_, inner, inner),
            st.builds(Or_, inner, inner),
            st.builds(Next, inner),
            st.builds(Until, inner, inner),
            st.builds(Release, inner, inner),
            st.builds(Globally, inner),
            st.builds(Eventually, inner),
        ),
        max_leaves=depth,
    )


ap_letters = st.sampled_from(
    [frozenset(), frozenset({"p"}), frozenset({"q"}), frozenset({"p", "q"})]
)
ap_words = st.builds(
    Lasso,
    st.lists(ap_letters, max_size=2),
    st.lists(ap_letters, min_size=1, max_size=3),
)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ltl_formulas(4), ap_words)
def test_ltl_translation_matches_oracle(formula, word):
    automaton, props = ltl_to_buchi(formula)
    projected = word.map(lambda letter: frozenset(letter) & props)
    assert automaton.accepts(projected) == satisfies(word, formula)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ltl_formulas(3), ap_words)
def test_nnf_preserves_semantics(formula, word):
    assert satisfies(word, formula) == satisfies(word, nnf(formula))


# --------------------------------------------------------------------- #
# register automata: Control = SControl on random instances
# --------------------------------------------------------------------- #


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=1000), st.integers(min_value=1, max_value=2))
def test_scontrol_lassos_realizable(seed, k):
    """Every sampled symbolic lasso of a random automaton is realisable."""
    from repro.core.symbolic import control_equals_scontrol_on_samples

    automaton = random_register_automaton(
        random.Random(seed), k=k, n_states=2, n_transitions=3
    )
    assert control_equals_scontrol_on_samples(
        automaton, max_prefix=1, max_cycle=3, limit=6
    )


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=1000))
def test_completion_preserves_runs(seed):
    """Runs of the original automaton are runs of the completed one (as sets
    of register traces, prefix-level check)."""
    from repro import Database, generate_finite_runs
    from tests.helpers import canonical_trace

    automaton = random_register_automaton(
        random.Random(seed), k=1, n_states=2, n_transitions=3
    )
    completed = automaton.completed()
    database = Database(Signature.empty())
    pool = ("a", "b")
    original = {
        canonical_trace(run.data)
        for run in generate_finite_runs(automaton, database, 3, pool=pool)
    }
    completed_traces = {
        canonical_trace(run.data)
        for run in generate_finite_runs(completed, database, 3, pool=pool)
    }
    assert original == completed_traces
