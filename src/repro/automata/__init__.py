"""Finite and omega-automata: the regular-language substrate.

Every use of MSO in the paper is over omega-strings, where MSO definability
coincides with omega-regularity (Buchi's theorem, [7] in the paper), so the
library works directly with automata:

* :mod:`repro.automata.words` -- ultimately periodic omega-words (lassos),
  the finite representation of the infinite runs and traces,
* :mod:`repro.automata.regex` -- regular-expression combinators (and a small
  parser) over arbitrary hashable alphabets; the paper's global constraints
  ``e=_{ij}`` / ``e!=_{ij}`` are such regexes over the state set Q,
* :mod:`repro.automata.nfa` / :mod:`repro.automata.dfa` -- classical
  finite-word automata with determinisation, minimisation, products,
  complement and equivalence checking,
* :mod:`repro.automata.buchi` -- nondeterministic Buchi automata with lasso
  membership, emptiness (with lasso witness extraction), intersection,
  union, and degeneralisation of generalized Buchi acceptance.
"""

from repro.automata.buchi import BuchiAutomaton, GeneralizedBuchiAutomaton
from repro.automata.dfa import Dfa
from repro.automata.nfa import Nfa
from repro.automata.regex import (
    Concat,
    EmptyLanguage,
    Epsilon,
    Regex,
    Star,
    Symbol,
    Union,
    concat,
    literal,
    parse_regex,
    plus,
    star,
    union,
)
from repro.automata.words import Lasso

__all__ = [
    "Lasso",
    "Regex",
    "EmptyLanguage",
    "Epsilon",
    "Symbol",
    "Concat",
    "Union",
    "Star",
    "literal",
    "concat",
    "union",
    "star",
    "plus",
    "parse_regex",
    "Nfa",
    "Dfa",
    "BuchiAutomaton",
    "GeneralizedBuchiAutomaton",
]
