"""Nondeterministic Buchi automata over arbitrary alphabets.

The paper's trace languages (``SControl(A)``, ``Control(A)``, ``State(A)``)
are omega-languages; this module supplies the omega-automata toolbox used to
manipulate them: lasso membership, emptiness with lasso witness extraction,
intersection (the flagged product), union, homomorphic images, and
degeneralisation of generalized Buchi acceptance (needed by the LTL
translation).
"""

from typing import Callable, Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

from repro.automata.words import Lasso
from repro.foundations.errors import SpecificationError
from repro.foundations.resilience import current_deadline

State = Hashable


class BuchiAutomaton:
    """A nondeterministic Buchi automaton.

    ``transitions[state][symbol]`` is the set of successors.  A run is
    accepting when it visits an accepting state infinitely often.
    """

    def __init__(
        self,
        transitions: Dict[State, Dict[object, Iterable[State]]],
        initial: Iterable[State],
        accepting: Iterable[State],
    ):
        self._transitions: Dict[State, Dict[object, FrozenSet[State]]] = {
            state: {symbol: frozenset(targets) for symbol, targets in moves.items()}
            for state, moves in transitions.items()
        }
        self._initial = frozenset(initial)
        self._accepting = frozenset(accepting)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def initial(self) -> FrozenSet[State]:
        return self._initial

    @property
    def accepting(self) -> FrozenSet[State]:
        return self._accepting

    def states(self) -> FrozenSet[State]:
        found: Set[State] = set(self._initial) | set(self._accepting)
        for state, moves in self._transitions.items():
            found.add(state)
            for targets in moves.values():
                found.update(targets)
        return frozenset(found)

    def symbols(self) -> FrozenSet:
        found = set()
        for moves in self._transitions.values():
            found.update(moves.keys())
        return frozenset(found)

    def successors(self, state: State, symbol) -> FrozenSet[State]:
        return self._transitions.get(state, {}).get(symbol, frozenset())

    def size(self) -> int:
        return len(self.states())

    # ------------------------------------------------------------------ #
    # lasso membership
    # ------------------------------------------------------------------ #

    def accepts(self, word: Lasso) -> bool:
        """Whether the automaton accepts the ultimately periodic *word*.

        Standard algorithm: after consuming the prefix we ask for an infinite
        accepting continuation over ``period^omega``; that exists iff, in the
        graph of (state, period-offset) nodes, some node carrying an
        accepting state is reachable from the start set and lies on a cycle.
        """
        current: Set[State] = set(self._initial)
        for symbol in word.prefix:
            nxt: Set[State] = set()
            for state in current:
                nxt.update(self.successors(state, symbol))
            current = nxt
            if not current:
                return False
        period = word.period

        def node_successors(node: Tuple[State, int]) -> Iterable[Tuple[State, int]]:
            state, offset = node
            symbol = period[offset]
            nxt_offset = (offset + 1) % len(period)
            for target in self.successors(state, symbol):
                yield (target, nxt_offset)

        start_nodes = {(state, 0) for state in current}
        reachable: Set[Tuple[State, int]] = set(start_nodes)
        frontier = list(start_nodes)
        while frontier:
            node = frontier.pop()
            for target in node_successors(node):
                if target not in reachable:
                    reachable.add(target)
                    frontier.append(target)
        accepting_nodes = [n for n in reachable if n[0] in self._accepting]
        for anchor in accepting_nodes:
            # is anchor on a cycle? BFS from its successors back to it
            seen: Set[Tuple[State, int]] = set()
            stack = list(node_successors(anchor))
            while stack:
                node = stack.pop()
                if node == anchor:
                    return True
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(node_successors(node))
        return False

    # ------------------------------------------------------------------ #
    # emptiness with witness
    # ------------------------------------------------------------------ #

    def find_accepted_lasso(self) -> Optional[Lasso]:
        """A lasso accepted by the automaton, or ``None`` if the language is empty.

        Finds a reachable accepting state lying on a cycle, returning the
        access path as the prefix and the cycle as the period.
        """
        # BFS forward from initial states, remembering parents for paths.
        # Seeds are sorted by repr, matching the edge ordering below: the
        # witness lasso is then independent of the hash order of the
        # initial frozenset (ORD001), which the code-based emptiness kernel
        # relies on to replay this search over renamed states.
        seeds = sorted(self._initial, key=repr)
        parent: Dict[State, Tuple[Optional[State], object]] = {
            state: (None, None) for state in seeds
        }
        order: List[State] = list(seeds)
        queue = list(seeds)
        while queue:
            state = queue.pop(0)
            for symbol, targets in sorted(
                self._transitions.get(state, {}).items(), key=lambda kv: repr(kv[0])
            ):
                for target in sorted(targets, key=repr):
                    if target not in parent:
                        parent[target] = (state, symbol)
                        order.append(target)
                        queue.append(target)

        def path_to(state: State) -> Tuple:
            word: List = []
            node = state
            while parent[node][0] is not None:
                node, symbol = parent[node]
                word.append(symbol)
            return tuple(reversed(word))

        for anchor in order:
            if anchor not in self._accepting:
                continue
            cycle = self._cycle_through(anchor)
            if cycle is not None:
                return Lasso(path_to(anchor), cycle)
        return None

    def _cycle_through(self, anchor: State) -> Optional[Tuple]:
        """A non-empty symbol word labelling a cycle anchor -> anchor."""
        local_parent: Dict[State, Tuple[State, object]] = {}
        queue: List[State] = []
        for symbol, targets in sorted(
            self._transitions.get(anchor, {}).items(), key=lambda kv: repr(kv[0])
        ):
            for target in sorted(targets, key=repr):
                if target == anchor:
                    return (symbol,)
                if target not in local_parent:
                    local_parent[target] = (anchor, symbol)
                    queue.append(target)
        while queue:
            state = queue.pop(0)
            for symbol, targets in sorted(
                self._transitions.get(state, {}).items(), key=lambda kv: repr(kv[0])
            ):
                for target in sorted(targets, key=repr):
                    if target == anchor:
                        word: List = [symbol]
                        node = state
                        while node != anchor:
                            node, back_symbol = local_parent[node]
                            word.append(back_symbol)
                        return tuple(reversed(word))
                    if target not in local_parent:
                        local_parent[target] = (state, symbol)
                        queue.append(target)
        return None

    def is_empty(self) -> bool:
        """Whether the accepted omega-language is empty."""
        return self.find_accepted_lasso() is None

    def iter_accepted_lassos(
        self, max_cycle_length: int, max_prefix_length: int, narrow=None, deadline=None
    ):
        """Enumerate accepted lassos with bounded prefix/period length.

        Used by search procedures that must inspect several witnesses (e.g.
        the realisability filter of the extended-automaton emptiness check).
        The enumeration is exhaustive over the bound: every accepted lasso
        with ``len(prefix) <= max_prefix_length`` and ``len(period) <=
        max_cycle_length`` appears (possibly in non-canonical shape).

        *narrow* is an optional prefix filter (e.g.
        :class:`repro.core.pruning.ConstraintNarrowing`) exposing
        ``empty()`` and ``step(filter_state, symbol) -> filter_state | None``.
        Each path threads its filter state through every appended symbol; a
        ``None`` prunes the path and its entire extension subtree.  The
        filter only ever *skips* paths -- surviving lassos are yielded in
        exactly the order the unfiltered enumeration would yield them.

        *deadline* is an optional
        :class:`~repro.foundations.resilience.Deadline`; when omitted the
        thread's ambient deadline (if any) applies.  The enumeration
        checks it at round and anchor boundaries -- the exponential
        fan-out happens between those points, so the checks add nothing
        measurable -- and expiry raises
        :class:`~repro.foundations.resilience.DeadlineExceeded` for the
        public entry point to convert into an honest outcome.
        """
        # Enumerate simple paths from initial states up to the prefix bound,
        # then simple cycles through accepting states up to the cycle bound.
        # The sorted adjacency of a state is loop-invariant; computing it
        # once per state (instead of at every path extension touching the
        # state) keeps the enumeration order identical while removing the
        # dominant repeated-sort cost.
        adjacency: Dict[State, Tuple] = {}

        def sorted_edges(state):
            found = adjacency.get(state)
            if found is None:
                found = adjacency[state] = tuple(
                    (symbol, tuple(sorted(targets, key=repr)))
                    for symbol, targets in sorted(
                        self._transitions.get(state, {}).items(),
                        key=lambda kv: repr(kv[0]),
                    )
                )
            return found

        def extend_paths(paths):
            for states_path, symbols_path, filter_state in paths:
                for symbol, targets in sorted_edges(states_path[-1]):
                    if narrow is None:
                        next_filter = None
                    else:
                        next_filter = narrow.step(filter_state, symbol)
                        if next_filter is None:
                            continue
                    for target in targets:
                        yield (
                            states_path + (target,),
                            symbols_path + (symbol,),
                            next_filter,
                        )

        def checkpoint(site: str) -> None:
            active = deadline if deadline is not None else current_deadline()
            if active is not None:
                active.check(site)

        seed_filter = narrow.empty() if narrow is not None else None
        prefixes = [
            ((state,), (), seed_filter)
            for state in sorted(self._initial, key=repr)
        ]
        all_prefixes = list(prefixes)
        for _ in range(max_prefix_length):
            checkpoint("buchi.prefix_round")
            prefixes = list(extend_paths(prefixes))
            all_prefixes.extend(prefixes)
        for states_path, symbols_path, filter_state in all_prefixes:
            anchor = states_path[-1]
            if anchor not in self._accepting:
                continue
            checkpoint("buchi.anchor")
            # enumerate cycles anchor -> anchor of bounded length
            cycles = [((anchor,), (), filter_state)]
            for _ in range(max_cycle_length):
                checkpoint("buchi.cycle_round")
                cycles = list(extend_paths(cycles))
                for cycle_states, cycle_symbols, _cycle_filter in cycles:
                    if cycle_states[-1] == anchor and cycle_symbols:
                        yield Lasso(symbols_path, cycle_symbols)

    # ------------------------------------------------------------------ #
    # boolean operations
    # ------------------------------------------------------------------ #

    def intersect(self, other: "BuchiAutomaton") -> "BuchiAutomaton":
        """The flagged product automaton for the intersection.

        States ``(q1, q2, phase)``; phase 1 waits for ``q1`` accepting,
        phase 2 waits for ``q2`` accepting; acceptance = phase-1 states with
        ``q1`` accepting (Baier-Katoen construction).
        """
        initial = {(q1, q2, 1) for q1 in self._initial for q2 in other._initial}
        transitions: Dict[State, Dict[object, Set[State]]] = {}
        worklist = list(initial)
        seen: Set[State] = set(initial)
        while worklist:
            q1, q2, phase = worklist.pop()
            moves1 = self._transitions.get(q1, {})
            moves2 = other._transitions.get(q2, {})
            for symbol in sorted(set(moves1) & set(moves2), key=repr):
                for t1 in sorted(moves1[symbol], key=repr):
                    for t2 in sorted(moves2[symbol], key=repr):
                        if phase == 1:
                            nxt_phase = 2 if q1 in self._accepting else 1
                        else:
                            nxt_phase = 1 if q2 in other._accepting else 2
                        target = (t1, t2, nxt_phase)
                        transitions.setdefault((q1, q2, phase), {}).setdefault(
                            symbol, set()
                        ).add(target)
                        if target not in seen:
                            seen.add(target)
                            worklist.append(target)
        accepting = {
            (q1, q2, phase)
            for (q1, q2, phase) in seen
            if phase == 1 and q1 in self._accepting
        }
        return BuchiAutomaton(transitions, initial, accepting)

    def union(self, other: "BuchiAutomaton") -> "BuchiAutomaton":
        """Disjoint union (tags states with 0/1)."""
        transitions: Dict[State, Dict[object, Set[State]]] = {}
        for tag, automaton in ((0, self), (1, other)):
            for state, moves in automaton._transitions.items():
                for symbol, targets in moves.items():
                    transitions.setdefault((tag, state), {}).setdefault(symbol, set()).update(
                        (tag, t) for t in targets
                    )
        initial = {(0, q) for q in self._initial} | {(1, q) for q in other._initial}
        accepting = {(0, q) for q in self._accepting} | {(1, q) for q in other._accepting}
        return BuchiAutomaton(transitions, initial, accepting)

    def map_symbols(self, fn: Callable) -> "BuchiAutomaton":
        """The homomorphic image: relabel each symbol by ``fn`` (may merge)."""
        transitions: Dict[State, Dict[object, Set[State]]] = {}
        for state, moves in self._transitions.items():
            for symbol, targets in moves.items():
                transitions.setdefault(state, {}).setdefault(fn(symbol), set()).update(targets)
        return BuchiAutomaton(transitions, self._initial, self._accepting)

    def relabel_states(self) -> "BuchiAutomaton":
        """Replace states by dense integers (cosmetic, keeps products small)."""
        index: Dict[State, int] = {}

        def number(state: State) -> int:
            if state not in index:
                index[state] = len(index)
            return index[state]

        transitions: Dict[State, Dict[object, Set[State]]] = {}
        for state in sorted(self.states(), key=repr):
            number(state)
        for state, moves in self._transitions.items():
            for symbol, targets in moves.items():
                transitions.setdefault(number(state), {}).setdefault(symbol, set()).update(
                    number(t) for t in targets
                )
        return BuchiAutomaton(
            transitions,
            {number(q) for q in self._initial},
            {number(q) for q in self._accepting},
        )

    def __repr__(self) -> str:
        return "BuchiAutomaton(%d states, %d accepting)" % (
            len(self.states()),
            len(self._accepting),
        )


class GeneralizedBuchiAutomaton:
    """A Buchi automaton with several acceptance sets (all must recur).

    Produced by the LTL tableau translation; convert to a plain Buchi
    automaton with :meth:`degeneralize` (the counter construction).
    """

    def __init__(
        self,
        transitions: Dict[State, Dict[object, Iterable[State]]],
        initial: Iterable[State],
        acceptance_sets: List[Iterable[State]],
    ):
        self._transitions = {
            state: {symbol: frozenset(targets) for symbol, targets in moves.items()}
            for state, moves in transitions.items()
        }
        self._initial = frozenset(initial)
        self._acceptance_sets = [frozenset(fs) for fs in acceptance_sets]

    def degeneralize(self) -> BuchiAutomaton:
        """The counter construction: track which acceptance set is awaited."""
        sets = self._acceptance_sets
        if not sets:
            # Every infinite run is accepting: one trivial acceptance set of
            # all states makes each visit count.
            all_states: Set[State] = set(self._initial)
            for state, moves in self._transitions.items():
                all_states.add(state)
                for targets in moves.values():
                    all_states.update(targets)
            return BuchiAutomaton(self._transitions, self._initial, all_states)
        count = len(sets)
        transitions: Dict[State, Dict[object, Set[State]]] = {}
        for state, moves in self._transitions.items():
            for level in range(count):
                nxt_level = (level + 1) % count if state in sets[level] else level
                for symbol, targets in moves.items():
                    transitions.setdefault((state, level), {}).setdefault(
                        symbol, set()
                    ).update((t, nxt_level) for t in targets)
        initial = {(q, 0) for q in self._initial}
        accepting = {(q, 0) for q in sets[0]}
        return BuchiAutomaton(transitions, initial, accepting)
