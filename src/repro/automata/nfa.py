"""Nondeterministic finite automata with epsilon transitions.

Built by the Thompson construction from regular expressions; determinised by
the subset construction.  States are opaque integers allocated internally;
symbols are arbitrary hashable objects.
"""

from typing import Dict, FrozenSet, Iterable, Sequence, Set, Tuple

#: Sentinel for epsilon transitions.
EPSILON = object()


class Nfa:
    """An NFA with epsilon moves.

    Parameters
    ----------
    transitions:
        ``transitions[state][symbol]`` is the set of successor states;
        the symbol may be :data:`EPSILON`.
    initial:
        Set of initial states.
    accepting:
        Set of accepting states.
    """

    def __init__(
        self,
        transitions: Dict[int, Dict[object, Set[int]]],
        initial: Iterable[int],
        accepting: Iterable[int],
    ):
        self._transitions = {
            state: {symbol: frozenset(targets) for symbol, targets in moves.items()}
            for state, moves in transitions.items()
        }
        self._initial = frozenset(initial)
        self._accepting = frozenset(accepting)

    @property
    def initial(self) -> FrozenSet[int]:
        return self._initial

    @property
    def accepting(self) -> FrozenSet[int]:
        return self._accepting

    def states(self) -> FrozenSet[int]:
        found = set(self._initial) | set(self._accepting) | set(self._transitions)
        for moves in self._transitions.values():
            for targets in moves.values():
                found.update(targets)
        return frozenset(found)

    def symbols(self) -> FrozenSet:
        found = set()
        for moves in self._transitions.values():
            for symbol in moves:
                if symbol is not EPSILON:
                    found.add(symbol)
        return frozenset(found)

    # ------------------------------------------------------------------ #
    # semantics
    # ------------------------------------------------------------------ #

    def epsilon_closure(self, states: Iterable[int]) -> FrozenSet[int]:
        """All states reachable via epsilon moves from *states*."""
        closure = set(states)
        frontier = list(closure)
        while frontier:
            state = frontier.pop()
            for target in self._transitions.get(state, {}).get(EPSILON, ()):
                if target not in closure:
                    closure.add(target)
                    frontier.append(target)
        return frozenset(closure)

    def step(self, states: Iterable[int], symbol) -> FrozenSet[int]:
        """One symbol move (with epsilon closure applied afterwards)."""
        moved: Set[int] = set()
        for state in states:
            moved.update(self._transitions.get(state, {}).get(symbol, ()))
        return self.epsilon_closure(moved)

    def accepts(self, word: Sequence) -> bool:
        """Whether the NFA accepts the finite *word*."""
        current = self.epsilon_closure(self._initial)
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return False
        return bool(current & self._accepting)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_regex(expression) -> "Nfa":
        """Thompson construction: one initial, one accepting state."""
        from repro.automata.regex import Concat, EmptyLanguage, Epsilon, Star, Symbol, Union

        counter = [0]

        def fresh() -> int:
            counter[0] += 1
            return counter[0] - 1

        transitions: Dict[int, Dict[object, Set[int]]] = {}

        def add(source: int, symbol, target: int) -> None:
            transitions.setdefault(source, {}).setdefault(symbol, set()).add(target)

        def build(expr) -> Tuple[int, int]:
            if isinstance(expr, EmptyLanguage):
                return fresh(), fresh()
            if isinstance(expr, Epsilon):
                start, end = fresh(), fresh()
                add(start, EPSILON, end)
                return start, end
            if isinstance(expr, Symbol):
                start, end = fresh(), fresh()
                add(start, expr.symbol, end)
                return start, end
            if isinstance(expr, Concat):
                start, end = build(expr.parts[0])
                for part in expr.parts[1:]:
                    nxt_start, nxt_end = build(part)
                    add(end, EPSILON, nxt_start)
                    end = nxt_end
                return start, end
            if isinstance(expr, Union):
                start, end = fresh(), fresh()
                for branch in expr.branches:
                    b_start, b_end = build(branch)
                    add(start, EPSILON, b_start)
                    add(b_end, EPSILON, end)
                return start, end
            if isinstance(expr, Star):
                start, end = fresh(), fresh()
                inner_start, inner_end = build(expr.operand)
                add(start, EPSILON, inner_start)
                add(start, EPSILON, end)
                add(inner_end, EPSILON, inner_start)
                add(inner_end, EPSILON, end)
                return start, end
            raise TypeError("unknown regex node %r" % (expr,))

        start, end = build(expression)
        return Nfa(transitions, {start}, {end})

    def determinize(self, alphabet: Iterable = None) -> "Dfa":
        """Subset construction over *alphabet* (defaults to used symbols)."""
        from repro.automata.dfa import Dfa

        symbols = set(alphabet) if alphabet is not None else set(self.symbols())
        start = self.epsilon_closure(self._initial)
        index: Dict[FrozenSet[int], int] = {start: 0}
        worklist = [start]
        transitions: Dict[Tuple[int, object], int] = {}
        accepting: Set[int] = set()
        if start & self._accepting:
            accepting.add(0)
        while worklist:
            subset = worklist.pop()
            source = index[subset]
            for symbol in symbols:
                target_subset = self.step(subset, symbol)
                if target_subset not in index:
                    index[target_subset] = len(index)
                    worklist.append(target_subset)
                    if target_subset & self._accepting:
                        accepting.add(index[target_subset])
                transitions[(source, symbol)] = index[target_subset]
        return Dfa(
            states=frozenset(index.values()),
            alphabet=frozenset(symbols),
            transitions=transitions,
            initial=0,
            accepting=frozenset(accepting),
        )
