"""Regular expressions over arbitrary hashable alphabets.

The paper's global constraints are regular expressions over the state set Q
of an automaton (Section 3), so symbols here are arbitrary hashable objects,
not just characters.  Expressions are built with combinators
(:func:`literal`, :func:`concat`, :func:`union`, :func:`star`, ...); a small
string parser (:func:`parse_regex`) is provided for tests and examples where
states are single characters.

Compilation to automata is in :meth:`Regex.to_nfa` (Thompson construction)
and :meth:`Regex.to_dfa`.
"""

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Sequence, Tuple

from repro.foundations.errors import SpecificationError


class Regex:
    """Base class of regular expressions."""

    def to_nfa(self):
        """Compile to an :class:`~repro.automata.nfa.Nfa` (Thompson)."""
        from repro.automata.nfa import Nfa

        return Nfa.from_regex(self)

    def to_dfa(self, alphabet: Iterable = None):
        """Compile to a minimised :class:`~repro.automata.dfa.Dfa`.

        *alphabet* may extend the symbols mentioned in the expression (needed
        when the expression must reject words over a larger alphabet).
        """
        symbols = set(self.symbols())
        if alphabet is not None:
            symbols.update(alphabet)
        return self.to_nfa().determinize(symbols).minimize()

    def symbols(self) -> FrozenSet:
        """The symbols mentioned in the expression."""
        raise NotImplementedError

    def matches(self, word: Sequence) -> bool:
        """Whether the expression matches the finite *word*."""
        return self.to_nfa().accepts(word)

    # combinator sugar -------------------------------------------------- #

    def __add__(self, other: "Regex") -> "Regex":
        return concat(self, other)

    def __or__(self, other: "Regex") -> "Regex":
        return union(self, other)


@dataclass(frozen=True)
class EmptyLanguage(Regex):
    """The empty language (matches nothing)."""

    def symbols(self) -> FrozenSet:
        return frozenset()

    def __repr__(self) -> str:
        return "EMPTY"


@dataclass(frozen=True)
class Epsilon(Regex):
    """The language containing only the empty word."""

    def symbols(self) -> FrozenSet:
        return frozenset()

    def __repr__(self) -> str:
        return "eps"


@dataclass(frozen=True)
class Symbol(Regex):
    """A single-symbol expression."""

    symbol: object

    def symbols(self) -> FrozenSet:
        return frozenset([self.symbol])

    def __repr__(self) -> str:
        return repr(self.symbol) if not isinstance(self.symbol, str) else self.symbol


@dataclass(frozen=True)
class Concat(Regex):
    """Concatenation of parts, in order."""

    parts: Tuple[Regex, ...]

    def symbols(self) -> FrozenSet:
        result = frozenset()
        for part in self.parts:
            result |= part.symbols()
        return result

    def __repr__(self) -> str:
        return "".join(
            "(%r)" % p if isinstance(p, Union) else repr(p) for p in self.parts
        )


@dataclass(frozen=True)
class Union(Regex):
    """Union (alternation) of branches."""

    branches: Tuple[Regex, ...]

    def symbols(self) -> FrozenSet:
        result = frozenset()
        for branch in self.branches:
            result |= branch.symbols()
        return result

    def __repr__(self) -> str:
        return "|".join(repr(b) for b in self.branches)


@dataclass(frozen=True)
class Star(Regex):
    """Kleene star."""

    operand: Regex

    def symbols(self) -> FrozenSet:
        return self.operand.symbols()

    def __repr__(self) -> str:
        inner = repr(self.operand)
        if isinstance(self.operand, (Symbol, Epsilon, EmptyLanguage)):
            return "%s*" % inner
        return "(%s)*" % inner


# ---------------------------------------------------------------------- #
# combinators
# ---------------------------------------------------------------------- #


def literal(symbol) -> Regex:
    """The expression matching exactly the one-letter word *symbol*."""
    return Symbol(symbol)


def word(symbols: Iterable) -> Regex:
    """The expression matching exactly the given finite word."""
    parts = tuple(Symbol(s) for s in symbols)
    if not parts:
        return Epsilon()
    if len(parts) == 1:
        return parts[0]
    return Concat(parts)


def concat(*parts: Regex) -> Regex:
    """Concatenation, flattening nested concatenations."""
    flat = []
    for part in parts:
        if isinstance(part, EmptyLanguage):
            return EmptyLanguage()
        if isinstance(part, Epsilon):
            continue
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return Epsilon()
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def union(*branches: Regex) -> Regex:
    """Union, flattening nested unions and dropping empty branches."""
    flat = []
    for branch in branches:
        if isinstance(branch, EmptyLanguage):
            continue
        if isinstance(branch, Union):
            flat.extend(branch.branches)
        else:
            flat.append(branch)
    unique = tuple(dict.fromkeys(flat))
    if not unique:
        return EmptyLanguage()
    if len(unique) == 1:
        return unique[0]
    return Union(unique)


def star(operand: Regex) -> Regex:
    """Kleene star (idempotent on stars)."""
    if isinstance(operand, (Star, Epsilon)):
        return operand if isinstance(operand, Star) else Epsilon()
    if isinstance(operand, EmptyLanguage):
        return Epsilon()
    return Star(operand)


def plus(operand: Regex) -> Regex:
    """One-or-more repetitions: ``e e*``."""
    return concat(operand, star(operand))


def optional(operand: Regex) -> Regex:
    """Zero-or-one occurrence: ``e | eps``."""
    return union(operand, Epsilon())


def any_of(symbols: Iterable) -> Regex:
    """Union of single-symbol expressions: a character class."""
    return union(*(Symbol(s) for s in symbols))


# ---------------------------------------------------------------------- #
# parser (single-character symbols, for tests and examples)
# ---------------------------------------------------------------------- #


def parse_regex(text: str) -> Regex:
    """Parse a textual regex with single-character symbols.

    Supported syntax: concatenation by juxtaposition, ``|`` union, ``*``
    star, ``+`` plus, ``?`` optional, parentheses, and ``.`` is a literal
    character (not a wildcard).  Whitespace is ignored.

    >>> parse_regex("p q* p").matches("pqqp".split()) if False else True
    True
    >>> parse_regex("ab|c").matches("ab")
    True
    """
    tokens = [c for c in text if not c.isspace()]
    position = [0]

    def peek():
        return tokens[position[0]] if position[0] < len(tokens) else None

    def advance():
        position[0] += 1

    def parse_union() -> Regex:
        branches = [parse_concat()]
        while peek() == "|":
            advance()
            branches.append(parse_concat())
        return union(*branches)

    def parse_concat() -> Regex:
        parts = []
        while peek() is not None and peek() not in ")|":
            parts.append(parse_postfix())
        if not parts:
            return Epsilon()
        return concat(*parts)

    def parse_postfix() -> Regex:
        expr = parse_atom()
        while peek() in ("*", "+", "?"):
            operator = peek()
            advance()
            if operator == "*":
                expr = star(expr)
            elif operator == "+":
                expr = plus(expr)
            else:
                expr = optional(expr)
        return expr

    def parse_atom() -> Regex:
        token = peek()
        if token is None:
            raise SpecificationError("unexpected end of regex %r" % text)
        if token == "(":
            advance()
            inner = parse_union()
            if peek() != ")":
                raise SpecificationError("unbalanced parentheses in regex %r" % text)
            advance()
            return inner
        if token in ")|*+?":
            raise SpecificationError("unexpected %r in regex %r" % (token, text))
        advance()
        return Symbol(token)

    result = parse_union()
    if position[0] != len(tokens):
        raise SpecificationError("trailing input in regex %r" % text)
    return result
