"""Ultimately periodic omega-words ("lassos").

Infinite words of the form ``u . v^omega`` with finite ``u`` (the prefix) and
non-empty finite ``v`` (the period) are the finite certificates of the
omega-regular world: every non-empty omega-regular language contains one, and
all decision procedures in this library return their witnesses in this form.

A :class:`Lasso` is immutable and normalised to a canonical form (primitive
period, shortest prefix), so two lassos denote the same omega-word exactly
when they compare equal.
"""

from typing import Callable, Hashable, Iterator, Sequence, Tuple, TypeVar

Symbol = TypeVar("Symbol", bound=Hashable)


def _primitive_root(seq: Tuple) -> Tuple:
    """The shortest word whose repetition yields *seq*."""
    n = len(seq)
    for length in range(1, n + 1):
        if n % length == 0 and seq == seq[:length] * (n // length):
            return seq[:length]
    return seq


class Lasso:
    """The omega-word ``prefix . period^omega``.

    Examples
    --------
    >>> w = Lasso(("a",), ("b", "a", "b", "a"))
    >>> w == Lasso(("a", "b"), ("a", "b"))
    True
    >>> w[0], w[1], w[100]
    ('a', 'b', 'a')
    """

    __slots__ = ("_prefix", "_period")

    def __init__(self, prefix: Sequence, period: Sequence):
        prefix = tuple(prefix)
        period = tuple(period)
        if not period:
            raise ValueError("the period of a lasso must be non-empty")
        period = _primitive_root(period)
        # Shorten the prefix: while its last letter equals the period's last
        # letter, rotate the period backwards and absorb the letter.
        while prefix and prefix[-1] == period[-1]:
            prefix = prefix[:-1]
            period = (period[-1],) + period[:-1]
        self._prefix = prefix
        self._period = period

    @property
    def prefix(self) -> Tuple:
        return self._prefix

    @property
    def period(self) -> Tuple:
        return self._period

    def __getitem__(self, position: int):
        """The letter at *position* (0-based)."""
        if position < 0:
            raise IndexError("omega-words have no negative positions")
        if position < len(self._prefix):
            return self._prefix[position]
        offset = position - len(self._prefix)
        return self._period[offset % len(self._period)]

    def factor(self, start: int, end: int) -> Tuple:
        """The finite factor at positions ``start .. end`` inclusive."""
        if end < start:
            return ()
        return tuple(self[i] for i in range(start, end + 1))

    def prefix_word(self, length: int) -> Tuple:
        """The first *length* letters."""
        return tuple(self[i] for i in range(length))

    def letters(self) -> frozenset:
        """The set of letters occurring in the word."""
        return frozenset(self._prefix) | frozenset(self._period)

    def recurring_letters(self) -> frozenset:
        """The letters occurring infinitely often (those of the period)."""
        return frozenset(self._period)

    def map(self, fn: Callable) -> "Lasso":
        """Apply a letter-to-letter function (a homomorphic image).

        The paper repeatedly recovers traces as homomorphic images (e.g.
        state traces from control traces); this is the lasso-level
        realisation.
        """
        return Lasso(tuple(fn(a) for a in self._prefix), tuple(fn(a) for a in self._period))

    def shift(self, count: int) -> "Lasso":
        """The word with the first *count* letters removed."""
        if count <= len(self._prefix):
            return Lasso(self._prefix[count:], self._period)
        offset = (count - len(self._prefix)) % len(self._period)
        return Lasso((), self._period[offset:] + self._period[:offset])

    def unroll(self, times: int) -> "Lasso":
        """An equal word whose explicit prefix covers *times* extra periods."""
        return Lasso(self._prefix + self._period * times, self._period)

    def iterate(self) -> Iterator:
        """Iterate over the letters forever."""
        for letter in self._prefix:
            yield letter
        while True:
            for letter in self._period:
                yield letter

    def spine_length(self) -> int:
        """Length of prefix plus one period: positions covering all behaviour."""
        return len(self._prefix) + len(self._period)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Lasso):
            return NotImplemented
        return self._prefix == other._prefix and self._period == other._period

    def __hash__(self) -> int:
        return hash((self._prefix, self._period))

    def __repr__(self) -> str:
        show = lambda seq: "".join(str(s) for s in seq) if all(
            isinstance(s, str) and len(s) == 1 for s in seq
        ) else repr(seq)
        return "Lasso(%s; (%s)^w)" % (show(self._prefix), show(self._period))
