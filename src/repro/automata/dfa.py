"""Deterministic finite automata.

Total DFAs over an explicit alphabet, with the classical toolbox: product
constructions, complement, Moore minimisation, emptiness with witness, and
language equivalence.  The projection machinery of Sections 4-6 manipulates
the constraint regexes through these operations.
"""

from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.foundations.errors import SpecificationError

State = Hashable


class Dfa:
    """A complete DFA.

    Parameters
    ----------
    states / alphabet / transitions / initial / accepting:
        ``transitions[(state, symbol)]`` must be defined for every state and
        symbol (totality is validated).
    """

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable,
        transitions: Dict[Tuple[State, object], State],
        initial: State,
        accepting: Iterable[State],
    ):
        self._states = frozenset(states)
        self._alphabet = frozenset(alphabet)
        self._transitions = dict(transitions)
        self._initial = initial
        self._accepting = frozenset(accepting)
        if initial not in self._states:
            raise SpecificationError("initial state %r not in state set" % (initial,))
        if not self._accepting <= self._states:
            raise SpecificationError("accepting states not a subset of the state set")
        for state in self._states:
            for symbol in self._alphabet:
                if (state, symbol) not in self._transitions:
                    raise SpecificationError(
                        "DFA transition missing for state %r, symbol %r" % (state, symbol)
                    )
                if self._transitions[(state, symbol)] not in self._states:
                    raise SpecificationError(
                        "DFA transition target outside state set at %r/%r" % (state, symbol)
                    )

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def states(self) -> FrozenSet[State]:
        return self._states

    @property
    def alphabet(self) -> FrozenSet:
        return self._alphabet

    @property
    def initial(self) -> State:
        return self._initial

    @property
    def accepting(self) -> FrozenSet[State]:
        return self._accepting

    def delta(self, state: State, symbol) -> State:
        """One transition step."""
        try:
            return self._transitions[(state, symbol)]
        except KeyError:
            raise SpecificationError(
                "symbol %r outside the DFA alphabet %r" % (symbol, sorted(map(repr, self._alphabet)))
            )

    def run(self, word: Sequence, start: State = None) -> State:
        """The state reached after reading *word* (from *start* or initial)."""
        state = self._initial if start is None else start
        for symbol in word:
            state = self.delta(state, symbol)
        return state

    def accepts(self, word: Sequence) -> bool:
        """Whether the DFA accepts the finite *word*."""
        return self.run(word) in self._accepting

    def size(self) -> int:
        return len(self._states)

    def structural_key(self) -> Tuple:
        """A value-based fingerprint of this DFA (lazily computed, cached).

        Two DFAs with the same states, alphabet, transitions, initial and
        accepting sets share the key; distinct objects with the same
        structure therefore deduplicate.  Use this -- never the object id --
        when a DFA participates in a cache or dedup key: object ids are
        recycled after garbage collection, structural keys are not.
        """
        cached = getattr(self, "_structural_key", None)
        if cached is None:
            cached = (
                self._initial,
                self._accepting,
                self._alphabet,
                frozenset(self._transitions.items()),
            )
            self._structural_key = cached
        return cached

    # ------------------------------------------------------------------ #
    # language operations
    # ------------------------------------------------------------------ #

    def complement(self) -> "Dfa":
        """The DFA for the complement language."""
        return Dfa(
            self._states,
            self._alphabet,
            self._transitions,
            self._initial,
            self._states - self._accepting,
        )

    def _product(self, other: "Dfa", accept_rule) -> "Dfa":
        if self._alphabet != other._alphabet:
            raise SpecificationError("product requires identical alphabets")
        initial = (self._initial, other._initial)
        index: Dict[Tuple[State, State], Tuple[State, State]] = {initial: initial}
        worklist: List[Tuple[State, State]] = [initial]
        transitions: Dict[Tuple[Tuple[State, State], object], Tuple[State, State]] = {}
        while worklist:
            pair = worklist.pop()
            for symbol in self._alphabet:
                target = (self.delta(pair[0], symbol), other.delta(pair[1], symbol))
                if target not in index:
                    index[target] = target
                    worklist.append(target)
                transitions[(pair, symbol)] = target
        states = frozenset(index)
        accepting = frozenset(
            pair
            for pair in states
            if accept_rule(pair[0] in self._accepting, pair[1] in other._accepting)
        )
        return Dfa(states, self._alphabet, transitions, initial, accepting)

    def intersect(self, other: "Dfa") -> "Dfa":
        """Product DFA for the intersection."""
        return self._product(other, lambda a, b: a and b)

    def union(self, other: "Dfa") -> "Dfa":
        """Product DFA for the union."""
        return self._product(other, lambda a, b: a or b)

    def difference(self, other: "Dfa") -> "Dfa":
        """Product DFA for ``L(self) - L(other)``."""
        return self._product(other, lambda a, b: a and not b)

    # ------------------------------------------------------------------ #
    # decision procedures
    # ------------------------------------------------------------------ #

    def reachable_states(self) -> FrozenSet[State]:
        """States reachable from the initial state."""
        seen = {self._initial}
        frontier = [self._initial]
        while frontier:
            state = frontier.pop()
            for symbol in self._alphabet:
                target = self.delta(state, symbol)
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return frozenset(seen)

    def is_empty(self) -> bool:
        """Whether the language is empty."""
        return not (self.reachable_states() & self._accepting)

    def shortest_accepted(self) -> Optional[Tuple]:
        """A shortest accepted word, or ``None`` when the language is empty."""
        if self._initial in self._accepting:
            return ()
        parent: Dict[State, Tuple[State, object]] = {}
        seen = {self._initial}
        frontier = [self._initial]
        while frontier:
            next_frontier = []
            for state in frontier:
                for symbol in sorted(self._alphabet, key=repr):
                    target = self.delta(state, symbol)
                    if target in seen:
                        continue
                    seen.add(target)
                    parent[target] = (state, symbol)
                    if target in self._accepting:
                        word: List = []
                        node = target
                        while node in parent:
                            node, symbol_back = parent[node]
                            word.append(symbol_back)
                        return tuple(reversed(word))
                    next_frontier.append(target)
            frontier = next_frontier
        return None

    def equivalent(self, other: "Dfa") -> bool:
        """Language equivalence (via symmetric difference emptiness)."""
        return self.difference(other).is_empty() and other.difference(self).is_empty()

    # ------------------------------------------------------------------ #
    # minimisation
    # ------------------------------------------------------------------ #

    def minimize(self) -> "Dfa":
        """Moore's partition-refinement minimisation over reachable states.

        Returns a DFA with integer states; state 0 is initial.
        """
        reachable = sorted(self.reachable_states(), key=repr)
        symbols = sorted(self._alphabet, key=repr)
        block: Dict[State, int] = {
            state: (1 if state in self._accepting else 0) for state in reachable
        }
        while True:
            signatures: Dict[Tuple, int] = {}
            next_block: Dict[State, int] = {}
            for state in reachable:
                signature = (block[state],) + tuple(
                    block[self.delta(state, symbol)] for symbol in symbols
                )
                if signature not in signatures:
                    signatures[signature] = len(signatures)
                next_block[state] = signatures[signature]
            if next_block == block:
                break
            block = next_block
        # Renumber blocks so the initial state's block is 0 (cosmetic).
        order: Dict[int, int] = {}

        def number(b: int) -> int:
            if b not in order:
                order[b] = len(order)
            return order[b]

        number(block[self._initial])
        for state in reachable:
            number(block[state])
        transitions = {}
        for state in reachable:
            for symbol in symbols:
                transitions[(number(block[state]), symbol)] = number(
                    block[self.delta(state, symbol)]
                )
        accepting = frozenset(number(block[s]) for s in reachable if s in self._accepting)
        return Dfa(
            states=frozenset(range(len(order))),
            alphabet=self._alphabet,
            transitions=transitions,
            initial=0,
            accepting=accepting,
        )

    # ------------------------------------------------------------------ #
    # helpers for omega-reasoning on lassos
    # ------------------------------------------------------------------ #

    def period_transform(self, period: Sequence) -> Dict[State, State]:
        """The function ``q -> delta*(q, period)`` on all states.

        Used when analysing which factors of a lasso word match a constraint
        regex: reading one full period acts on DFA states as this function.
        """
        return {state: self.run(period, start=state) for state in self._states}

    @staticmethod
    def universal(alphabet: Iterable) -> "Dfa":
        """The one-state DFA accepting every word over *alphabet*."""
        alphabet = frozenset(alphabet)
        return Dfa(
            states={0},
            alphabet=alphabet,
            transitions={(0, symbol): 0 for symbol in alphabet},
            initial=0,
            accepting={0},
        )

    @staticmethod
    def empty_language(alphabet: Iterable) -> "Dfa":
        """The one-state DFA rejecting every word over *alphabet*."""
        alphabet = frozenset(alphabet)
        return Dfa(
            states={0},
            alphabet=alphabet,
            transitions={(0, symbol): 0 for symbol in alphabet},
            initial=0,
            accepting=frozenset(),
        )

    def __repr__(self) -> str:
        return "Dfa(%d states, %d symbols, %d accepting)" % (
            len(self._states),
            len(self._alphabet),
            len(self._accepting),
        )
