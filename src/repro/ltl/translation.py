"""LTL to Buchi translation (declarative tableau construction).

The classical construction: states are the locally consistent subsets
("atoms") of the closure of the NNF formula; transitions enforce the
expansion laws of X, U and R; a generalized Buchi acceptance set per until
subformula guarantees that promised eventualities are fulfilled.  The
result is degeneralised to a plain Buchi automaton whose alphabet is
``frozenset`` truth assignments over the formula's propositions.

Exponential in the formula, as it must be; the LTL-FO properties used for
workflow verification (Theorem 12) are small, so this is comfortably
practical.
"""

from itertools import chain, combinations
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.automata.buchi import BuchiAutomaton, GeneralizedBuchiAutomaton
from repro.ltl.syntax import (
    And_,
    FalseLtl,
    LtlFormula,
    Next,
    Not_,
    Or_,
    Prop,
    Release,
    TrueLtl,
    Until,
    nnf,
    subformulas,
)


def _powerset(items: List) -> Iterable[Tuple]:
    return chain.from_iterable(combinations(items, r) for r in range(len(items) + 1))


def _locally_consistent(atom: FrozenSet[LtlFormula], closure: Set[LtlFormula]) -> bool:
    """Local (boolean) consistency of a candidate tableau atom."""
    for node in closure:
        if isinstance(node, TrueLtl) and node not in atom:
            return False
        if isinstance(node, FalseLtl) and node in atom:
            return False
        if isinstance(node, Not_):
            # NNF: operand is a proposition
            if (node in atom) == (node.operand in atom):
                return False
        if isinstance(node, And_):
            if (node in atom) != (node.left in atom and node.right in atom):
                return False
        if isinstance(node, Or_):
            if (node in atom) != (node.left in atom or node.right in atom):
                return False
        if isinstance(node, Until):
            # expansion: U in atom requires right, or left now (the "next"
            # half is checked on transitions)
            if node in atom and not (node.right in atom or node.left in atom):
                return False
            if node.right in atom and node not in atom:
                return False
        if isinstance(node, Release):
            if node in atom and node.right not in atom:
                return False
            if node.right in atom and node.left in atom and node not in atom:
                return False
    return True


def _transition_consistent(
    source: FrozenSet[LtlFormula], target: FrozenSet[LtlFormula], closure: Set[LtlFormula]
) -> bool:
    """The step conditions: X, U and R expansion laws across a transition."""
    for node in closure:
        if isinstance(node, Next):
            if (node in source) != (node.operand in target):
                return False
        if isinstance(node, Until):
            holds_now = node in source
            expansion = node.right in source or (node.left in source and node in target)
            if holds_now != expansion:
                return False
        if isinstance(node, Release):
            holds_now = node in source
            expansion = node.right in source and (node.left in source or node in target)
            if holds_now != expansion:
                return False
    return True


def ltl_to_generalized_buchi(formula: LtlFormula) -> Tuple[GeneralizedBuchiAutomaton, FrozenSet[str]]:
    """Translate *formula* to a generalized Buchi automaton.

    Returns the automaton and the proposition vocabulary.  The alphabet of
    the automaton is ``frozenset`` subsets of that vocabulary; a transition
    from atom ``M`` is enabled on letter ``a`` when ``a`` agrees with the
    literals of ``M``.
    """
    normal = nnf(formula)
    closure = subformulas(normal)
    propositions = frozenset(normal.propositions())
    letters = [frozenset(c) for c in _powerset(sorted(propositions))]

    candidates = [
        frozenset(subset) for subset in _powerset(sorted(closure, key=repr))
    ]
    atoms = [atom for atom in candidates if _locally_consistent(atom, closure)]

    def letter_compatible(atom: FrozenSet[LtlFormula], letter: FrozenSet[str]) -> bool:
        for node in closure:
            if isinstance(node, Prop):
                if (node in atom) != (node.name in letter):
                    return False
        return True

    transitions: Dict[FrozenSet[LtlFormula], Dict[FrozenSet[str], Set]] = {}
    for source in atoms:
        for target in atoms:
            if not _transition_consistent(source, target, closure):
                continue
            for letter in letters:
                if letter_compatible(source, letter):
                    transitions.setdefault(source, {}).setdefault(letter, set()).add(target)

    initial = [atom for atom in atoms if normal in atom]
    acceptance_sets = []
    for node in closure:
        if isinstance(node, Until):
            acceptance_sets.append(
                frozenset(atom for atom in atoms if node not in atom or node.right in atom)
            )
    return (
        GeneralizedBuchiAutomaton(transitions, initial, acceptance_sets),
        propositions,
    )


def ltl_to_buchi(formula: LtlFormula) -> Tuple[BuchiAutomaton, FrozenSet[str]]:
    """Translate *formula* to a plain Buchi automaton over 2^AP letters.

    >>> automaton, props = ltl_to_buchi(Prop("p"))
    >>> sorted(props)
    ['p']
    """
    generalized, propositions = ltl_to_generalized_buchi(formula)
    return generalized.degeneralize().relabel_states(), propositions
