"""LTL-FO: temporal properties of runs (Definition 11).

An LTL-FO sentence is ``forall z . phi_f`` where ``phi`` is an LTL skeleton
over propositions ``P`` and ``f`` maps each proposition to a quantifier-free
FO formula over the register variables ``x1..xk`` (current position),
``y1..yk`` (next position) and the global variables ``z``.

Two evaluation modes are provided:

* **concrete** -- against a run prefix and a database
  (:meth:`LtlFoSentence.holds_on_prefix` is in
  :mod:`repro.core.verification`, which owns run objects);
* **symbolic** -- against a *complete* control trace: a complete type
  settles every atom over ``x``, ``y`` and the constants, so each
  proposition's truth at a position is determined
  (:func:`evaluate_formula_under_type`).  This is the observation the paper
  uses to reduce Theorem 12 to omega-automata emptiness.
"""

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

from repro.foundations.errors import EvaluationError, SpecificationError
from repro.logic.formulas import And, AtomFormula, FalseFormula, Formula, Not, Or, TrueFormula
from repro.logic.literals import Literal
from repro.logic.terms import Var, register_index
from repro.logic.types import SigmaType
from repro.ltl.syntax import LtlFormula


@dataclass(frozen=True)
class LtlFoSentence:
    """``forall z . phi_f``: an LTL skeleton plus its proposition mapping.

    Parameters
    ----------
    skeleton:
        The LTL formula over abstract propositions.
    propositions:
        Mapping from proposition name to its quantifier-free FO definition.
    global_vars:
        The universally quantified global variables ``z`` (may be empty).

    Examples
    --------
    "Whenever register 1 equals register 2, eventually register 1 is z":

    >>> from repro.ltl import Globally, Eventually, Prop
    >>> from repro.logic.formulas import atom_eq
    >>> from repro.logic.terms import X, Var
    >>> sentence = LtlFoSentence(
    ...     skeleton=Globally(Prop("eq12")),
    ...     propositions={"eq12": atom_eq(X(1), X(2))},
    ... )
    """

    skeleton: LtlFormula
    propositions: Dict[str, Formula] = field(default_factory=dict)
    global_vars: Tuple[Var, ...] = ()

    def __post_init__(self) -> None:
        used = self.skeleton.propositions()
        missing = used - set(self.propositions)
        if missing:
            raise SpecificationError(
                "propositions without an FO definition: %s" % sorted(missing)
            )
        for name, formula in self.propositions.items():
            for term in formula.free_terms():
                if not isinstance(term, Var):
                    continue
                if register_index(term) is None and term not in self.global_vars:
                    raise SpecificationError(
                        "proposition %r uses variable %r which is neither a "
                        "register variable nor a declared global" % (name, term)
                    )

    def proposition_names(self) -> FrozenSet[str]:
        return frozenset(self.propositions)

    def has_globals(self) -> bool:
        return bool(self.global_vars)


def evaluate_formula_under_type(formula: Formula, delta: SigmaType) -> bool:
    """Truth of a quantifier-free formula under a *complete* type.

    In a complete control trace, the type at each position settles every
    atom over ``x``, ``y`` and the constants; this evaluates an arbitrary
    boolean combination under that settled valuation.  Raises
    :class:`EvaluationError` when the type leaves some atom open (i.e. the
    type is not complete enough for the formula).
    """
    if isinstance(formula, TrueFormula):
        return True
    if isinstance(formula, FalseFormula):
        return False
    if isinstance(formula, AtomFormula):
        positive = Literal(formula.atom, True)
        if delta.entails(positive):
            return True
        if delta.entails(positive.negate()):
            return False
        raise EvaluationError(
            "atom %r is not settled by the type %s (type not complete?)"
            % (formula.atom, delta.pretty())
        )
    if isinstance(formula, Not):
        return not evaluate_formula_under_type(formula.operand, delta)
    if isinstance(formula, And):
        return all(evaluate_formula_under_type(op, delta) for op in formula.operands)
    if isinstance(formula, Or):
        return any(evaluate_formula_under_type(op, delta) for op in formula.operands)
    raise EvaluationError("unknown formula kind %r" % (formula,))


def proposition_assignment(
    sentence: LtlFoSentence, delta: SigmaType
) -> FrozenSet[str]:
    """The truth assignment induced by a complete type at a position.

    Returns the set of proposition names whose FO definition is entailed by
    *delta* -- the letter the control trace feeds to the property automaton.
    """
    return frozenset(
        name
        for name, formula in sentence.propositions.items()
        if evaluate_formula_under_type(formula, delta)
    )
