"""Linear-time temporal logic and its FO extension (Section 3, Definition 11).

* :mod:`repro.ltl.syntax` -- the LTL AST (G, F, X, U, R and booleans) and
  negation normal form,
* :mod:`repro.ltl.translation` -- the classical declarative tableau
  translation LTL -> generalized Buchi -> Buchi,
* :mod:`repro.ltl.ltlfo` -- LTL-FO sentences: LTL skeletons whose
  propositions are quantifier-free FO formulas over the register variables
  ``x``, ``y`` and universally quantified global variables ``z``.
"""

from repro.ltl.ltlfo import LtlFoSentence, evaluate_formula_under_type
from repro.ltl.syntax import (
    And_,
    Eventually,
    FalseLtl,
    Globally,
    LtlFormula,
    Next,
    Not_,
    Or_,
    Prop,
    Release,
    TrueLtl,
    Until,
    nnf,
)
from repro.ltl.translation import ltl_to_buchi

__all__ = [
    "LtlFormula",
    "Prop",
    "TrueLtl",
    "FalseLtl",
    "Not_",
    "And_",
    "Or_",
    "Next",
    "Until",
    "Release",
    "Eventually",
    "Globally",
    "nnf",
    "ltl_to_buchi",
    "LtlFoSentence",
    "evaluate_formula_under_type",
]
