"""LTL syntax and negation normal form.

The operators are those of the paper's Section 3: ``G`` (always), ``F``
(eventually), ``X`` (next) and ``U`` (until), plus the boolean connectives.
``R`` (release) is included because negation normal form requires the dual
of until.  ``F`` and ``G`` are kept as first-class nodes for readability and
expanded during NNF conversion (``F p = true U p``, ``G p = false R p``).
"""

from dataclasses import dataclass
from typing import FrozenSet, Set, Tuple


class LtlFormula:
    """Base class of LTL formulas."""

    def propositions(self) -> FrozenSet[str]:
        """Names of the atomic propositions occurring in the formula."""
        raise NotImplementedError

    def __and__(self, other: "LtlFormula") -> "LtlFormula":
        return And_(self, other)

    def __or__(self, other: "LtlFormula") -> "LtlFormula":
        return Or_(self, other)

    def __invert__(self) -> "LtlFormula":
        return Not_(self)


@dataclass(frozen=True)
class TrueLtl(LtlFormula):
    def propositions(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseLtl(LtlFormula):
    def propositions(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Prop(LtlFormula):
    """An atomic proposition, identified by name."""

    name: str

    def propositions(self) -> FrozenSet[str]:
        return frozenset([self.name])

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not_(LtlFormula):
    operand: LtlFormula

    def propositions(self) -> FrozenSet[str]:
        return self.operand.propositions()

    def __repr__(self) -> str:
        return "!(%r)" % (self.operand,)


@dataclass(frozen=True)
class And_(LtlFormula):
    left: LtlFormula
    right: LtlFormula

    def propositions(self) -> FrozenSet[str]:
        return self.left.propositions() | self.right.propositions()

    def __repr__(self) -> str:
        return "(%r and %r)" % (self.left, self.right)


@dataclass(frozen=True)
class Or_(LtlFormula):
    left: LtlFormula
    right: LtlFormula

    def propositions(self) -> FrozenSet[str]:
        return self.left.propositions() | self.right.propositions()

    def __repr__(self) -> str:
        return "(%r or %r)" % (self.left, self.right)


@dataclass(frozen=True)
class Next(LtlFormula):
    operand: LtlFormula

    def propositions(self) -> FrozenSet[str]:
        return self.operand.propositions()

    def __repr__(self) -> str:
        return "X(%r)" % (self.operand,)


@dataclass(frozen=True)
class Until(LtlFormula):
    left: LtlFormula
    right: LtlFormula

    def propositions(self) -> FrozenSet[str]:
        return self.left.propositions() | self.right.propositions()

    def __repr__(self) -> str:
        return "(%r U %r)" % (self.left, self.right)


@dataclass(frozen=True)
class Release(LtlFormula):
    left: LtlFormula
    right: LtlFormula

    def propositions(self) -> FrozenSet[str]:
        return self.left.propositions() | self.right.propositions()

    def __repr__(self) -> str:
        return "(%r R %r)" % (self.left, self.right)


@dataclass(frozen=True)
class Eventually(LtlFormula):
    """``F p``: p holds at some future position (including now)."""

    operand: LtlFormula

    def propositions(self) -> FrozenSet[str]:
        return self.operand.propositions()

    def __repr__(self) -> str:
        return "F(%r)" % (self.operand,)


@dataclass(frozen=True)
class Globally(LtlFormula):
    """``G p``: p holds at every position from now on."""

    operand: LtlFormula

    def propositions(self) -> FrozenSet[str]:
        return self.operand.propositions()

    def __repr__(self) -> str:
        return "G(%r)" % (self.operand,)


def nnf(formula: LtlFormula, negated: bool = False) -> LtlFormula:
    """Negation normal form: negations pushed to the propositions.

    ``F``/``G`` are expanded into until/release; the result uses only
    ``Prop``, negated ``Prop``, ``TrueLtl``, ``FalseLtl``, ``And_``, ``Or_``,
    ``Next``, ``Until`` and ``Release``.

    >>> nnf(Not_(Globally(Prop("p"))))
    (true U !(p))
    """
    if isinstance(formula, TrueLtl):
        return FalseLtl() if negated else TrueLtl()
    if isinstance(formula, FalseLtl):
        return TrueLtl() if negated else FalseLtl()
    if isinstance(formula, Prop):
        return Not_(formula) if negated else formula
    if isinstance(formula, Not_):
        return nnf(formula.operand, not negated)
    if isinstance(formula, And_):
        left, right = nnf(formula.left, negated), nnf(formula.right, negated)
        return Or_(left, right) if negated else And_(left, right)
    if isinstance(formula, Or_):
        left, right = nnf(formula.left, negated), nnf(formula.right, negated)
        return And_(left, right) if negated else Or_(left, right)
    if isinstance(formula, Next):
        return Next(nnf(formula.operand, negated))
    if isinstance(formula, Until):
        left, right = nnf(formula.left, negated), nnf(formula.right, negated)
        return Release(left, right) if negated else Until(left, right)
    if isinstance(formula, Release):
        left, right = nnf(formula.left, negated), nnf(formula.right, negated)
        return Until(left, right) if negated else Release(left, right)
    if isinstance(formula, Eventually):
        inner = nnf(formula.operand, negated)
        if negated:
            return Release(FalseLtl(), inner)  # not F p == G not p
        return Until(TrueLtl(), inner)
    if isinstance(formula, Globally):
        inner = nnf(formula.operand, negated)
        if negated:
            return Until(TrueLtl(), inner)  # not G p == F not p
        return Release(FalseLtl(), inner)
    raise TypeError("unknown LTL node %r" % (formula,))


def subformulas(formula: LtlFormula) -> Set[LtlFormula]:
    """All subformulas of an NNF formula (the tableau closure)."""
    found: Set[LtlFormula] = set()

    def walk(node: LtlFormula) -> None:
        if node in found:
            return
        found.add(node)
        for attr in ("operand", "left", "right"):
            child = getattr(node, attr, None)
            if isinstance(child, LtlFormula):
                walk(child)

    walk(formula)
    return found


def satisfies(word_assignments, formula: LtlFormula) -> bool:
    """Semantic check of an LTL formula on an ultimately periodic word.

    *word_assignments* is a :class:`~repro.automata.words.Lasso` whose
    letters are frozensets of proposition names (the positions' truth
    assignments).  Used by tests as a ground-truth oracle against the
    automaton translation.

    The evaluation is a bottom-up dynamic program over the lasso's canonical
    positions (prefix plus one period).  Until is the least fixpoint of its
    expansion law and release the greatest, so on the periodic part we
    iterate the expansion from all-false (until) / all-true (release) until
    stabilisation; at most ``period`` iterations are needed.
    """
    from repro.automata.words import Lasso

    if not isinstance(word_assignments, Lasso):
        raise TypeError("expected a Lasso of frozenset letters")
    formula = nnf(formula)
    spine = word_assignments.spine_length()
    period = len(word_assignments.period)
    loop_start = spine - period

    def successor(position: int) -> int:
        nxt = position + 1
        return loop_start if nxt == spine else nxt

    positions = range(spine)
    truth = {}  # (position, subformula) -> bool

    def value(position: int, node: LtlFormula) -> bool:
        return truth[(position, node)]

    def order(node: LtlFormula, acc):
        for attr in ("operand", "left", "right"):
            child = getattr(node, attr, None)
            if isinstance(child, LtlFormula):
                order(child, acc)
        if node not in acc:
            acc.append(node)

    ordered = []
    order(formula, ordered)
    for node in ordered:
        if isinstance(node, TrueLtl):
            for p in positions:
                truth[(p, node)] = True
        elif isinstance(node, FalseLtl):
            for p in positions:
                truth[(p, node)] = False
        elif isinstance(node, Prop):
            for p in positions:
                truth[(p, node)] = node.name in word_assignments[p]
        elif isinstance(node, Not_):
            for p in positions:
                truth[(p, node)] = node.operand.name not in word_assignments[p]
        elif isinstance(node, And_):
            for p in positions:
                truth[(p, node)] = value(p, node.left) and value(p, node.right)
        elif isinstance(node, Or_):
            for p in positions:
                truth[(p, node)] = value(p, node.left) or value(p, node.right)
        elif isinstance(node, Next):
            for p in positions:
                truth[(p, node)] = value(successor(p), node.operand)
        elif isinstance(node, (Until, Release)):
            start_value = isinstance(node, Release)
            for p in positions:
                truth[(p, node)] = start_value
            # Iterate the expansion to the fixpoint (backwards through the
            # prefix converges in one pass; the loop needs <= period passes).
            for _ in range(period + 1):
                changed = False
                for p in reversed(range(spine)):
                    nxt = successor(p)
                    if isinstance(node, Until):
                        new = value(p, node.right) or (
                            value(p, node.left) and value(nxt, node)
                        )
                    else:
                        new = value(p, node.right) and (
                            value(p, node.left) or value(nxt, node)
                        )
                    if new != truth[(p, node)]:
                        truth[(p, node)] = new
                        changed = True
                if not changed:
                    break
        else:
            raise TypeError("unknown NNF node %r" % (node,))
    return truth[(0, formula)]
