"""Atoms and literals over a relational signature (Section 2).

An *atom* is either an equality ``s = t`` between terms or a relational atom
``R(t1, .., tm)``.  A *literal* is an atom or its negation.  Literals are the
conjuncts of sigma-types (:class:`repro.logic.types.SigmaType`).

Like terms, atoms and literals are hash-consed: the constructors return one
canonical instance per value (``EqAtom`` first normalises argument order,
so ``x1 = y1`` and ``y1 = x1`` intern to the same object), and every
instance carries its hash and sort key from construction.  The helpers
:func:`eq` / :func:`neq` / :func:`rel` / :func:`nrel` are the preferred
spelling in hot paths -- the repo linter (rule ``HC001``) flags raw
``Literal``/atom construction inside ``repro.core``.
"""

from typing import FrozenSet, Iterable, Tuple, Union

from repro.foundations.interning import Interned
from repro.logic.terms import Term


class EqAtom(metaclass=Interned):
    """The equality atom ``left = right``.

    Stored in a canonical order (``left <= right`` lexicographically) so that
    ``x1 = y1`` and ``y1 = x1`` are the same atom.
    """

    __slots__ = ("left", "right", "_hash", "_sort", "__weakref__")

    def __init__(self, left: Term, right: Term):
        if right < left:
            left, right = right, left
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "_sort", (0, "", left.sort_key(), right.sort_key()))
        object.__setattr__(self, "_hash", hash(("EqAtom", left, right)))

    @classmethod
    def __intern_key__(cls, left: Term, right: Term):
        if right < left:
            left, right = right, left
        return (left, right)

    def __setattr__(self, attribute, value):
        raise AttributeError("atoms are immutable")

    def __delattr__(self, attribute):
        raise AttributeError("atoms are immutable")

    def __reduce__(self):
        return (EqAtom, (self.left, self.right))

    @property
    def terms(self) -> Tuple[Term, ...]:
        return (self.left, self.right)

    def sort_key(self) -> Tuple:
        return self._sort

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if type(other) is not EqAtom:
            return NotImplemented if not isinstance(other, RelAtom) else False
        return self.left == other.left and self.right == other.right

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other) -> bool:
        if not isinstance(other, (EqAtom, RelAtom)):
            return NotImplemented
        return self._sort < other.sort_key()

    def __repr__(self) -> str:
        return "%r = %r" % (self.left, self.right)


class RelAtom(metaclass=Interned):
    """The relational atom ``relation(args)``."""

    __slots__ = ("relation", "args", "_hash", "_sort", "__weakref__")

    def __init__(self, relation: str, args: Tuple[Term, ...]):
        args = tuple(args)
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "args", args)
        object.__setattr__(
            self, "_sort", (1, relation, tuple(t.sort_key() for t in args))
        )
        object.__setattr__(self, "_hash", hash(("RelAtom", relation, args)))

    @classmethod
    def __intern_key__(cls, relation: str, args: Tuple[Term, ...]):
        return (relation, tuple(args))

    def __setattr__(self, attribute, value):
        raise AttributeError("atoms are immutable")

    def __delattr__(self, attribute):
        raise AttributeError("atoms are immutable")

    def __reduce__(self):
        return (RelAtom, (self.relation, self.args))

    @property
    def terms(self) -> Tuple[Term, ...]:
        return self.args

    def sort_key(self) -> Tuple:
        return self._sort

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if type(other) is not RelAtom:
            return NotImplemented if not isinstance(other, EqAtom) else False
        return self.relation == other.relation and self.args == other.args

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other) -> bool:
        if not isinstance(other, (EqAtom, RelAtom)):
            return NotImplemented
        return self._sort < other.sort_key()

    def __repr__(self) -> str:
        return "%s(%s)" % (self.relation, ", ".join(repr(t) for t in self.args))


Atom = Union[EqAtom, RelAtom]


class Literal(metaclass=Interned):
    """An atom with a polarity: positive (the atom) or negative (its negation)."""

    __slots__ = ("atom", "positive", "_hash", "_sort", "__weakref__")

    def __init__(self, atom: Atom, positive: bool = True):
        positive = bool(positive)
        object.__setattr__(self, "atom", atom)
        object.__setattr__(self, "positive", positive)
        object.__setattr__(self, "_sort", (atom.sort_key(), not positive))
        object.__setattr__(self, "_hash", hash(("Literal", atom, positive)))

    @classmethod
    def __intern_key__(cls, atom: Atom, positive: bool = True):
        return (atom, bool(positive))

    def __setattr__(self, attribute, value):
        raise AttributeError("literals are immutable")

    def __delattr__(self, attribute):
        raise AttributeError("literals are immutable")

    def __reduce__(self):
        return (Literal, (self.atom, self.positive))

    @property
    def terms(self) -> Tuple[Term, ...]:
        return self.atom.terms

    def sort_key(self) -> Tuple:
        return self._sort

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if type(other) is not Literal:
            return NotImplemented
        return self.positive == other.positive and self.atom == other.atom

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other) -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        return self._sort < other._sort

    def negate(self) -> "Literal":
        """The literal with opposite polarity."""
        return Literal(self.atom, not self.positive)

    def is_equality(self) -> bool:
        return type(self.atom) is EqAtom

    def is_relational(self) -> bool:
        return type(self.atom) is RelAtom

    def __repr__(self) -> str:
        if self.positive:
            return repr(self.atom)
        if type(self.atom) is EqAtom:
            return "%r != %r" % (self.atom.left, self.atom.right)
        return "not %r" % (self.atom,)


def eq(left: Term, right: Term) -> Literal:
    """The literal ``left = right``."""
    return Literal(EqAtom(left, right), True)


def neq(left: Term, right: Term) -> Literal:
    """The literal ``left != right``."""
    return Literal(EqAtom(left, right), False)


def rel(relation: str, *args: Term) -> Literal:
    """The positive relational literal ``relation(args)``."""
    return Literal(RelAtom(relation, tuple(args)), True)


def nrel(relation: str, *args: Term) -> Literal:
    """The negative relational literal ``not relation(args)``."""
    return Literal(RelAtom(relation, tuple(args)), False)


def terms_of(literals: Iterable[Literal]) -> FrozenSet[Term]:
    """All terms occurring in *literals*."""
    found = set()
    for literal in literals:
        found.update(literal.terms)
    return frozenset(found)
