"""Atoms and literals over a relational signature (Section 2).

An *atom* is either an equality ``s = t`` between terms or a relational atom
``R(t1, .., tm)``.  A *literal* is an atom or its negation.  Literals are the
conjuncts of sigma-types (:class:`repro.logic.types.SigmaType`).
"""

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple, Union

from repro.logic.terms import Term


@dataclass(frozen=True)
class EqAtom:
    """The equality atom ``left = right``.

    Stored in a canonical order (``left <= right`` lexicographically) so that
    ``x1 = y1`` and ``y1 = x1`` are the same atom.
    """

    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.right < self.left:
            left, right = self.left, self.right
            object.__setattr__(self, "left", right)
            object.__setattr__(self, "right", left)

    @property
    def terms(self) -> Tuple[Term, ...]:
        return (self.left, self.right)

    def sort_key(self) -> Tuple:
        return (0, "", self.left.sort_key(), self.right.sort_key())

    def __lt__(self, other) -> bool:
        if not isinstance(other, (EqAtom, RelAtom)):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:
        return "%r = %r" % (self.left, self.right)


@dataclass(frozen=True)
class RelAtom:
    """The relational atom ``relation(args)``."""

    relation: str
    args: Tuple[Term, ...]

    @property
    def terms(self) -> Tuple[Term, ...]:
        return self.args

    def sort_key(self) -> Tuple:
        return (1, self.relation, tuple(t.sort_key() for t in self.args))

    def __lt__(self, other) -> bool:
        if not isinstance(other, (EqAtom, RelAtom)):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:
        return "%s(%s)" % (self.relation, ", ".join(repr(t) for t in self.args))


Atom = Union[EqAtom, RelAtom]


@dataclass(frozen=True)
class Literal:
    """An atom with a polarity: positive (the atom) or negative (its negation)."""

    atom: Atom
    positive: bool = True

    @property
    def terms(self) -> Tuple[Term, ...]:
        return self.atom.terms

    def sort_key(self) -> Tuple:
        return (self.atom.sort_key(), not self.positive)

    def __lt__(self, other) -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def negate(self) -> "Literal":
        """The literal with opposite polarity."""
        return Literal(self.atom, not self.positive)

    def is_equality(self) -> bool:
        return isinstance(self.atom, EqAtom)

    def is_relational(self) -> bool:
        return isinstance(self.atom, RelAtom)

    def __repr__(self) -> str:
        if self.positive:
            return repr(self.atom)
        if isinstance(self.atom, EqAtom):
            return "%r != %r" % (self.atom.left, self.atom.right)
        return "not %r" % (self.atom,)


def eq(left: Term, right: Term) -> Literal:
    """The literal ``left = right``."""
    return Literal(EqAtom(left, right), True)


def neq(left: Term, right: Term) -> Literal:
    """The literal ``left != right``."""
    return Literal(EqAtom(left, right), False)


def rel(relation: str, *args: Term) -> Literal:
    """The positive relational literal ``relation(args)``."""
    return Literal(RelAtom(relation, tuple(args)), True)


def nrel(relation: str, *args: Term) -> Literal:
    """The negative relational literal ``not relation(args)``."""
    return Literal(RelAtom(relation, tuple(args)), False)


def terms_of(literals: Iterable[Literal]) -> FrozenSet[Term]:
    """All terms occurring in *literals*."""
    found = set()
    for literal in literals:
        found.update(literal.terms)
    return frozenset(found)
