"""Quantifier-free first-order formulas.

Sigma-types cover the conjunctive fragment; LTL-FO propositions
(Definition 11) are arbitrary quantifier-free formulas, so we provide a
small boolean-combination AST on top of atoms.  Evaluation against a
database and a valuation lives in :mod:`repro.db.evaluation`.
"""

from dataclasses import dataclass
from typing import FrozenSet, Set, Tuple

from repro.logic.literals import Atom, EqAtom, Literal, RelAtom
from repro.logic.terms import Term


class Formula:
    """Base class of quantifier-free formulas."""

    def free_terms(self) -> FrozenSet[Term]:
        raise NotImplementedError

    def negate(self) -> "Formula":
        return Not(self)

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return self.negate()


@dataclass(frozen=True)
class TrueFormula(Formula):
    """The formula ``true``."""

    def free_terms(self) -> FrozenSet[Term]:
        return frozenset()

    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseFormula(Formula):
    """The formula ``false``."""

    def free_terms(self) -> FrozenSet[Term]:
        return frozenset()

    def __repr__(self) -> str:
        return "false"


@dataclass(frozen=True)
class AtomFormula(Formula):
    """A single atom used as a formula."""

    atom: Atom

    def free_terms(self) -> FrozenSet[Term]:
        return frozenset(self.atom.terms)

    def __repr__(self) -> str:
        return repr(self.atom)


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    operand: Formula

    def free_terms(self) -> FrozenSet[Term]:
        return self.operand.free_terms()

    def negate(self) -> Formula:
        return self.operand

    def __repr__(self) -> str:
        return "not (%r)" % (self.operand,)


@dataclass(frozen=True)
class And(Formula):
    """Conjunction of arbitrarily many operands."""

    operands: Tuple[Formula, ...]

    def free_terms(self) -> FrozenSet[Term]:
        found: Set[Term] = set()
        for operand in self.operands:
            found.update(operand.free_terms())
        return frozenset(found)

    def __repr__(self) -> str:
        return "(" + " and ".join(repr(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction of arbitrarily many operands."""

    operands: Tuple[Formula, ...]

    def free_terms(self) -> FrozenSet[Term]:
        found: Set[Term] = set()
        for operand in self.operands:
            found.update(operand.free_terms())
        return frozenset(found)

    def __repr__(self) -> str:
        return "(" + " or ".join(repr(op) for op in self.operands) + ")"


def literal_formula(literal: Literal) -> Formula:
    """Turn a literal into a formula."""
    base = AtomFormula(literal.atom)
    return base if literal.positive else Not(base)


def type_formula(literals) -> Formula:
    """The conjunction of a literal collection, as a formula."""
    operands = tuple(literal_formula(l) for l in literals)
    if not operands:
        return TrueFormula()
    if len(operands) == 1:
        return operands[0]
    return And(operands)


def atom_eq(left: Term, right: Term) -> Formula:
    """Shorthand for the atomic formula ``left = right``."""
    return AtomFormula(EqAtom(left, right))


def atom_rel(relation: str, *args: Term) -> Formula:
    """Shorthand for the atomic formula ``relation(args)``."""
    return AtomFormula(RelAtom(relation, tuple(args)))
