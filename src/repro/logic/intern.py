"""The ``intern()`` escape hatch for externally built logic values.

The constructors of :mod:`repro.logic` hash-cons automatically, so values
built through them are already canonical.  Values that arrive from
*outside* the constructors -- unpickled with interning disabled, built by
third-party code against an older API, or synthesised field by field --
can be re-canonicalised here.  ``intern`` rebuilds bottom-up through the
interning constructors, so the result is *the* canonical instance and all
sub-values (terms, atoms) are canonical too; on an already-canonical value
it is a cheap table hit per node.
"""

from typing import TypeVar, Union

from repro.logic.literals import EqAtom, Literal, RelAtom
from repro.logic.terms import Const, Term, Var
from repro.logic.types import SigmaType

Internable = Union[Term, EqAtom, RelAtom, Literal, SigmaType]
V = TypeVar("V", bound=Internable)

__all__ = ["intern"]


def intern(value: V) -> V:
    """The canonical interned instance structurally equal to *value*.

    Accepts terms, atoms, literals and sigma-types; raises ``TypeError``
    for anything else.  When interning is disabled (``REPRO_INTERN=0``)
    this degrades to a structural rebuild and returns an equal value.
    """
    if isinstance(value, (Var, Const)):
        return type(value)(value.name)
    if isinstance(value, EqAtom):
        return EqAtom(intern(value.left), intern(value.right))
    if isinstance(value, RelAtom):
        return RelAtom(value.relation, tuple(intern(t) for t in value.args))
    if isinstance(value, Literal):
        return Literal(intern(value.atom), value.positive)
    if isinstance(value, SigmaType):
        return SigmaType([intern(l) for l in value.literals], check=False)
    raise TypeError("cannot intern %r (type %s)" % (value, type(value).__name__))
