"""Quantifier-free logic: terms, literals and sigma-types (Section 2).

The paper's transition guards are *types*: satisfiable quantifier-free
conjunctions of literals over the register variables ``x1..xk`` (values
before the transition), ``y1..yk`` (values after) and the constants of the
signature.  This subpackage provides:

* :mod:`repro.logic.terms` -- variables and constants, with the ``x``/``y``
  register-variable conventions,
* :mod:`repro.logic.literals` -- equality and relational atoms/literals,
* :mod:`repro.logic.closure` -- union-find based equality closure used for
  satisfiability and entailment,
* :mod:`repro.logic.types` -- :class:`SigmaType` with satisfiability,
  restriction, renaming, completion and agreement checking,
* :mod:`repro.logic.formulas` -- general quantifier-free formulas (used by
  LTL-FO propositions).
"""

from repro.logic.closure import EqualityClosure, UnionFind
from repro.logic.formulas import And, AtomFormula, FalseFormula, Formula, Not, Or, TrueFormula
from repro.logic.intern import intern
from repro.logic.literals import Atom, EqAtom, Literal, RelAtom, eq, neq, rel, nrel
from repro.logic.terms import Const, Term, Var, X, Y, register_index, x_vars, y_vars
from repro.logic.types import SigmaType, agree, equality_type

__all__ = [
    "Term",
    "Var",
    "Const",
    "X",
    "Y",
    "x_vars",
    "y_vars",
    "register_index",
    "Atom",
    "EqAtom",
    "RelAtom",
    "Literal",
    "eq",
    "neq",
    "rel",
    "nrel",
    "UnionFind",
    "EqualityClosure",
    "SigmaType",
    "equality_type",
    "agree",
    "intern",
    "Formula",
    "AtomFormula",
    "And",
    "Or",
    "Not",
    "TrueFormula",
    "FalseFormula",
]
