"""Terms: variables and constants.

Registers follow the paper's convention: in a transition guard over a
``k``-register automaton, ``x1 .. xk`` denote the register contents *before*
the transition and ``y1 .. yk`` the contents *after* it.  :func:`X` and
:func:`Y` build these variables; :func:`register_index` recovers the
(kind, index) structure from a variable when it follows the convention.
"""

import re
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class Term:
    """Base class for terms.  Terms are immutable, hashable and totally
    ordered (variables before constants, then by name) so that literal sets
    canonicalise deterministically."""

    name: str

    def is_variable(self) -> bool:
        raise NotImplementedError

    def is_constant(self) -> bool:
        return not self.is_variable()

    def sort_key(self) -> Tuple[int, str]:
        return (0 if self.is_variable() else 1, self.name)

    def __lt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() >= other.sort_key()


@dataclass(frozen=True)
class Var(Term):
    """A first-order variable, identified by its name."""

    def is_variable(self) -> bool:
        return True

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Term):
    """A constant symbol of the signature.

    A constant denotes an element of the data domain; the denotation is fixed
    by the database (see :class:`repro.db.Database`), not by the symbol.
    """

    def is_variable(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "~" + self.name


_REGISTER_RE = re.compile(r"^([xy])([0-9]+)$")


def X(i: int) -> Var:
    """The variable ``x_i``: the content of register *i* before a transition.

    Registers are numbered from 1, as in the paper.
    """
    if i < 1:
        raise ValueError("register indices start at 1, got %d" % i)
    return Var("x%d" % i)


def Y(i: int) -> Var:
    """The variable ``y_i``: the content of register *i* after a transition."""
    if i < 1:
        raise ValueError("register indices start at 1, got %d" % i)
    return Var("y%d" % i)


def x_vars(k: int) -> Tuple[Var, ...]:
    """The tuple ``(x1, ..., xk)``."""
    return tuple(X(i) for i in range(1, k + 1))


def y_vars(k: int) -> Tuple[Var, ...]:
    """The tuple ``(y1, ..., yk)``."""
    return tuple(Y(i) for i in range(1, k + 1))


def register_index(term: Term) -> Optional[Tuple[str, int]]:
    """Decompose a register variable into ``(kind, index)``.

    Returns ``("x", i)`` for ``x_i``, ``("y", i)`` for ``y_i`` and ``None``
    for constants and variables outside the register convention (such as the
    global variables of LTL-FO formulas).

    >>> register_index(X(2))
    ('x', 2)
    >>> register_index(Var("z1")) is None
    True
    """
    if not isinstance(term, Var):
        return None
    match = _REGISTER_RE.match(term.name)
    if match is None:
        return None
    return match.group(1), int(match.group(2))
