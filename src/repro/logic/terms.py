"""Terms: variables and constants.

Registers follow the paper's convention: in a transition guard over a
``k``-register automaton, ``x1 .. xk`` denote the register contents *before*
the transition and ``y1 .. yk`` the contents *after* it.  :func:`X` and
:func:`Y` build these variables; :func:`register_index` recovers the
(kind, index) structure from a variable when it follows the convention.

Terms are **hash-consed** (see :mod:`repro.foundations.interning`): the
constructors return one canonical instance per name, carrying a
precomputed hash and sort key, so the millions of ``Var("x1")`` lookups
the run searches perform hash in O(1) and compare by identity.  Equality
stays structural for values built while interning is disabled.
"""

import re
from typing import Optional, Tuple

from repro.foundations.interning import Interned


class Term(metaclass=Interned):
    """Base class for terms.  Terms are immutable, hashable and totally
    ordered (variables before constants, then by name) so that literal sets
    canonicalise deterministically."""

    __slots__ = ("name", "_hash", "_sort", "__weakref__")

    def __init__(self, name: str):
        object.__setattr__(self, "name", name)
        object.__setattr__(
            self, "_sort", (0 if self.is_variable() else 1, name)
        )
        object.__setattr__(self, "_hash", hash((type(self).__name__, name)))

    @classmethod
    def __intern_key__(cls, name: str) -> str:
        return name

    def __setattr__(self, attribute, value):
        raise AttributeError("terms are immutable")

    def __delattr__(self, attribute):
        raise AttributeError("terms are immutable")

    def __reduce__(self):
        # Route unpickling through the constructor so values shipped to and
        # from worker processes re-intern on load.
        return (type(self), (self.name,))

    def is_variable(self) -> bool:
        raise NotImplementedError

    def is_constant(self) -> bool:
        return not self.is_variable()

    def sort_key(self) -> Tuple[int, str]:
        return self._sort

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if type(other) is not type(self):
            return NotImplemented if not isinstance(other, Term) else False
        return self.name == other.name

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self._sort < other._sort

    def __le__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self._sort <= other._sort

    def __gt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self._sort > other._sort

    def __ge__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self._sort >= other._sort


class Var(Term):
    """A first-order variable, identified by its name."""

    __slots__ = ()

    def is_variable(self) -> bool:
        return True

    def __repr__(self) -> str:
        return self.name


class Const(Term):
    """A constant symbol of the signature.

    A constant denotes an element of the data domain; the denotation is fixed
    by the database (see :class:`repro.db.Database`), not by the symbol.
    """

    __slots__ = ()

    def is_variable(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "~" + self.name


_REGISTER_RE = re.compile(r"^([xy])([0-9]+)$")


def X(i: int) -> Var:
    """The variable ``x_i``: the content of register *i* before a transition.

    Registers are numbered from 1, as in the paper.
    """
    if i < 1:
        raise ValueError("register indices start at 1, got %d" % i)
    return Var("x%d" % i)


def Y(i: int) -> Var:
    """The variable ``y_i``: the content of register *i* after a transition."""
    if i < 1:
        raise ValueError("register indices start at 1, got %d" % i)
    return Var("y%d" % i)


def x_vars(k: int) -> Tuple[Var, ...]:
    """The tuple ``(x1, ..., xk)``."""
    return tuple(X(i) for i in range(1, k + 1))


def y_vars(k: int) -> Tuple[Var, ...]:
    """The tuple ``(y1, ..., yk)``."""
    return tuple(Y(i) for i in range(1, k + 1))


def register_index(term: Term) -> Optional[Tuple[str, int]]:
    """Decompose a register variable into ``(kind, index)``.

    Returns ``("x", i)`` for ``x_i``, ``("y", i)`` for ``y_i`` and ``None``
    for constants and variables outside the register convention (such as the
    global variables of LTL-FO formulas).

    >>> register_index(X(2))
    ('x', 2)
    >>> register_index(Var("z1")) is None
    True
    """
    if not isinstance(term, Var):
        return None
    match = _REGISTER_RE.match(term.name)
    if match is None:
        return None
    return match.group(1), int(match.group(2))
