"""Equality closure over terms: the satisfiability engine for sigma-types.

Our logic is function-free, so congruence closure degenerates to the
reflexive-symmetric-transitive closure of the asserted equalities, computed
with a union-find structure.  On top of the closure we detect the three kinds
of conflicts a set of literals can exhibit:

* a negative equality ``s != t`` with ``s ~ t`` in the closure,
* a positive and a negative relational literal on tuples that are equal
  component-wise modulo the closure,
* (trivially) ``s != s``.

This module is also reused by the run machinery of the core package, where
union-find tracks the equivalence ``~_w`` between (position, register) pairs
of a symbolic control trace (Section 3).
"""

from typing import Dict, Generic, Hashable, Iterable, List, Set, Tuple, TypeVar

from repro.logic.literals import EqAtom, Literal, RelAtom

N = TypeVar("N", bound=Hashable)


class UnionFind(Generic[N]):
    """Union-find with path compression and union by rank.

    Nodes are created lazily by :meth:`find`.  The structure is generic: the
    logic layer uses terms as nodes, the core layer uses (position, register)
    pairs.
    """

    def __init__(self) -> None:
        self._parent: Dict[N, N] = {}
        self._rank: Dict[N, int] = {}

    def find(self, node: N) -> N:
        """Return the canonical representative of *node*'s class."""
        parent = self._parent
        if node not in parent:
            parent[node] = node
            self._rank[node] = 0
            return node
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def union(self, a: N, b: N) -> N:
        """Merge the classes of *a* and *b*; return the surviving root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return ra

    def same(self, a: N, b: N) -> bool:
        """Whether *a* and *b* are in the same class."""
        return self.find(a) == self.find(b)

    def nodes(self) -> List[N]:
        """All nodes ever touched."""
        return list(self._parent)

    def classes(self) -> Dict[N, Set[N]]:
        """A map from representative to the full class it represents."""
        result: Dict[N, Set[N]] = {}
        for node in self._parent:
            result.setdefault(self.find(node), set()).add(node)
        return result


class EqualityClosure:
    """The equality closure of a set of literals, with conflict detection.

    Build one from literals, then query :meth:`is_consistent`,
    :meth:`entails_eq` and :meth:`entails_neq`.
    """

    def __init__(self, literals: Iterable[Literal]):
        self._literals: Tuple[Literal, ...] = tuple(literals)
        self._uf: UnionFind = UnionFind()
        self._neq_pairs: List[Tuple] = []
        self._pos_rel: List[RelAtom] = []
        self._neg_rel: List[RelAtom] = []
        for literal in self._literals:
            atom = literal.atom
            if isinstance(atom, EqAtom):
                self._uf.find(atom.left)
                self._uf.find(atom.right)
                if literal.positive:
                    self._uf.union(atom.left, atom.right)
                else:
                    self._neq_pairs.append((atom.left, atom.right))
            else:
                for term in atom.args:
                    self._uf.find(term)
                if literal.positive:
                    self._pos_rel.append(atom)
                else:
                    self._neg_rel.append(atom)

    @property
    def union_find(self) -> UnionFind:
        return self._uf

    def same(self, a, b) -> bool:
        """Whether terms *a* and *b* are forced equal by the closure."""
        return self._uf.same(a, b)

    def entails_eq(self, a, b) -> bool:
        """Whether the literals entail ``a = b``."""
        return self.same(a, b)

    def entails_neq(self, a, b) -> bool:
        """Whether the literals entail ``a != b``.

        True when some asserted disequality connects the classes of *a* and
        *b* (the only way a disequality can be entailed in equality logic).
        """
        ca, cb = self._uf.find(a), self._uf.find(b)
        for left, right in self._neq_pairs:
            cl, cr = self._uf.find(left), self._uf.find(right)
            if (cl, cr) in ((ca, cb), (cb, ca)):
                return True
        return False

    def _tuples_equal(self, one: RelAtom, other: RelAtom) -> bool:
        if one.relation != other.relation or len(one.args) != len(other.args):
            return False
        return all(self.same(a, b) for a, b in zip(one.args, other.args))

    def is_consistent(self) -> bool:
        """Whether the literal set is satisfiable.

        Function-free quantifier-free conjunctions are satisfiable exactly
        when the closure produces no conflict: build a model whose universe is
        the set of equivalence classes, interpreting relations by the positive
        literals.
        """
        for left, right in self._neq_pairs:
            if self.same(left, right):
                return False
        for pos in self._pos_rel:
            for negative in self._neg_rel:
                if self._tuples_equal(pos, negative):
                    return False
        return True

    def entails_literal(self, literal: Literal) -> bool:
        """Whether the closed literal set entails *literal*."""
        atom = literal.atom
        if isinstance(atom, EqAtom):
            if literal.positive:
                return self.entails_eq(atom.left, atom.right)
            return self.entails_neq(atom.left, atom.right)
        pool = self._pos_rel if literal.positive else self._neg_rel
        return any(self._tuples_equal(atom, candidate) for candidate in pool)

    def representative_classes(self) -> Dict:
        """Map each touched term to its canonical representative."""
        return {node: self._uf.find(node) for node in self._uf.nodes()}
