"""Sigma-types: the transition guards of register automata (Section 2).

A *type* is a satisfiable conjunction of literals over a relational
signature, here represented by :class:`SigmaType`.  Types are immutable;
every construction checks satisfiability and raises
:class:`~repro.foundations.errors.InconsistentTypeError` otherwise, matching
the paper's requirement that types be satisfiable.

The module also implements the two pieces of type algebra the paper relies
on throughout:

* **restriction** ``delta | z`` -- the conjunction of the literals of
  ``delta`` using only variables from ``z`` (and constants),
* **completion** -- enumeration of the *complete* types extending a type,
  which settle every equality between variables (and variable/constant
  pairs) and every relational fact over the available terms.  The paper
  warns this is exponential; :meth:`SigmaType.completions` is a lazy
  generator so callers pay only for what they consume.

Finally :func:`agree` implements condition (iii) of symbolic control traces:
two consecutive types agree on the common registers when
``delta_n | y`` equals ``delta_{n+1} | x`` under the renaming ``y_i -> x_i``.
"""

import weakref
from functools import cached_property
from itertools import product as cartesian_product
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.foundations.errors import InconsistentTypeError, SpecificationError
from repro.foundations.interning import (
    interning_enabled,
    register_intern_table,
    register_mode_listener,
)
from repro.foundations.memo import ValueCache
from repro.foundations.resilience import current_deadline
from repro.foundations.stats import cache_stats
from repro.logic.closure import EqualityClosure
from repro.logic.literals import Atom, EqAtom, Literal, RelAtom
from repro.logic.terms import Const, Term, Var, X, Y, register_index


def _substitute_term(term: Term, mapping: Dict[Term, Term]) -> Term:
    return mapping.get(term, term)


def _substitute_literal(literal: Literal, mapping: Dict[Term, Term]) -> Literal:
    atom = literal.atom
    if isinstance(atom, EqAtom):
        new_atom: Atom = EqAtom(
            _substitute_term(atom.left, mapping), _substitute_term(atom.right, mapping)
        )
    else:
        new_atom = RelAtom(atom.relation, tuple(_substitute_term(t, mapping) for t in atom.args))
    return Literal(new_atom, literal.positive)


class SigmaType:
    """A satisfiable conjunction of literals (a "type" in the paper).

    Parameters
    ----------
    literals:
        The conjuncts.  Duplicates are removed; trivial literals ``t = t``
        are dropped.
    check:
        When ``True`` (the default), satisfiability is verified and an
        :class:`InconsistentTypeError` raised on failure.

    Examples
    --------
    The type ``delta_1`` of the paper's Example 1 (``x1 = x2 and x2 = y2``):

    >>> from repro.logic import X, Y, eq
    >>> delta1 = SigmaType([eq(X(1), X(2)), eq(X(2), Y(2))])
    >>> delta1.entails(eq(X(1), Y(2)))
    True

    Types are hash-consed: constructing the same literal set twice (in any
    iteration order) yields one canonical instance, so structural equality
    is usually pointer identity and the cached properties below (closure,
    terms, canonical form) are computed once per *value*.  The table is
    weak -- unreferenced types are collected normally -- and interning can
    be disabled wholesale (``REPRO_INTERN=0``), in which case everything
    still works by structural equality.
    """

    __slots__ = ("_literals", "_hash", "__weakref__", "__dict__")

    _intern_table: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    def __new__(cls, literals: Iterable[Literal] = (), check: bool = True):
        cleaned: Set[Literal] = set()
        for literal in literals:
            atom = literal.atom
            if isinstance(atom, EqAtom) and atom.left == atom.right:
                if literal.positive:
                    continue
                raise InconsistentTypeError("literal %r is trivially false" % (literal,))
            cleaned.add(literal)
        frozen: FrozenSet[Literal] = frozenset(cleaned)
        interning = interning_enabled() and cls is SigmaType
        if interning:
            stats = _SIGMA_STATS
            existing = cls._intern_table.get(frozen)
            if existing is not None:
                stats.hits += 1
                if check and not existing.is_satisfiable():
                    raise InconsistentTypeError(
                        "unsatisfiable type: %s"
                        % ", ".join(sorted(repr(l) for l in cleaned))
                    )
                return existing
            stats.misses += 1
        self = object.__new__(cls)
        self._literals = frozen
        self._hash = hash(frozen)
        if check and not self.closure.is_consistent():
            raise InconsistentTypeError(
                "unsatisfiable type: %s" % ", ".join(sorted(repr(l) for l in cleaned))
            )
        if interning:
            self = cls._intern_table.setdefault(frozen, self)
            _SIGMA_STATS.note_entries(len(cls._intern_table))
        return self

    def __init__(self, literals: Iterable[Literal] = (), check: bool = True):
        # All construction work happens in __new__ so that intern hits skip
        # it entirely; nothing to do here.
        pass

    def __reduce__(self):
        # Unpickling re-enters the interning constructor (check=False: the
        # literals were satisfiable when pickled).
        return (_rebuild_sigma_type, (self.canonical_literals,))

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def literals(self) -> FrozenSet[Literal]:
        return self._literals

    @cached_property
    def closure(self) -> EqualityClosure:
        """The equality closure of the literals (cached)."""
        return EqualityClosure(self._literals)

    @cached_property
    def terms(self) -> FrozenSet[Term]:
        found: Set[Term] = set()
        for literal in self._literals:
            found.update(literal.terms)
        return frozenset(found)

    @cached_property
    def variables(self) -> FrozenSet[Var]:
        return frozenset(t for t in self.terms if isinstance(t, Var))

    @cached_property
    def constants(self) -> FrozenSet[Const]:
        return frozenset(t for t in self.terms if isinstance(t, Const))

    def equality_literals(self) -> List[Literal]:
        return sorted(l for l in self._literals if l.is_equality())

    def relational_literals(self) -> List[Literal]:
        return sorted(l for l in self._literals if l.is_relational())

    def is_equality_type(self) -> bool:
        """Whether the type mentions no relation symbols (Section 2)."""
        return not any(l.is_relational() for l in self._literals)

    # ------------------------------------------------------------------ #
    # logical queries
    # ------------------------------------------------------------------ #

    def is_satisfiable(self) -> bool:
        cached = self.__dict__.get("_satisfiable")
        if cached is None:
            cached = self.__dict__["_satisfiable"] = self.closure.is_consistent()
        return cached

    def entails(self, literal: Literal) -> bool:
        """Whether every model of this type satisfies *literal*."""
        atom = literal.atom
        if isinstance(atom, EqAtom) and atom.left == atom.right:
            return literal.positive
        return self.closure.entails_literal(literal)

    def consistent_with(self, literal: Literal) -> bool:
        """Whether the type plus *literal* is still satisfiable."""
        return EqualityClosure(list(self._literals) + [literal]).is_consistent()

    # ------------------------------------------------------------------ #
    # algebra
    # ------------------------------------------------------------------ #

    def conjoin(self, other: "SigmaType") -> "SigmaType":
        """The conjunction of two types (raises if unsatisfiable)."""
        return SigmaType(self._literals | other._literals)

    def with_literals(self, extra: Iterable[Literal]) -> "SigmaType":
        """This type extended with *extra* literals (raises if unsatisfiable)."""
        return SigmaType(list(self._literals) + list(extra))

    def restrict(self, allowed: Iterable[Term]) -> "SigmaType":
        """The restriction ``delta | allowed``.

        Keeps exactly the literals all of whose *variables* belong to
        *allowed*; constants are always allowed, as in the paper's
        ``delta |_{z}`` notation.
        """
        allowed_set = set(allowed)
        kept = [
            literal
            for literal in self._literals
            if all(t in allowed_set or isinstance(t, Const) for t in literal.terms)
        ]
        return SigmaType(kept, check=False)

    def rename(self, mapping: Dict[Term, Term]) -> "SigmaType":
        """Apply a term substitution (used for the ``y -> x`` shift)."""
        return SigmaType(
            (_substitute_literal(l, mapping) for l in self._literals), check=False
        )

    def x_part(self, k: int) -> "SigmaType":
        """``pi_1(delta)``: the restriction to the x-variables (Theorem 9)."""
        return self.restrict(X(i) for i in range(1, k + 1))

    def y_part(self, k: int) -> "SigmaType":
        """The restriction to the y-variables."""
        return self.restrict(Y(i) for i in range(1, k + 1))

    def shift_y_to_x(self, k: int) -> "SigmaType":
        """``delta | y`` rewritten over the x-variables (for agreement checks)."""
        return self.y_part(k).rename({Y(i): X(i) for i in range(1, k + 1)})

    # ------------------------------------------------------------------ #
    # completeness and completion
    # ------------------------------------------------------------------ #

    def _completion_obligations(
        self, relations: Dict[str, int], variables: Sequence[Var], constants: Sequence[Const]
    ) -> List[Atom]:
        """All atoms a complete type must settle, in deterministic order."""
        obligations: List[Atom] = []
        for left_index, left in enumerate(variables):
            for right in list(variables[left_index + 1 :]) + list(constants):
                obligations.append(EqAtom(left, right))
        terms: List[Term] = list(variables) + list(constants)
        for relation in sorted(relations):
            arity = relations[relation]
            for combo in cartesian_product(terms, repeat=arity):
                obligations.append(RelAtom(relation, combo))
        return obligations

    def is_complete(
        self,
        relations: Dict[str, int],
        variables: Sequence[Var],
        constants: Sequence[Const] = (),
    ) -> bool:
        """Whether the type is complete over the given vocabulary.

        Complete means (Section 2): every relational fact over the terms is
        settled, and every variable/variable and variable/constant equality
        is settled.  Settled is understood modulo entailment, so that e.g.
        ``x1 = x2, x2 = x3`` settles ``x1 = x3``.
        """
        for atom in self._completion_obligations(relations, variables, constants):
            positive = Literal(atom, True)
            if not self.entails(positive) and not self.entails(positive.negate()):
                return False
        return True

    def completions(
        self,
        relations: Dict[str, int],
        variables: Sequence[Var],
        constants: Sequence[Const] = (),
    ) -> Iterator["SigmaType"]:
        """Enumerate the complete types extending this one.

        This is the exponential blow-up the paper mentions; the enumeration
        is a backtracking search that settles one undecided atom at a time
        and prunes inconsistent branches via the equality closure.  The
        result is memoised per value and vocabulary: under interning, two
        structurally equal guards share one completion computation.
        """
        key = (
            tuple(sorted(relations.items())),
            tuple(variables),
            tuple(constants),
        )
        memo = self.__dict__.setdefault("_completions_memo", {})
        found = memo.get(key)
        if found is not None:
            return iter(found)
        memo[key] = found = tuple(
            self._enumerate_completions(relations, variables, constants)
        )
        return iter(found)

    def _enumerate_completions(
        self,
        relations: Dict[str, int],
        variables: Sequence[Var],
        constants: Sequence[Const],
    ) -> Iterator["SigmaType"]:
        obligations = self._completion_obligations(relations, variables, constants)

        def extend(current: SigmaType, index: int) -> Iterator[SigmaType]:
            # One ambient-deadline poll per search node: this enumeration is
            # the exponential blow-up the paper warns about, and the poll is
            # a thread-local read (plus one clock read under a deadline), so
            # even doubly-exponential searches stay interruptible for free.
            # An expiry aborts before the completions memo is assigned, so a
            # partial enumeration never poisons the cache.
            active = current_deadline()
            if active is not None:
                active.check("types.completions")
            while index < len(obligations):
                positive = Literal(obligations[index], True)
                if current.entails(positive) or current.entails(positive.negate()):
                    index += 1
                    continue
                for choice in (positive, positive.negate()):
                    try:
                        candidate = current.with_literals([choice])
                    except InconsistentTypeError:
                        continue
                    yield from extend(candidate, index + 1)
                return
            yield current

        yield from extend(self, 0)

    # ------------------------------------------------------------------ #
    # canonical form, equality, display
    # ------------------------------------------------------------------ #

    @cached_property
    def canonical_literals(self) -> Tuple[Literal, ...]:
        """Sorted literal tuple: the canonical syntactic form."""
        return tuple(sorted(self._literals))

    @cached_property
    def _canonical_reprs(self) -> Tuple[str, ...]:
        """Rendered literals in canonical order (cached: repr/pretty reuse)."""
        return tuple(repr(l) for l in self.canonical_literals)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, SigmaType):
            return NotImplemented
        return self._literals == other._literals

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        found = self.__dict__.get("_repr")
        if found is None:
            if not self._literals:
                found = "SigmaType(true)"
            else:
                found = "SigmaType(%s)" % " and ".join(self._canonical_reprs)
            self.__dict__["_repr"] = found
        return found

    def pretty(self) -> str:
        """A compact single-line rendering, ``true`` for the empty type."""
        found = self.__dict__.get("_pretty")
        if found is None:
            if not self._literals:
                found = "true"
            else:
                found = " & ".join(self._canonical_reprs)
            self.__dict__["_pretty"] = found
        return found


_SIGMA_STATS = cache_stats("intern.SigmaType")
register_intern_table("SigmaType", SigmaType._intern_table)


def _rebuild_sigma_type(literals: Tuple[Literal, ...]) -> SigmaType:
    """Pickle helper: reconstruct (and hence re-intern) a type on load."""
    return SigmaType(literals, check=False)


def x_equality_classes(delta: SigmaType, k: int) -> Dict[int, FrozenSet[int]]:
    """For each register ``i``, the registers forced equal to it *now*.

    ``result[i]`` is ``{m : delta entails x_i = x_m} | {i}`` -- the
    ``~``-class of register ``i`` at the current position.  Cached on the
    type instance (per *k*): a pure function of the guard, queried once
    per trace position by the consistency check and the Lemma 21 tracker
    constructions, where the union-find walks used to dominate.  Under
    interning the memo is shared by every structurally equal guard.
    """
    cache = delta.__dict__.get("_x_classes")
    if cache is None:
        cache = delta.__dict__["_x_classes"] = {}
    found = cache.get(k)
    if found is None:
        closure = delta.closure
        found = cache[k] = {
            i: frozenset(
                m
                for m in range(1, k + 1)
                if m == i or closure.same(X(i), X(m))
            )
            for i in range(1, k + 1)
        }
    return found


def y_successor_images(delta: SigmaType, k: int) -> Dict[int, FrozenSet[int]]:
    """For each register ``l``, the next-position registers it flows into.

    ``result[l] = {m : delta entails x_l = y_m}``.  The one-step image of
    a register set under the guard is the union of these images, which is
    how corridors are advanced position by position.  Cached like
    :func:`x_equality_classes`.
    """
    cache = delta.__dict__.get("_y_images")
    if cache is None:
        cache = delta.__dict__["_y_images"] = {}
    found = cache.get(k)
    if found is None:
        closure = delta.closure
        found = cache[k] = {
            l: frozenset(
                m for m in range(1, k + 1) if closure.same(X(l), Y(m))
            )
            for l in range(1, k + 1)
        }
    return found


def advance_registers(
    delta: SigmaType, members: FrozenSet[int], k: int
) -> FrozenSet[int]:
    """The one-step image of *members* under the guard's corridors."""
    images = y_successor_images(delta, k)
    result: Set[int] = set()
    for l in members:
        result |= images[l]
    return frozenset(result)


# ---------------------------------------------------------------------- #
# partition codes: complete equality x-types as integers
# ---------------------------------------------------------------------- #
#
# A complete equality type over x1..xk is a set partition of the registers
# (blocks = equality classes, distinct blocks implicitly unequal).  We
# encode each partition as a *pair bitmask*: one bit per register pair
# (i, j), i < j, set exactly when the partition puts i and j in one block.
# Pairs are numbered in the completion-obligation order -- (1,2), (1,3),
# ..., (1,k), (2,3), ... -- so the code-driven enumerations below replay
# :meth:`SigmaType.completions` bit for bit.
#
# On top of single codes sits the *interval* (atom) representation the
# antichain dataflow domain works with: a pair ``(e, d)`` of masks denotes
# the set of partitions ``{m : e <= m and m & d == 0}`` (all pairs in
# ``e`` forced equal, all pairs in ``d`` forced apart).  A single code
# ``c`` embeds as the degenerate interval ``(c, ALL & ~c)``.  Interval
# containment -- hence subsumption in the antichain -- is two integer
# mask comparisons; see :func:`interval_contains`.


def pair_bits(k: int) -> Tuple[Tuple[int, int], ...]:
    """The register pairs ``(i, j)``, ``i < j``, in bit-index order."""
    found = _PAIR_BITS.get(k)
    if found is None:
        found = _PAIR_BITS[k] = tuple(
            (i, j) for i in range(1, k + 1) for j in range(i + 1, k + 1)
        )
    return found


_PAIR_BITS: Dict[int, Tuple[Tuple[int, int], ...]] = {}  # mode-ok: pure integer tables
_PAIR_INDEX: Dict[int, Dict[Tuple[int, int], int]] = {}  # mode-ok: pure integer tables


def pair_bit(i: int, j: int, k: int) -> int:
    """The bit index of pair ``(i, j)`` (order-insensitive) at width *k*."""
    table = _PAIR_INDEX.get(k)
    if table is None:
        table = _PAIR_INDEX[k] = {
            pair: bit for bit, pair in enumerate(pair_bits(k))
        }
    return table[(i, j) if i < j else (j, i)]


def all_pairs_mask(k: int) -> int:
    """The mask with every pair bit set (the one-block partition)."""
    return (1 << (k * (k - 1) // 2)) - 1


def closure_mask(mask: int, k: int) -> int:
    """The transitive closure of *mask* as an equality relation on 1..k."""
    labels = list(range(k + 1))

    def find(register: int) -> int:
        while labels[register] != register:
            labels[register] = labels[labels[register]]
            register = labels[register]
        return register

    for bit, (i, j) in enumerate(pair_bits(k)):
        if mask >> bit & 1:
            ri, rj = find(i), find(j)
            if ri != rj:
                labels[max(ri, rj)] = min(ri, rj)
    closed = 0
    for bit, (i, j) in enumerate(pair_bits(k)):
        if find(i) == find(j):
            closed |= 1 << bit
    return closed


def partition_code(phi: "SigmaType", k: int) -> int:
    """Encode complete equality x-type *phi* as its partition code."""
    classes = x_equality_classes(phi, k)
    code = 0
    for bit, (i, j) in enumerate(pair_bits(k)):
        if j in classes[i]:
            code |= 1 << bit
    return code


def interval_contains(outer: Tuple[int, int], inner: Tuple[int, int]) -> bool:
    """Whether interval *outer* ``(e, d)`` contains interval *inner*.

    Containment holds exactly when the outer constraints are weaker:
    ``e_outer <= e_inner`` and ``d_outer <= d_inner`` (as bit sets).  Both
    intervals must be normalised (``e`` transitively closed, ``e & d ==
    0``); all intervals produced by this module are.
    """
    e_outer, d_outer = outer
    e_inner, d_inner = inner
    return (e_outer & ~e_inner) == 0 and (d_outer & ~d_inner) == 0


def decode_partition_code(code: int, k: int) -> "SigmaType":
    """The canonical :class:`SigmaType` for partition code *code*.

    Replays the completion search deterministically: walk the pairs in
    obligation order, skip pairs already settled by the literals chosen so
    far (same block, or an asserted disequality between the two blocks),
    and otherwise assert the (dis)equality the code dictates.  The literal
    set is therefore exactly what ``SigmaType().completions`` would have
    accumulated on the branch leading to this partition -- the canonical
    minimal form.
    """
    return _DECODE_CACHE.lookup((code, k), lambda: _decode(code, k))


def _decode(code: int, k: int) -> "SigmaType":
    labels = list(range(k + 1))

    def find(register: int) -> int:
        while labels[register] != register:
            labels[register] = labels[labels[register]]
            register = labels[register]
        return register

    neq_edges: Set[Tuple[int, int]] = set()
    literals: List[Literal] = []
    for bit, (i, j) in enumerate(pair_bits(k)):
        ri, rj = find(i), find(j)
        if ri == rj:
            continue
        edge = (min(ri, rj), max(ri, rj))
        if code >> bit & 1:
            literals.append(Literal(EqAtom(X(i), X(j)), True))
            root = min(ri, rj)
            other = max(ri, rj)
            labels[other] = root
            # Re-anchor disequality edges that referenced the merged root.
            if neq_edges:
                neq_edges = {
                    tuple(sorted((root if a == other else a, root if b == other else b)))
                    for a, b in neq_edges
                }
        elif edge not in neq_edges:
            literals.append(Literal(EqAtom(X(i), X(j)), False))
            neq_edges.add(edge)
    return SigmaType(literals, check=False)


def enumerate_interval_codes(e_mask: int, d_mask: int, k: int) -> Tuple[int, ...]:
    """All partition codes in the interval ``(e_mask, d_mask)``.

    The enumeration order replays the eq-first backtracking of
    :meth:`SigmaType.completions`, so ``enumerate_interval_codes(0, 0, k)``
    lists the Bell(k) partitions in exactly the order
    ``SigmaType().completions({}, [X(1)..X(k)])`` produces them.
    """
    return _INTERVAL_CACHE.lookup(
        (e_mask, d_mask, k), lambda: tuple(_enumerate_interval(e_mask, d_mask, k))
    )


def _enumerate_interval(e_mask: int, d_mask: int, k: int) -> Iterator[int]:
    pairs = pair_bits(k)

    def entailed_neq(labels, neq_edges, ri: int, rj: int) -> bool:
        for a, b in neq_edges:
            roots = (labels[a], labels[b])
            if roots == (ri, rj) or roots == (rj, ri):
                return True
        return False

    def extend(bit: int, labels, neq_edges) -> Iterator[int]:
        active = current_deadline()
        if active is not None:
            active.check("types.interval_enumeration")
        while bit < len(pairs):
            i, j = pairs[bit]
            ri, rj = labels[i], labels[j]
            if ri == rj or entailed_neq(labels, neq_edges, ri, rj):
                bit += 1
                continue
            forced_eq = bool(e_mask >> bit & 1)
            forced_neq = bool(d_mask >> bit & 1)
            if forced_eq or not forced_neq:
                root, other = min(ri, rj), max(ri, rj)
                merged = tuple(
                    root if label == other else label for label in labels
                )
                yield from extend(bit + 1, merged, neq_edges)
            if not forced_eq:
                yield from extend(bit + 1, labels, neq_edges + ((i, j),))
            return
        code = 0
        for index, (i, j) in enumerate(pairs):
            if labels[i] == labels[j]:
                code |= 1 << index
        yield code

    # Pre-seed with the interval constraints: union every e-pair, record a
    # disequality edge for every d-pair.  An inconsistent interval (some
    # d-pair forced equal by the closure of e) yields nothing.  Labels are
    # kept fully flattened (register -> class representative) so the DFS
    # compares in O(1).
    labels = list(range(k + 1))

    def find(register: int) -> int:
        while labels[register] != register:
            labels[register] = labels[labels[register]]
            register = labels[register]
        return register

    for bit, (i, j) in enumerate(pairs):
        if e_mask >> bit & 1:
            ri, rj = find(i), find(j)
            if ri != rj:
                labels[max(ri, rj)] = min(ri, rj)
    seeded = tuple(
        find(register) if register else 0 for register in range(k + 1)
    )
    neq_edges: Tuple[Tuple[int, int], ...] = ()
    for bit, (i, j) in enumerate(pairs):
        if d_mask >> bit & 1:
            if seeded[i] == seeded[j]:
                return
            neq_edges += ((i, j),)
    yield from extend(0, seeded, neq_edges)


def interval_size(e_mask: int, d_mask: int, k: int) -> int:
    """How many partitions the interval contains (diagnostics/benchmarks)."""
    return len(enumerate_interval_codes(e_mask, d_mask, k))


# ---------------------------------------------------------------------- #
# completion codes: guard completions as integers (the symkernel front)
# ---------------------------------------------------------------------- #
#
# The emptiness pipeline completes guards over the 2k-variable vocabulary
# x1..xk, y1..yk; each completion settles every variable pair and is hence
# a set partition of the vocabulary -- exactly what a pair-bitmask code over
# ``pair_bits(len(vocab))`` describes.  :func:`enumerate_completion_codes`
# lists those codes in the order :meth:`SigmaType.completions` yields the
# corresponding complete types, without constructing a single literal, and
# :func:`decode_completion` rebuilds any one completion literal-for-literal
# (the byte-identity anchor of ``repro.core.symkernel``, the same replay
# trick as :func:`decode_partition_code`).
#
# Validity domain: the guard must settle vocabulary pairs through its
# *equality closure* alone.  Relational literals can prune completion
# branches in ways no pair mask sees (``R(x1) and not R(x2)`` refutes the
# ``x1 = x2`` branch without entailing ``x1 != x2``), so callers must stay
# on equality types -- :func:`guard_completion_search` raises otherwise.
# That is precisely the domain of the emptiness kernel, whose eligibility
# gate requires a relation-free signature.


def completion_masks(delta: "SigmaType", terms: Tuple[Term, ...]) -> Tuple[int, int]:
    """The guard's entailed (equal, distinct) pair masks over *terms*.

    Bit ``b`` of the first mask is set when the guard entails equality of
    the ``b``-th vocabulary pair (in :func:`pair_bits` order over the term
    sequence), bit ``b`` of the second when it entails the disequality.
    Entailment goes through the full literal closure, so chains through
    terms outside the vocabulary are captured.
    """
    closure = delta.closure
    e_mask = 0
    d_mask = 0
    for bit, (i, j) in enumerate(pair_bits(len(terms))):
        left, right = terms[i - 1], terms[j - 1]
        if closure.entails_eq(left, right):
            e_mask |= 1 << bit
        elif closure.entails_neq(left, right):
            d_mask |= 1 << bit
    return e_mask, d_mask


def guard_completion_search(
    delta: "SigmaType", terms: Tuple[Term, ...]
) -> Tuple[Tuple[int, ...], Dict[int, Tuple[Tuple[int, bool], ...]]]:
    """Codes and branch choices of the guard's completions over *terms*.

    Returns ``(codes, choices)``: the partition codes in legacy
    ``completions()`` order, and for each code the ``(pair_bit, positive)``
    decisions the backtracking search made to reach it -- exactly the
    literals the legacy enumeration would have accumulated.  Memoised on
    the type instance per vocabulary (pure integers: interning-mode safe).
    """
    if not delta.is_equality_type():
        raise SpecificationError(
            "completion codes require an equality type, got %r" % (delta,)
        )
    terms = tuple(terms)
    memo = delta.__dict__.setdefault("_completion_codes_memo", {})
    found = memo.get(terms)
    if found is None:
        e_mask, d_mask = completion_masks(delta, terms)
        leaves = tuple(_completion_code_search(e_mask, d_mask, len(terms)))
        codes = tuple(code for code, _ in leaves)
        choices = {code: chosen for code, chosen in leaves}
        # Assigned only after the full (deadline-interruptible) search, so
        # an expiry never poisons the memo with a partial enumeration.
        memo[terms] = found = (codes, choices)
    return found


def enumerate_completion_codes(
    delta: "SigmaType", terms: Tuple[Term, ...]
) -> Tuple[int, ...]:
    """The guard's completion partitions over *terms*, as codes.

    ``enumerate_completion_codes(g, vocab)[n]`` is the partition code of
    ``list(g.completions({}, vocab))[n]``: same completions, same order,
    no :class:`SigmaType` construction.
    """
    return guard_completion_search(delta, terms)[0]


def decode_completion(delta: "SigmaType", code: int, terms: Tuple[Term, ...]) -> "SigmaType":
    """The completion of *delta* whose partition code is *code*.

    Replays the recorded branch choices as literals, so the result carries
    exactly the literal set the legacy enumeration built -- under interning
    it *is* the same object ``completions()`` yields.
    """
    codes, choices = guard_completion_search(delta, tuple(terms))
    chosen = choices.get(code)
    if chosen is None:
        raise SpecificationError(
            "code %d is not a completion of %r over this vocabulary" % (code, delta)
        )
    pairs = pair_bits(len(terms))
    literals = [
        Literal(EqAtom(terms[pairs[bit][0] - 1], terms[pairs[bit][1] - 1]), positive)
        for bit, positive in chosen
    ]
    return delta.with_literals(literals)


def _completion_code_search(
    e_mask: int, d_mask: int, n: int
) -> Iterator[Tuple[int, Tuple[Tuple[int, bool], ...]]]:
    """The completion DFS of ``_enumerate_completions`` over pure masks.

    Seeds a union-find from the entailed equalities and a disequality edge
    set from the entailed disequalities, then branches eq-first on every
    unsettled pair -- the same skip and branch schedule as the legacy
    literal-level search (both branches of an unsettled pair are always
    consistent on an equality type).  Yields ``(code, choices)`` leaves.
    """
    pairs = pair_bits(n)

    def entailed_neq(labels, neq_edges, ri: int, rj: int) -> bool:
        for a, b in neq_edges:
            roots = (labels[a], labels[b])
            if roots == (ri, rj) or roots == (rj, ri):
                return True
        return False

    def extend(bit: int, labels, neq_edges, chosen):
        # One ambient-deadline poll per search node, mirroring the legacy
        # completion enumeration (see ``SigmaType._enumerate_completions``).
        active = current_deadline()
        if active is not None:
            active.check("types.completion_codes")
        while bit < len(pairs):
            i, j = pairs[bit]
            ri, rj = labels[i], labels[j]
            if ri == rj or entailed_neq(labels, neq_edges, ri, rj):
                bit += 1
                continue
            root, other = min(ri, rj), max(ri, rj)
            merged = tuple(root if label == other else label for label in labels)
            yield from extend(bit + 1, merged, neq_edges, chosen + ((bit, True),))
            yield from extend(bit + 1, labels, neq_edges + ((i, j),), chosen + ((bit, False),))
            return
        code = 0
        for index, (i, j) in enumerate(pairs):
            if labels[i] == labels[j]:
                code |= 1 << index
        yield code, chosen

    labels = list(range(n + 1))

    def find(register: int) -> int:
        while labels[register] != register:
            labels[register] = labels[labels[register]]
            register = labels[register]
        return register

    for bit, (i, j) in enumerate(pairs):
        if e_mask >> bit & 1:
            ri, rj = find(i), find(j)
            if ri != rj:
                labels[max(ri, rj)] = min(ri, rj)
    seeded = tuple(find(register) if register else 0 for register in range(n + 1))
    neq_edges: Tuple[Tuple[int, int], ...] = ()
    for bit, (i, j) in enumerate(pairs):
        if d_mask >> bit & 1:
            if seeded[i] == seeded[j]:
                return  # the guard itself is inconsistent: nothing to list
            neq_edges += ((i, j),)
    yield from extend(0, seeded, neq_edges, ())


#: Complete equality x-types per register count (the Bell(k) partitions of
#: {x1..xk}).  Module-level so the tuples stay stable -- and shared --
#: within one interning mode; a mode flip clears the table (the listener
#: below), because handing out types built under the other mode would break
#: the identity-is-equality invariant interned code relies on.
_COMPLETE_X_TYPES: Dict[int, Tuple["SigmaType", ...]] = {}

#: Canonical decode of partition codes (SigmaType values: mode-dependent).
_DECODE_CACHE = ValueCache("logic.decode_partition")

#: Interval membership lists (pure integers: mode-independent, but cheap to
#: rebuild, so the blanket clear below does no harm).
_INTERVAL_CACHE = ValueCache("logic.interval_codes")

#: Bounded transfer-function memos (replaces the per-guard ``__dict__``
#: memo that grew without bound under interning; ``CacheStats`` now sees
#: hit rates and evictions).
_ABSTRACT_SUCCESSORS = ValueCache("logic.abstract_successors", maxsize=65536)
_SUCCESSOR_ATOMS = ValueCache("logic.successor_atoms", maxsize=65536)


register_mode_listener(_COMPLETE_X_TYPES.clear)
register_mode_listener(_DECODE_CACHE.clear)
register_mode_listener(_ABSTRACT_SUCCESSORS.clear)
register_mode_listener(_SUCCESSOR_ATOMS.clear)


def complete_equality_x_types(k: int) -> Tuple["SigmaType", ...]:
    """All complete equality types over ``x1..xk``.

    These are exactly the set partitions of the registers (blocks =
    equality classes, distinct blocks implicitly unequal), so there are
    Bell(k) of them: 1, 2, 5, 15, 52, 203 for k = 1..6.  They form the
    abstract domain of the reachable-configurations dataflow analysis
    (:mod:`repro.analysis.dataflow`): an over-approximation of the
    register configurations reachable at a control state is a *set* of
    these types.

    Enumerated through the partition-code tables, which replay the old
    ``SigmaType().completions`` search exactly -- same types, same order,
    same (canonical) literal sets.
    """
    found = _COMPLETE_X_TYPES.get(k)
    if found is None:
        found = _COMPLETE_X_TYPES[k] = tuple(
            decode_partition_code(code, k)
            for code in enumerate_interval_codes(0, 0, k)
        )
    return found


def guard_x_registers(delta: "SigmaType", k: int) -> Tuple[int, ...]:
    """The registers whose current value the guard actually mentions.

    The sigma-reduction underlying :func:`successor_atoms`: the transfer
    function of a guard depends only on the restriction of the source
    partition to these registers, because non-mentioned registers can
    interact with the guard's terms only through them.
    """
    cache = delta.__dict__.get("_guard_x_registers")
    if cache is None:
        cache = delta.__dict__["_guard_x_registers"] = {}
    found = cache.get(k)
    if found is None:
        mentioned = set()
        for variable in delta.variables:
            decomposed = register_index(variable)
            if decomposed is not None and decomposed[0] == "x" and decomposed[1] <= k:
                mentioned.add(decomposed[1])
        found = cache[k] = tuple(sorted(mentioned))
    return found


def successor_atoms(
    e_mask: int, d_mask: int, delta: "SigmaType", k: int
) -> Tuple[Tuple[int, int], ...]:
    """One-step successor intervals of interval ``(e_mask, d_mask)``.

    The symbolic transfer function: instead of pushing every partition of
    the interval through the guard (Bell(k) conjoin/probe rounds), observe
    that the successor facts depend only on the source partition's
    restriction ``sigma`` to :func:`guard_x_registers`.  Enumerate the
    Bell(|R|) candidate restrictions, keep those some interval member
    realises, and for each consistent ``delta & sigma`` read off the
    entailed (dis)equalities among the ``y``-registers -- which is itself
    an interval over the next position.  Exact: the union of the returned
    intervals equals the set of :func:`abstract_successor_types` results
    over all interval members.
    """
    return _SUCCESSOR_ATOMS.lookup(
        (e_mask, d_mask, delta, k),
        lambda: _successor_atoms(e_mask, d_mask, delta, k),
    )


def _successor_atoms(
    e_mask: int, d_mask: int, delta: "SigmaType", k: int
) -> Tuple[Tuple[int, int], ...]:
    registers = guard_x_registers(delta, k)
    r_pair_bits = [
        (bit, pair)
        for bit, pair in enumerate(pair_bits(k))
        if pair[0] in registers and pair[1] in registers
    ]
    r_mask = 0
    for bit, _pair in r_pair_bits:
        r_mask |= 1 << bit
    results: List[Tuple[int, int]] = []
    seen: Set[Tuple[int, int]] = set()
    for sigma in _partitions_of(registers):
        sigma_mask = 0
        for bit, (i, j) in r_pair_bits:
            if sigma[i] == sigma[j]:
                sigma_mask |= 1 << bit
        closed = closure_mask(e_mask | sigma_mask, k)
        if closed & d_mask:
            continue
        if closed & r_mask != sigma_mask:
            # The interval's equalities coarsen sigma: no member restricts
            # to exactly this partition of the guard registers.
            continue
        literals = [
            Literal(EqAtom(X(i), X(j)), sigma[i] == sigma[j])
            for _bit, (i, j) in r_pair_bits
        ]
        try:
            joint = delta.with_literals(literals)
        except InconsistentTypeError:
            continue
        atom = _y_interval(joint, k)
        if atom not in seen:
            seen.add(atom)
            results.append(atom)
    return tuple(results)


def _partitions_of(registers: Sequence[int]) -> Iterator[Dict[int, int]]:
    """All set partitions of *registers* as register -> block-id maps."""
    if not registers:
        yield {}
        return
    assignment: Dict[int, int] = {}

    def place(index: int, blocks: int) -> Iterator[Dict[int, int]]:
        if index == len(registers):
            yield dict(assignment)
            return
        register = registers[index]
        for block in range(blocks):
            assignment[register] = block
            yield from place(index + 1, blocks)
        assignment[register] = blocks
        yield from place(index + 1, blocks + 1)
        del assignment[register]

    yield from place(0, 0)


def _y_interval(joint: "SigmaType", k: int) -> Tuple[int, int]:
    """The interval of next-position partitions *joint* allows."""
    eq_mask = 0
    neq_mask = 0
    for bit, (i, j) in enumerate(pair_bits(k)):
        positive = Literal(EqAtom(Y(i), Y(j)), True)
        if joint.entails(positive):
            eq_mask |= 1 << bit
        elif joint.entails(positive.negate()):
            neq_mask |= 1 << bit
    return (eq_mask, neq_mask)


def abstract_successor_types(
    phi: SigmaType, delta: SigmaType, k: int
) -> Tuple["SigmaType", ...]:
    """Complete x-types reachable in one *delta*-step from x-type *phi*.

    The transfer function of the reachable-configurations analysis:
    conjoin the guard with the source type, read off every entailed
    (dis)equality between the next-position registers ``y_i`` as an
    interval of partition codes, and decode the interval's members to
    canonical complete types.  Sound over-approximation: if registers
    ``d`` satisfy *phi* and ``(d, d')`` satisfies *delta*, the complete
    equality type of ``d'`` is among the results.  Returns ``()`` exactly
    when ``phi & delta`` is unsatisfiable -- the transition cannot fire
    from any configuration of type *phi*.

    Memoised in a bounded :class:`~repro.foundations.memo.ValueCache`
    keyed ``(phi, delta, k)`` -- shared across structurally equal guards
    under interning, observable through ``CacheStats``, and incapable of
    growing without bound in long-lived processes (the old per-guard
    ``__dict__`` memo was not).
    """
    return _ABSTRACT_SUCCESSORS.lookup(
        (phi, delta, k), lambda: _abstract_successors(phi, delta, k)
    )


def _abstract_successors(
    phi: SigmaType, delta: SigmaType, k: int
) -> Tuple[SigmaType, ...]:
    try:
        joint = delta.conjoin(phi)
    except InconsistentTypeError:
        return ()
    eq_mask, neq_mask = _y_interval(joint, k)
    return tuple(
        decode_partition_code(code, k)
        for code in enumerate_interval_codes(eq_mask, neq_mask, k)
    )


def equality_type(*literals: Literal) -> SigmaType:
    """Build an equality type (convenience wrapper; validates purity).

    >>> from repro.logic import X, Y, eq
    >>> equality_type(eq(X(1), Y(1))).is_equality_type()
    True
    """
    built = SigmaType(literals)
    if not built.is_equality_type():
        raise InconsistentTypeError("equality types may not contain relational literals")
    return built


def agree(delta_now: SigmaType, delta_next: SigmaType, k: int) -> bool:
    """Condition (iii) of symbolic control traces (Section 2).

    ``delta_now`` and ``delta_next`` *agree on the common registers* when
    ``delta_now | y`` is isomorphic to ``delta_next | x`` under ``y_i ->
    x_i``.  The restriction is semantic: we compare what each type *entails*
    about the boundary -- every (dis)equality between the shared registers
    and constants, and every relational fact over them.  (Purely syntactic
    restriction would be wrong for types that settle a boundary atom only
    through entailment, e.g. ``y1 = y2`` via ``x1 = x2, x1 = y1, x2 = y2``.)
    For complete types this decides agreement exactly.
    """
    boundary_now: List[Term] = [Y(i) for i in range(1, k + 1)]
    boundary_next: List[Term] = [X(i) for i in range(1, k + 1)]
    constants = sorted(delta_now.constants | delta_next.constants)

    def atoms(boundary: Sequence[Term], relations: Dict[str, int]):
        terms = list(boundary) + list(constants)
        for a_index in range(len(terms)):
            for b_index in range(a_index + 1, len(terms)):
                yield EqAtom(terms[a_index], terms[b_index])
        for relation in sorted(relations):
            for combo in cartesian_product(terms, repeat=relations[relation]):
                yield RelAtom(relation, combo)

    relations: Dict[str, int] = {}
    for delta in (delta_now, delta_next):
        for literal in delta.literals:
            atom = literal.atom
            if isinstance(atom, RelAtom):
                relations[atom.relation] = len(atom.args)

    for atom_now, atom_next in zip(
        atoms(boundary_now, relations), atoms(boundary_next, relations)
    ):
        # Disagreement means *conflict*: one side entails the atom, the
        # other its negation.  (For complete types every boundary atom is
        # settled on both sides, so this coincides with the paper's
        # isomorphism of restrictions; for partially settled types --
        # e.g. equality-complete guards with open relational atoms -- the
        # run merely has to satisfy the union of both constraints, which
        # is possible exactly when no atom is settled oppositely.)
        pos_now = delta_now.entails(Literal(atom_now, True))
        neg_now = delta_now.entails(Literal(atom_now, False))
        pos_next = delta_next.entails(Literal(atom_next, True))
        neg_next = delta_next.entails(Literal(atom_next, False))
        if (pos_now and neg_next) or (neg_now and pos_next):
            return False
    return True


def project_type(delta: SigmaType, m: int, k: int) -> SigmaType:
    """``delta | m``: restriction of a transition type to registers ``1..m``.

    Used by the projection constructions (Theorem 13 / Theorem 24): keeps
    the literals that only mention ``x1..xm``, ``y1..ym`` and constants.
    """
    allowed: List[Term] = [X(i) for i in range(1, m + 1)] + [Y(i) for i in range(1, m + 1)]
    return delta.restrict(allowed)


def project_type_dataless(delta: SigmaType, m: int) -> SigmaType:
    """Restriction to registers ``1..m`` *and* to pure equality literals.

    Used by Theorem 24, where the projected automaton has no database: the
    result keeps only (dis)equality literals among ``x1..xm, y1..ym``,
    dropping relational literals and anything mentioning constants or
    hidden registers.
    """
    allowed: Set[Term] = set()
    for i in range(1, m + 1):
        allowed.add(X(i))
        allowed.add(Y(i))
    kept = [
        literal
        for literal in delta.literals
        if literal.is_equality() and all(t in allowed for t in literal.terms)
    ]
    return SigmaType(kept, check=False)


def type_uses_only_registers(delta: SigmaType, k: int) -> bool:
    """Check that every variable of *delta* is ``x_i``/``y_i`` with i <= k."""
    for variable in delta.variables:
        decomposed = register_index(variable)
        if decomposed is None:
            return False
        if decomposed[1] > k:
            return False
    return True
