"""Sigma-types: the transition guards of register automata (Section 2).

A *type* is a satisfiable conjunction of literals over a relational
signature, here represented by :class:`SigmaType`.  Types are immutable;
every construction checks satisfiability and raises
:class:`~repro.foundations.errors.InconsistentTypeError` otherwise, matching
the paper's requirement that types be satisfiable.

The module also implements the two pieces of type algebra the paper relies
on throughout:

* **restriction** ``delta | z`` -- the conjunction of the literals of
  ``delta`` using only variables from ``z`` (and constants),
* **completion** -- enumeration of the *complete* types extending a type,
  which settle every equality between variables (and variable/constant
  pairs) and every relational fact over the available terms.  The paper
  warns this is exponential; :meth:`SigmaType.completions` is a lazy
  generator so callers pay only for what they consume.

Finally :func:`agree` implements condition (iii) of symbolic control traces:
two consecutive types agree on the common registers when
``delta_n | y`` equals ``delta_{n+1} | x`` under the renaming ``y_i -> x_i``.
"""

import weakref
from functools import cached_property
from itertools import product as cartesian_product
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.foundations.errors import InconsistentTypeError
from repro.foundations.interning import interning_enabled, register_intern_table
from repro.foundations.resilience import current_deadline
from repro.foundations.stats import cache_stats
from repro.logic.closure import EqualityClosure
from repro.logic.literals import Atom, EqAtom, Literal, RelAtom
from repro.logic.terms import Const, Term, Var, X, Y, register_index


def _substitute_term(term: Term, mapping: Dict[Term, Term]) -> Term:
    return mapping.get(term, term)


def _substitute_literal(literal: Literal, mapping: Dict[Term, Term]) -> Literal:
    atom = literal.atom
    if isinstance(atom, EqAtom):
        new_atom: Atom = EqAtom(
            _substitute_term(atom.left, mapping), _substitute_term(atom.right, mapping)
        )
    else:
        new_atom = RelAtom(atom.relation, tuple(_substitute_term(t, mapping) for t in atom.args))
    return Literal(new_atom, literal.positive)


class SigmaType:
    """A satisfiable conjunction of literals (a "type" in the paper).

    Parameters
    ----------
    literals:
        The conjuncts.  Duplicates are removed; trivial literals ``t = t``
        are dropped.
    check:
        When ``True`` (the default), satisfiability is verified and an
        :class:`InconsistentTypeError` raised on failure.

    Examples
    --------
    The type ``delta_1`` of the paper's Example 1 (``x1 = x2 and x2 = y2``):

    >>> from repro.logic import X, Y, eq
    >>> delta1 = SigmaType([eq(X(1), X(2)), eq(X(2), Y(2))])
    >>> delta1.entails(eq(X(1), Y(2)))
    True

    Types are hash-consed: constructing the same literal set twice (in any
    iteration order) yields one canonical instance, so structural equality
    is usually pointer identity and the cached properties below (closure,
    terms, canonical form) are computed once per *value*.  The table is
    weak -- unreferenced types are collected normally -- and interning can
    be disabled wholesale (``REPRO_INTERN=0``), in which case everything
    still works by structural equality.
    """

    __slots__ = ("_literals", "_hash", "__weakref__", "__dict__")

    _intern_table: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    def __new__(cls, literals: Iterable[Literal] = (), check: bool = True):
        cleaned: Set[Literal] = set()
        for literal in literals:
            atom = literal.atom
            if isinstance(atom, EqAtom) and atom.left == atom.right:
                if literal.positive:
                    continue
                raise InconsistentTypeError("literal %r is trivially false" % (literal,))
            cleaned.add(literal)
        frozen: FrozenSet[Literal] = frozenset(cleaned)
        interning = interning_enabled() and cls is SigmaType
        if interning:
            stats = _SIGMA_STATS
            existing = cls._intern_table.get(frozen)
            if existing is not None:
                stats.hits += 1
                if check and not existing.is_satisfiable():
                    raise InconsistentTypeError(
                        "unsatisfiable type: %s"
                        % ", ".join(sorted(repr(l) for l in cleaned))
                    )
                return existing
            stats.misses += 1
        self = object.__new__(cls)
        self._literals = frozen
        self._hash = hash(frozen)
        if check and not self.closure.is_consistent():
            raise InconsistentTypeError(
                "unsatisfiable type: %s" % ", ".join(sorted(repr(l) for l in cleaned))
            )
        if interning:
            self = cls._intern_table.setdefault(frozen, self)
            _SIGMA_STATS.note_entries(len(cls._intern_table))
        return self

    def __init__(self, literals: Iterable[Literal] = (), check: bool = True):
        # All construction work happens in __new__ so that intern hits skip
        # it entirely; nothing to do here.
        pass

    def __reduce__(self):
        # Unpickling re-enters the interning constructor (check=False: the
        # literals were satisfiable when pickled).
        return (_rebuild_sigma_type, (self.canonical_literals,))

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def literals(self) -> FrozenSet[Literal]:
        return self._literals

    @cached_property
    def closure(self) -> EqualityClosure:
        """The equality closure of the literals (cached)."""
        return EqualityClosure(self._literals)

    @cached_property
    def terms(self) -> FrozenSet[Term]:
        found: Set[Term] = set()
        for literal in self._literals:
            found.update(literal.terms)
        return frozenset(found)

    @cached_property
    def variables(self) -> FrozenSet[Var]:
        return frozenset(t for t in self.terms if isinstance(t, Var))

    @cached_property
    def constants(self) -> FrozenSet[Const]:
        return frozenset(t for t in self.terms if isinstance(t, Const))

    def equality_literals(self) -> List[Literal]:
        return sorted(l for l in self._literals if l.is_equality())

    def relational_literals(self) -> List[Literal]:
        return sorted(l for l in self._literals if l.is_relational())

    def is_equality_type(self) -> bool:
        """Whether the type mentions no relation symbols (Section 2)."""
        return not any(l.is_relational() for l in self._literals)

    # ------------------------------------------------------------------ #
    # logical queries
    # ------------------------------------------------------------------ #

    def is_satisfiable(self) -> bool:
        cached = self.__dict__.get("_satisfiable")
        if cached is None:
            cached = self.__dict__["_satisfiable"] = self.closure.is_consistent()
        return cached

    def entails(self, literal: Literal) -> bool:
        """Whether every model of this type satisfies *literal*."""
        atom = literal.atom
        if isinstance(atom, EqAtom) and atom.left == atom.right:
            return literal.positive
        return self.closure.entails_literal(literal)

    def consistent_with(self, literal: Literal) -> bool:
        """Whether the type plus *literal* is still satisfiable."""
        return EqualityClosure(list(self._literals) + [literal]).is_consistent()

    # ------------------------------------------------------------------ #
    # algebra
    # ------------------------------------------------------------------ #

    def conjoin(self, other: "SigmaType") -> "SigmaType":
        """The conjunction of two types (raises if unsatisfiable)."""
        return SigmaType(self._literals | other._literals)

    def with_literals(self, extra: Iterable[Literal]) -> "SigmaType":
        """This type extended with *extra* literals (raises if unsatisfiable)."""
        return SigmaType(list(self._literals) + list(extra))

    def restrict(self, allowed: Iterable[Term]) -> "SigmaType":
        """The restriction ``delta | allowed``.

        Keeps exactly the literals all of whose *variables* belong to
        *allowed*; constants are always allowed, as in the paper's
        ``delta |_{z}`` notation.
        """
        allowed_set = set(allowed)
        kept = [
            literal
            for literal in self._literals
            if all(t in allowed_set or isinstance(t, Const) for t in literal.terms)
        ]
        return SigmaType(kept, check=False)

    def rename(self, mapping: Dict[Term, Term]) -> "SigmaType":
        """Apply a term substitution (used for the ``y -> x`` shift)."""
        return SigmaType(
            (_substitute_literal(l, mapping) for l in self._literals), check=False
        )

    def x_part(self, k: int) -> "SigmaType":
        """``pi_1(delta)``: the restriction to the x-variables (Theorem 9)."""
        return self.restrict(X(i) for i in range(1, k + 1))

    def y_part(self, k: int) -> "SigmaType":
        """The restriction to the y-variables."""
        return self.restrict(Y(i) for i in range(1, k + 1))

    def shift_y_to_x(self, k: int) -> "SigmaType":
        """``delta | y`` rewritten over the x-variables (for agreement checks)."""
        return self.y_part(k).rename({Y(i): X(i) for i in range(1, k + 1)})

    # ------------------------------------------------------------------ #
    # completeness and completion
    # ------------------------------------------------------------------ #

    def _completion_obligations(
        self, relations: Dict[str, int], variables: Sequence[Var], constants: Sequence[Const]
    ) -> List[Atom]:
        """All atoms a complete type must settle, in deterministic order."""
        obligations: List[Atom] = []
        for left_index, left in enumerate(variables):
            for right in list(variables[left_index + 1 :]) + list(constants):
                obligations.append(EqAtom(left, right))
        terms: List[Term] = list(variables) + list(constants)
        for relation in sorted(relations):
            arity = relations[relation]
            for combo in cartesian_product(terms, repeat=arity):
                obligations.append(RelAtom(relation, combo))
        return obligations

    def is_complete(
        self,
        relations: Dict[str, int],
        variables: Sequence[Var],
        constants: Sequence[Const] = (),
    ) -> bool:
        """Whether the type is complete over the given vocabulary.

        Complete means (Section 2): every relational fact over the terms is
        settled, and every variable/variable and variable/constant equality
        is settled.  Settled is understood modulo entailment, so that e.g.
        ``x1 = x2, x2 = x3`` settles ``x1 = x3``.
        """
        for atom in self._completion_obligations(relations, variables, constants):
            positive = Literal(atom, True)
            if not self.entails(positive) and not self.entails(positive.negate()):
                return False
        return True

    def completions(
        self,
        relations: Dict[str, int],
        variables: Sequence[Var],
        constants: Sequence[Const] = (),
    ) -> Iterator["SigmaType"]:
        """Enumerate the complete types extending this one.

        This is the exponential blow-up the paper mentions; the enumeration
        is a backtracking search that settles one undecided atom at a time
        and prunes inconsistent branches via the equality closure.  The
        result is memoised per value and vocabulary: under interning, two
        structurally equal guards share one completion computation.
        """
        key = (
            tuple(sorted(relations.items())),
            tuple(variables),
            tuple(constants),
        )
        memo = self.__dict__.setdefault("_completions_memo", {})
        found = memo.get(key)
        if found is not None:
            return iter(found)
        memo[key] = found = tuple(
            self._enumerate_completions(relations, variables, constants)
        )
        return iter(found)

    def _enumerate_completions(
        self,
        relations: Dict[str, int],
        variables: Sequence[Var],
        constants: Sequence[Const],
    ) -> Iterator["SigmaType"]:
        obligations = self._completion_obligations(relations, variables, constants)

        def extend(current: SigmaType, index: int) -> Iterator[SigmaType]:
            # One ambient-deadline poll per search node: this enumeration is
            # the exponential blow-up the paper warns about, and the poll is
            # a thread-local read (plus one clock read under a deadline), so
            # even doubly-exponential searches stay interruptible for free.
            # An expiry aborts before the completions memo is assigned, so a
            # partial enumeration never poisons the cache.
            active = current_deadline()
            if active is not None:
                active.check("types.completions")
            while index < len(obligations):
                positive = Literal(obligations[index], True)
                if current.entails(positive) or current.entails(positive.negate()):
                    index += 1
                    continue
                for choice in (positive, positive.negate()):
                    try:
                        candidate = current.with_literals([choice])
                    except InconsistentTypeError:
                        continue
                    yield from extend(candidate, index + 1)
                return
            yield current

        yield from extend(self, 0)

    # ------------------------------------------------------------------ #
    # canonical form, equality, display
    # ------------------------------------------------------------------ #

    @cached_property
    def canonical_literals(self) -> Tuple[Literal, ...]:
        """Sorted literal tuple: the canonical syntactic form."""
        return tuple(sorted(self._literals))

    @cached_property
    def _canonical_reprs(self) -> Tuple[str, ...]:
        """Rendered literals in canonical order (cached: repr/pretty reuse)."""
        return tuple(repr(l) for l in self.canonical_literals)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, SigmaType):
            return NotImplemented
        return self._literals == other._literals

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        found = self.__dict__.get("_repr")
        if found is None:
            if not self._literals:
                found = "SigmaType(true)"
            else:
                found = "SigmaType(%s)" % " and ".join(self._canonical_reprs)
            self.__dict__["_repr"] = found
        return found

    def pretty(self) -> str:
        """A compact single-line rendering, ``true`` for the empty type."""
        found = self.__dict__.get("_pretty")
        if found is None:
            if not self._literals:
                found = "true"
            else:
                found = " & ".join(self._canonical_reprs)
            self.__dict__["_pretty"] = found
        return found


_SIGMA_STATS = cache_stats("intern.SigmaType")
register_intern_table("SigmaType", SigmaType._intern_table)


def _rebuild_sigma_type(literals: Tuple[Literal, ...]) -> SigmaType:
    """Pickle helper: reconstruct (and hence re-intern) a type on load."""
    return SigmaType(literals, check=False)


def x_equality_classes(delta: SigmaType, k: int) -> Dict[int, FrozenSet[int]]:
    """For each register ``i``, the registers forced equal to it *now*.

    ``result[i]`` is ``{m : delta entails x_i = x_m} | {i}`` -- the
    ``~``-class of register ``i`` at the current position.  Cached on the
    type instance (per *k*): a pure function of the guard, queried once
    per trace position by the consistency check and the Lemma 21 tracker
    constructions, where the union-find walks used to dominate.  Under
    interning the memo is shared by every structurally equal guard.
    """
    cache = delta.__dict__.get("_x_classes")
    if cache is None:
        cache = delta.__dict__["_x_classes"] = {}
    found = cache.get(k)
    if found is None:
        closure = delta.closure
        found = cache[k] = {
            i: frozenset(
                m
                for m in range(1, k + 1)
                if m == i or closure.same(X(i), X(m))
            )
            for i in range(1, k + 1)
        }
    return found


def y_successor_images(delta: SigmaType, k: int) -> Dict[int, FrozenSet[int]]:
    """For each register ``l``, the next-position registers it flows into.

    ``result[l] = {m : delta entails x_l = y_m}``.  The one-step image of
    a register set under the guard is the union of these images, which is
    how corridors are advanced position by position.  Cached like
    :func:`x_equality_classes`.
    """
    cache = delta.__dict__.get("_y_images")
    if cache is None:
        cache = delta.__dict__["_y_images"] = {}
    found = cache.get(k)
    if found is None:
        closure = delta.closure
        found = cache[k] = {
            l: frozenset(
                m for m in range(1, k + 1) if closure.same(X(l), Y(m))
            )
            for l in range(1, k + 1)
        }
    return found


def advance_registers(
    delta: SigmaType, members: FrozenSet[int], k: int
) -> FrozenSet[int]:
    """The one-step image of *members* under the guard's corridors."""
    images = y_successor_images(delta, k)
    result: Set[int] = set()
    for l in members:
        result |= images[l]
    return frozenset(result)


#: Complete equality x-types per register count (the Bell(k) partitions of
#: {x1..xk}).  Module-level so the tuples stay stable -- and shared -- even
#: when interning is disabled.
_COMPLETE_X_TYPES: Dict[int, Tuple["SigmaType", ...]] = {}


def complete_equality_x_types(k: int) -> Tuple["SigmaType", ...]:
    """All complete equality types over ``x1..xk``.

    These are exactly the set partitions of the registers (blocks =
    equality classes, distinct blocks implicitly unequal), so there are
    Bell(k) of them: 1, 2, 5, 15, 52, 203 for k = 1..6.  They form the
    abstract domain of the reachable-configurations dataflow analysis
    (:mod:`repro.analysis.dataflow`): an over-approximation of the
    register configurations reachable at a control state is a *set* of
    these types.
    """
    found = _COMPLETE_X_TYPES.get(k)
    if found is None:
        variables = [X(i) for i in range(1, k + 1)]
        found = _COMPLETE_X_TYPES[k] = tuple(
            SigmaType().completions({}, variables)
        )
    return found


def abstract_successor_types(
    phi: SigmaType, delta: SigmaType, k: int
) -> Tuple["SigmaType", ...]:
    """Complete x-types reachable in one *delta*-step from x-type *phi*.

    The transfer function of the reachable-configurations analysis:
    conjoin the guard with the source type, read off every entailed
    (dis)equality between the next-position registers ``y_i``, shift those
    facts to ``x``-variables and enumerate their complete equality
    extensions.  Sound over-approximation: if registers ``d`` satisfy
    *phi* and ``(d, d')`` satisfies *delta*, the complete equality type of
    ``d'`` is among the results.  Returns ``()`` exactly when
    ``phi & delta`` is unsatisfiable -- the transition cannot fire from
    any configuration of type *phi*.

    Memoised on the guard instance per ``(phi, k)`` (shared across
    structurally equal guards under interning, like
    :func:`x_equality_classes`).
    """
    cache = delta.__dict__.get("_abstract_successors")
    if cache is None:
        cache = delta.__dict__["_abstract_successors"] = {}
    found = cache.get((phi, k))
    if found is None:
        found = cache[(phi, k)] = _abstract_successors(phi, delta, k)
    return found


def _abstract_successors(
    phi: SigmaType, delta: SigmaType, k: int
) -> Tuple[SigmaType, ...]:
    try:
        joint = delta.conjoin(phi)
    except InconsistentTypeError:
        return ()
    facts: List[Literal] = []
    for i in range(1, k + 1):
        for j in range(i + 1, k + 1):
            positive = Literal(EqAtom(Y(i), Y(j)), True)
            if joint.entails(positive):
                facts.append(Literal(EqAtom(X(i), X(j)), True))
            elif joint.entails(positive.negate()):
                facts.append(Literal(EqAtom(X(i), X(j)), False))
    # The facts are entailed by a satisfiable type, hence consistent.
    base = SigmaType(facts, check=False)
    variables = [X(i) for i in range(1, k + 1)]
    return tuple(base.completions({}, variables))


def equality_type(*literals: Literal) -> SigmaType:
    """Build an equality type (convenience wrapper; validates purity).

    >>> from repro.logic import X, Y, eq
    >>> equality_type(eq(X(1), Y(1))).is_equality_type()
    True
    """
    built = SigmaType(literals)
    if not built.is_equality_type():
        raise InconsistentTypeError("equality types may not contain relational literals")
    return built


def agree(delta_now: SigmaType, delta_next: SigmaType, k: int) -> bool:
    """Condition (iii) of symbolic control traces (Section 2).

    ``delta_now`` and ``delta_next`` *agree on the common registers* when
    ``delta_now | y`` is isomorphic to ``delta_next | x`` under ``y_i ->
    x_i``.  The restriction is semantic: we compare what each type *entails*
    about the boundary -- every (dis)equality between the shared registers
    and constants, and every relational fact over them.  (Purely syntactic
    restriction would be wrong for types that settle a boundary atom only
    through entailment, e.g. ``y1 = y2`` via ``x1 = x2, x1 = y1, x2 = y2``.)
    For complete types this decides agreement exactly.
    """
    boundary_now: List[Term] = [Y(i) for i in range(1, k + 1)]
    boundary_next: List[Term] = [X(i) for i in range(1, k + 1)]
    constants = sorted(delta_now.constants | delta_next.constants)

    def atoms(boundary: Sequence[Term], relations: Dict[str, int]):
        terms = list(boundary) + list(constants)
        for a_index in range(len(terms)):
            for b_index in range(a_index + 1, len(terms)):
                yield EqAtom(terms[a_index], terms[b_index])
        for relation in sorted(relations):
            for combo in cartesian_product(terms, repeat=relations[relation]):
                yield RelAtom(relation, combo)

    relations: Dict[str, int] = {}
    for delta in (delta_now, delta_next):
        for literal in delta.literals:
            atom = literal.atom
            if isinstance(atom, RelAtom):
                relations[atom.relation] = len(atom.args)

    for atom_now, atom_next in zip(
        atoms(boundary_now, relations), atoms(boundary_next, relations)
    ):
        # Disagreement means *conflict*: one side entails the atom, the
        # other its negation.  (For complete types every boundary atom is
        # settled on both sides, so this coincides with the paper's
        # isomorphism of restrictions; for partially settled types --
        # e.g. equality-complete guards with open relational atoms -- the
        # run merely has to satisfy the union of both constraints, which
        # is possible exactly when no atom is settled oppositely.)
        pos_now = delta_now.entails(Literal(atom_now, True))
        neg_now = delta_now.entails(Literal(atom_now, False))
        pos_next = delta_next.entails(Literal(atom_next, True))
        neg_next = delta_next.entails(Literal(atom_next, False))
        if (pos_now and neg_next) or (neg_now and pos_next):
            return False
    return True


def project_type(delta: SigmaType, m: int, k: int) -> SigmaType:
    """``delta | m``: restriction of a transition type to registers ``1..m``.

    Used by the projection constructions (Theorem 13 / Theorem 24): keeps
    the literals that only mention ``x1..xm``, ``y1..ym`` and constants.
    """
    allowed: List[Term] = [X(i) for i in range(1, m + 1)] + [Y(i) for i in range(1, m + 1)]
    return delta.restrict(allowed)


def project_type_dataless(delta: SigmaType, m: int) -> SigmaType:
    """Restriction to registers ``1..m`` *and* to pure equality literals.

    Used by Theorem 24, where the projected automaton has no database: the
    result keeps only (dis)equality literals among ``x1..xm, y1..ym``,
    dropping relational literals and anything mentioning constants or
    hidden registers.
    """
    allowed: Set[Term] = set()
    for i in range(1, m + 1):
        allowed.add(X(i))
        allowed.add(Y(i))
    kept = [
        literal
        for literal in delta.literals
        if literal.is_equality() and all(t in allowed for t in literal.terms)
    ]
    return SigmaType(kept, check=False)


def type_uses_only_registers(delta: SigmaType, k: int) -> bool:
    """Check that every variable of *delta* is ``x_i``/``y_i`` with i <= k."""
    for variable in delta.variables:
        decomposed = register_index(variable)
        if decomposed is None:
            return False
        if decomposed[1] > k:
            return False
    return True
