"""repro: projection views of register automata.

A faithful, executable reproduction of *Projection Views of Register
Automata* (Segoufin & Vianu, PODS 2020).  See ``README.md`` for the tour
and ``DESIGN.md`` for the theorem-to-module map.

Quick start::

    from repro import (
        RegisterAutomaton, ExtendedAutomaton, GlobalConstraint,
        Signature, SigmaType, X, Y, eq, neq,
        project_register_automaton, check_emptiness, verify,
    )
"""

from repro.automata import BuchiAutomaton, Dfa, Lasso, Nfa, parse_regex
from repro.core.emptiness import EmptinessResult, check_emptiness, has_run
from repro.core.enhanced import (
    EnhancedAutomaton,
    FinitenessConstraint,
    PairSelector,
    TupleInequalityConstraint,
)
from repro.core.extended import (
    ExtendedAutomaton,
    GlobalConstraint,
    eliminate_equality_constraints,
)
from repro.core.lr import (
    is_lr_bounded,
    lr_bound_estimate,
    lr_cover_profile,
    synthesize_register_automaton,
)
from repro.core.projection import (
    equality_tracker_dfa,
    inequality_tracker_dfa,
    project_extended,
    project_register_automaton,
)
from repro.core.pruning import prune_extended, prune_infeasible, pruning_enabled
from repro.core.register_automaton import RegisterAutomaton, Transition
from repro.core.runs import FiniteRun, LassoRun, find_lasso_run, generate_finite_runs
from repro.core.monitor import IngestReport, MonitorMultiplexer, SessionSnapshot
from repro.core.streaming import StreamingChecker, StreamingViolation
from repro.core.symbolic import (
    is_symbolic_control_trace,
    realize_control_trace,
    scontrol_buchi,
    state_trace_buchi,
)
from repro.core.theorem24 import project_with_database
from repro.core.verification import VerificationResult, run_satisfies, verify
from repro.db import Database, Signature
from repro.foundations.resilience import (
    Budget,
    CancellationToken,
    Deadline,
    DeadlineExceeded,
    Outcome,
    OutcomeStatus,
)
from repro.logic import SigmaType, Var, X, Y, eq, neq, nrel, rel
from repro.ltl import LtlFoSentence
from repro.workflows import (
    Stage,
    WorkflowSpec,
    database_hidden_view,
    manuscript_review_workflow,
    role_view,
)

__version__ = "1.0.0"

__all__ = [
    # logic / db
    "SigmaType", "Var", "X", "Y", "eq", "neq", "rel", "nrel",
    "Signature", "Database",
    # automata substrate
    "Lasso", "Nfa", "Dfa", "BuchiAutomaton", "parse_regex",
    # core model
    "RegisterAutomaton", "Transition", "FiniteRun", "LassoRun",
    "find_lasso_run", "generate_finite_runs",
    "StreamingChecker", "StreamingViolation",
    "MonitorMultiplexer", "SessionSnapshot", "IngestReport",
    "ExtendedAutomaton", "GlobalConstraint", "eliminate_equality_constraints",
    "EnhancedAutomaton", "TupleInequalityConstraint", "FinitenessConstraint",
    "PairSelector",
    # symbolic traces
    "scontrol_buchi", "state_trace_buchi", "is_symbolic_control_trace",
    "realize_control_trace",
    # decisions
    "check_emptiness", "has_run", "EmptinessResult",
    "verify", "run_satisfies", "VerificationResult",
    # resilience (deadlines, budgets, outcomes -- docs/ROBUSTNESS.md)
    "Deadline", "DeadlineExceeded", "Budget", "CancellationToken",
    "Outcome", "OutcomeStatus",
    # dataflow-proved pruning
    "prune_infeasible", "prune_extended", "pruning_enabled",
    # projections
    "project_register_automaton", "project_extended", "project_with_database",
    "equality_tracker_dfa", "inequality_tracker_dfa",
    # LR / Theorem 19
    "is_lr_bounded", "lr_bound_estimate", "lr_cover_profile",
    "synthesize_register_automaton",
    # LTL-FO
    "LtlFoSentence",
    # workflows
    "WorkflowSpec", "Stage", "role_view", "database_hidden_view",
    "manuscript_review_workflow",
]
