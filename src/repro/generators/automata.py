"""Random register automata, extended automata and databases.

Guard generation works by sampling a random partition of the variables
``x1..xk, y1..yk`` into equality blocks and asserting equality within
(some) blocks and disequality between (some) block pairs -- every sampled
guard is satisfiable by construction.  Relational literals, when a
signature is supplied, apply relations to randomly chosen variables with a
random polarity, retrying on (rare) unsatisfiable combinations.
"""

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.automata.regex import Regex, any_of, concat, literal, plus, star
from repro.db.database import Database
from repro.db.schema import Signature
from repro.foundations.errors import InconsistentTypeError
from repro.logic.literals import eq, neq, nrel, rel
from repro.logic.terms import Var, X, Y
from repro.logic.types import SigmaType
from repro.core.extended import ExtendedAutomaton, GlobalConstraint
from repro.core.register_automaton import RegisterAutomaton, Transition


def random_equality_type(
    rng: random.Random,
    k: int,
    equality_density: float = 0.5,
    inequality_density: float = 0.3,
) -> SigmaType:
    """A random satisfiable equality type over ``x1..xk, y1..yk``.

    Samples a random partition of the 2k variables; equality literals
    connect (a sampled fraction of) variables within blocks, disequalities
    (a sampled fraction of) block pairs.
    """
    variables: List[Var] = [X(i) for i in range(1, k + 1)] + [Y(i) for i in range(1, k + 1)]
    rng.shuffle(variables)
    blocks: List[List[Var]] = []
    for variable in variables:
        if blocks and rng.random() < 0.5:
            rng.choice(blocks).append(variable)
        else:
            blocks.append([variable])
    literals = []
    for block in blocks:
        for left, right in zip(block, block[1:]):
            if rng.random() < equality_density:
                literals.append(eq(left, right))
    for index_a in range(len(blocks)):
        for index_b in range(index_a + 1, len(blocks)):
            if rng.random() < inequality_density:
                literals.append(
                    neq(rng.choice(blocks[index_a]), rng.choice(blocks[index_b]))
                )
    return SigmaType(literals)


def random_guard(
    rng: random.Random,
    k: int,
    signature: Signature,
    relational_density: float = 0.4,
) -> SigmaType:
    """A random satisfiable guard, with relational literals when possible."""
    base = random_equality_type(rng, k)
    if signature.is_empty() or k == 0:
        return base
    variables = [X(i) for i in range(1, k + 1)] + [Y(i) for i in range(1, k + 1)]
    for relation, arity in sorted(signature.relations.items()):
        if rng.random() >= relational_density:
            continue
        args = tuple(rng.choice(variables) for _ in range(arity))
        maker = rel if rng.random() < 0.7 else nrel
        try:
            base = base.with_literals([maker(relation, *args)])
        except InconsistentTypeError:
            continue
    return base


def random_register_automaton(
    rng: random.Random,
    k: int = 2,
    n_states: int = 3,
    n_transitions: int = 5,
    signature: Signature = None,
    ensure_live: bool = True,
) -> RegisterAutomaton:
    """A random register automaton.

    All states are reachable targets of some transition chain from state 0
    when *ensure_live* (a spanning skeleton is laid first, then extra
    random transitions), so runs usually exist.
    """
    signature = signature or Signature.empty()
    states = ["s%d" % index for index in range(n_states)]
    transitions: List[Transition] = []
    if ensure_live:
        for index in range(n_states):
            source = states[index]
            target = states[(index + 1) % n_states]
            transitions.append(
                Transition(source, random_guard(rng, k, signature), target)
            )
    while len(transitions) < n_transitions:
        source = rng.choice(states)
        target = rng.choice(states)
        transitions.append(Transition(source, random_guard(rng, k, signature), target))
    accepting = {states[0]}
    if n_states > 1 and rng.random() < 0.5:
        accepting.add(rng.choice(states))
    return RegisterAutomaton(
        k=k,
        signature=signature,
        states=states,
        initial={states[0]},
        accepting=accepting,
        transitions=transitions,
    )


def random_constraint_regex(rng: random.Random, states: Sequence) -> Regex:
    """A short random regex over the given states (anchored shapes).

    Shapes: ``a b``, ``a X* b``, ``a X+ b`` with ``X`` a random subset --
    the anchored factor patterns global constraints typically take.
    """
    states = list(states)
    first = literal(rng.choice(states))
    last = literal(rng.choice(states))
    shape = rng.randrange(3)
    if shape == 0:
        return concat(first, last)
    middle_pool = rng.sample(states, k=max(1, rng.randrange(1, len(states) + 1)))
    middle = any_of(middle_pool)
    if shape == 1:
        return concat(first, star(middle), last)
    return concat(first, plus(middle), last)


def random_extended_automaton(
    rng: random.Random,
    k: int = 2,
    n_states: int = 3,
    n_transitions: int = 5,
    n_constraints: int = 2,
    equality_fraction: float = 0.5,
    signature: Signature = None,
) -> ExtendedAutomaton:
    """A random extended automaton with planted global constraints."""
    automaton = random_register_automaton(
        rng, k=k, n_states=n_states, n_transitions=n_transitions, signature=signature
    )
    states = sorted(automaton.states)
    constraints = []
    for _ in range(n_constraints):
        kind = "eq" if rng.random() < equality_fraction else "neq"
        constraints.append(
            GlobalConstraint(
                kind,
                rng.randrange(1, k + 1),
                rng.randrange(1, k + 1),
                random_constraint_regex(rng, states),
            )
        )
    return ExtendedAutomaton(automaton, constraints)


def random_database(
    rng: random.Random,
    signature: Signature,
    domain_size: int = 6,
    facts_per_relation: int = 5,
) -> Database:
    """A random database over *signature* with a small value domain."""
    domain = ["d%d" % index for index in range(domain_size)]
    relations: Dict[str, List[Tuple]] = {}
    for relation, arity in sorted(signature.relations.items()):
        rows = set()
        for _ in range(facts_per_relation):
            rows.add(tuple(rng.choice(domain) for _ in range(arity)))
        relations[relation] = sorted(rows)
    constants = {name: rng.choice(domain) for name in signature.constants}
    return Database(signature, relations=relations, constants=constants)
