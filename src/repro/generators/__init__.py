"""Synthetic instance generators for tests and benchmarks.

The paper has no evaluation section; all experiments in this repository run
on synthetic workloads produced here (see DESIGN.md).  Everything is
deterministic given the ``random.Random`` seed.
"""

from repro.generators.automata import (
    random_database,
    random_equality_type,
    random_extended_automaton,
    random_register_automaton,
)

__all__ = [
    "random_equality_type",
    "random_register_automaton",
    "random_extended_automaton",
    "random_database",
]
