"""The manuscript-review workflow from the paper's introduction.

"The treatment of each paper might be modeled by a set of values that
evolve throughout the workflow, identified by attributes such as paper-id,
author, topic, paper-state, reviewer, review-state.  There might also be an
underlying database, with one relation holding the topic of each paper and
another the topics that each reviewer prefers to review." (Section 1)

:func:`manuscript_review_workflow` builds exactly this: the database
relations are ``PaperTopic(paper, topic)`` and ``Prefers(reviewer,
topic)``; the stages follow submission, reviewer assignment, reviewing
(with a revision loop) and decision; the decision stage loops forever,
making runs infinite as in the formal model.

Role views (Section 1 again): authors do not see the reviewer; under
double-blind reviewing, reviewers do not see the author.  Both are
projection views obtainable with :func:`repro.workflows.views.role_view` /
:func:`database_hidden_view`.
"""

from repro.db.schema import Signature
from repro.workflows.spec import Stage, WorkflowSpec

#: The stable attribute order of the review workflow.
REVIEW_ATTRIBUTES = ["paper", "author", "topic", "reviewer"]


def manuscript_review_workflow(with_database: bool = True) -> WorkflowSpec:
    """The paper's manuscript-review workflow.

    With *with_database* (the default) the reviewer assignment consults
    ``PaperTopic`` and ``Prefers``; without it, the same control skeleton
    is produced with pure (in)equality rules, suitable for the
    database-free view constructions of Sections 4-5.
    """
    signature = (
        Signature(relations={"PaperTopic": 2, "Prefers": 2})
        if with_database
        else Signature.empty()
    )
    spec = WorkflowSpec(
        attributes=REVIEW_ATTRIBUTES,
        stages=[
            Stage("submitted"),
            Stage("under-review"),
            Stage("revising"),
            Stage("decided", recurring=True),
        ],
        signature=signature,
        # Paper ids, authors, topics and reviewers are pairwise distinct
        # entities; declaring this also keeps the view constructions small
        # (see WorkflowSpec._distinctness_literals).
        distinct_attributes=True,
    )

    assign = spec.rule("submitted", "under-review")
    assign.keep("paper", "author", "topic")
    assign.distinct("reviewer'", "author'")  # no self-review
    if with_database:
        assign.lookup("PaperTopic", "paper", "topic")
        assign.lookup("Prefers", "reviewer'", "topic")

    revise = spec.rule("under-review", "revising")
    revise.keep("paper", "author", "topic", "reviewer")

    resubmit = spec.rule("revising", "under-review")
    resubmit.keep("paper", "author", "topic")
    resubmit.distinct("reviewer'", "author'")  # a fresh round may reassign
    if with_database:
        resubmit.lookup("Prefers", "reviewer'", "topic")

    decide = spec.rule("under-review", "decided")
    decide.keep("paper", "author", "topic", "reviewer")

    stay = spec.rule("decided", "decided")
    stay.keep("paper", "author", "topic", "reviewer")

    return spec
