"""Role views of workflows: the paper's projection views, operationalised.

A role sees a subset of the attributes.  :func:`role_view` reorders the
workflow's attributes so the visible ones form a register prefix and applies
the Theorem 13 projection (database-free workflows) to obtain an *extended
automaton* describing exactly the role's view of the runs;
:func:`database_hidden_view` additionally hides the database (Theorem 24),
yielding an *enhanced automaton*.
"""

from dataclasses import dataclass
from typing import List, Sequence

from repro.foundations.errors import SpecificationError
from repro.core.extended import ExtendedAutomaton
from repro.core.enhanced import EnhancedAutomaton
from repro.core.projection import project_register_automaton
from repro.core.theorem24 import project_with_database
from repro.workflows.spec import WorkflowSpec


@dataclass
class RoleView:
    """A computed view: the visible attributes and their automaton.

    ``automaton`` is an :class:`ExtendedAutomaton` (database visible /
    absent) or an :class:`EnhancedAutomaton` (database hidden); its
    register ``i`` holds ``visible_attributes[i-1]``.
    """

    role: str
    visible_attributes: List[str]
    automaton: object


def _split_attributes(spec: WorkflowSpec, hidden: Sequence[str]):
    hidden_set = set(hidden)
    unknown = hidden_set - set(spec.attributes)
    if unknown:
        raise SpecificationError("unknown attributes to hide: %s" % sorted(unknown))
    visible = [a for a in spec.attributes if a not in hidden_set]
    return visible, visible + [a for a in spec.attributes if a in hidden_set]


def role_view(spec: WorkflowSpec, role: str, hidden: Sequence[str]) -> RoleView:
    """The role's view of a database-free workflow (Theorem 13).

    Hides the named attributes; the result's extended automaton has one
    register per remaining attribute and global constraints transporting
    whatever (dis)equalities the hidden attributes enforced.
    """
    if not spec.signature.is_empty():
        raise SpecificationError(
            "role_view projects database-free workflows; use "
            "database_hidden_view to hide the database as well"
        )
    visible, order = _split_attributes(spec, hidden)
    automaton = spec.reordered(order).compile()
    view = project_register_automaton(automaton, len(visible))
    return RoleView(role=role, visible_attributes=visible, automaton=view)


def database_hidden_view(spec: WorkflowSpec, role: str, hidden: Sequence[str]) -> RoleView:
    """The role's view with the database hidden too (Theorem 24)."""
    visible, order = _split_attributes(spec, hidden)
    automaton = spec.reordered(order).compile()
    view = project_with_database(automaton, len(visible))
    return RoleView(role=role, visible_attributes=visible, automaton=view)
