"""Declarative workflow specifications compiled to register automata.

A :class:`WorkflowSpec` models the paper's workflow picture: a record of
named *attributes* (compiled to registers) evolves through *stages*
(compiled to control states) under *transition rules* whose conditions are
(in)equalities among current/next attribute values and (negated) lookups in
database relations.

The compilation is direct: attribute names map to register indices in
declaration order, each rule's conditions become one sigma-type, and the
Buchi condition is "some recurring stage is visited infinitely often".
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.db.schema import Signature
from repro.foundations.errors import InconsistentTypeError, SpecificationError
from repro.logic.literals import Literal, eq, neq, nrel, rel
from repro.logic.terms import Term, X, Y
from repro.logic.types import SigmaType
from repro.core.register_automaton import RegisterAutomaton, Transition


@dataclass(frozen=True)
class Stage:
    """A workflow stage (control state).

    ``recurring`` marks stages the workflow may dwell in forever (they
    become Buchi-accepting); every workflow needs at least one.
    """

    name: str
    recurring: bool = False


@dataclass
class TransitionRule:
    """One workflow step: ``source -> target`` under declarative conditions.

    Conditions are built with the fluent methods and reference attributes
    as ``name`` (current value) or ``name'`` (next value, trailing
    apostrophe) -- e.g. ``keep("paper")`` abbreviates ``paper' = paper``.
    """

    source: str
    target: str
    conditions: List[Literal] = field(default_factory=list)

    # fluent condition builders ----------------------------------------- #

    def keep(self, *attributes: str) -> "TransitionRule":
        """The named attributes keep their value across the step."""
        for attribute in attributes:
            self.conditions.append(("keep", attribute))
        return self

    def equal(self, left: str, right: str) -> "TransitionRule":
        """Attribute references are equal (``"a"`` now, ``"a'"`` next)."""
        self.conditions.append(("eq", left, right))
        return self

    def distinct(self, left: str, right: str) -> "TransitionRule":
        """Attribute references are distinct."""
        self.conditions.append(("neq", left, right))
        return self

    def lookup(self, relation: str, *attributes: str) -> "TransitionRule":
        """The tuple of attribute references is in the database relation."""
        self.conditions.append(("rel", relation, attributes))
        return self

    def no_lookup(self, relation: str, *attributes: str) -> "TransitionRule":
        """The tuple of attribute references is NOT in the relation."""
        self.conditions.append(("nrel", relation, attributes))
        return self

    def changed(self, attribute: str) -> "TransitionRule":
        """The attribute takes a different value at the next step."""
        self.conditions.append(("neq", attribute, attribute + "'"))
        return self


class WorkflowSpec:
    """A declarative data-driven workflow.

    Parameters
    ----------
    attributes:
        Ordered attribute names; their order fixes the register layout
        (attribute ``i`` lives in register ``i+1``), which matters for
        views: hidden attributes must be listed last, or use
        :func:`repro.workflows.views.role_view`, which reorders for you.
    stages:
        The workflow stages; the first listed is the initial stage by
        default (override with ``initial``).
    signature:
        The database schema the rules may query (default: none).

    Examples
    --------
    >>> spec = WorkflowSpec(
    ...     attributes=["paper", "referee"],
    ...     stages=[Stage("submitted"), Stage("reviewed", recurring=True)],
    ... )
    >>> spec.rule("submitted", "reviewed").keep("paper")  # doctest: +ELLIPSIS
    <repro.workflows.spec.TransitionRule object at ...>
    >>> spec.compile().k
    2
    """

    def __init__(
        self,
        attributes: Sequence[str],
        stages: Sequence[Stage],
        signature: Signature = None,
        initial: Iterable[str] = None,
        distinct_attributes: bool = False,
    ):
        if len(set(attributes)) != len(attributes):
            raise SpecificationError("duplicate attribute names")
        self._attributes = list(attributes)
        self._stages = {stage.name: stage for stage in stages}
        if len(self._stages) != len(stages):
            raise SpecificationError("duplicate stage names")
        if not any(stage.recurring for stage in stages):
            raise SpecificationError(
                "at least one stage must be recurring (the Buchi condition)"
            )
        self._signature = signature or Signature.empty()
        self._initial = list(initial) if initial else [stages[0].name]
        for name in self._initial:
            if name not in self._stages:
                raise SpecificationError("unknown initial stage %r" % name)
        self._distinct_attributes = distinct_attributes
        self._rules: List[TransitionRule] = []

    @property
    def attributes(self) -> List[str]:
        return list(self._attributes)

    @property
    def signature(self) -> Signature:
        return self._signature

    @property
    def stages(self) -> List[Stage]:
        """The stages, in declaration order."""
        return list(self._stages.values())

    @property
    def initial_stages(self) -> List[str]:
        """The names of the initial stages."""
        return list(self._initial)

    @property
    def rules(self) -> List[TransitionRule]:
        """The transition rules, in declaration order."""
        return list(self._rules)

    def rule(self, source: str, target: str) -> TransitionRule:
        """Start a new transition rule (returned for fluent condition calls)."""
        for name in (source, target):
            if name not in self._stages:
                raise SpecificationError("unknown stage %r" % name)
        rule = TransitionRule(source, target)
        self._rules.append(rule)
        return rule

    @property
    def distinct_attributes(self) -> bool:
        """Whether every guard carries pairwise attribute disequalities."""
        return self._distinct_attributes

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #

    def compile_rule(self, rule: TransitionRule) -> SigmaType:
        """The guard *rule* compiles to, before distinctness literals.

        Raises :class:`SpecificationError` on unknown attributes or
        relations and :class:`InconsistentTypeError` on contradictory
        conditions -- the granularity the analysis passes report at.
        """
        return self._compile_rule(rule)

    def register_of(self, attribute: str) -> int:
        """The register index (1-based) holding *attribute*."""
        try:
            return self._attributes.index(attribute) + 1
        except ValueError:
            raise SpecificationError("unknown attribute %r" % attribute)

    def _reference(self, reference: str) -> Term:
        """``"a"`` -> x-register of a; ``"a'"`` -> y-register of a."""
        if reference.endswith("'"):
            return Y(self.register_of(reference[:-1]))
        return X(self.register_of(reference))

    def _compile_rule(self, rule: TransitionRule) -> SigmaType:
        literals: List[Literal] = []
        for condition in rule.conditions:
            kind = condition[0]
            if kind == "keep":
                attribute = condition[1]
                literals.append(
                    eq(X(self.register_of(attribute)), Y(self.register_of(attribute)))
                )
            elif kind == "eq":
                literals.append(eq(self._reference(condition[1]), self._reference(condition[2])))
            elif kind == "neq":
                literals.append(neq(self._reference(condition[1]), self._reference(condition[2])))
            elif kind in ("rel", "nrel"):
                relation, attributes = condition[1], condition[2]
                terms = tuple(self._reference(a) for a in attributes)
                literal = rel(relation, *terms) if kind == "rel" else nrel(relation, *terms)
                self._signature.validate_atom(literal.atom)
                literals.append(literal)
            else:
                raise SpecificationError("unknown condition kind %r" % (kind,))
        return SigmaType(literals)

    def _distinctness_literals(self) -> List[Literal]:
        """Pairwise disequalities among attributes, now and next.

        With ``distinct_attributes=True`` every guard carries these; besides
        modelling identifier-like attributes, they settle most variable
        pairs up front, which keeps the completion step of the view
        constructions (Theorem 13 / 24) from blowing up exponentially.
        """
        literals: List[Literal] = []
        count = len(self._attributes)
        for a in range(1, count + 1):
            for b in range(a + 1, count + 1):
                literals.append(neq(X(a), X(b)))
                literals.append(neq(Y(a), Y(b)))
        return literals

    def compile(self) -> RegisterAutomaton:
        """The register automaton implementing this workflow."""
        extra = self._distinctness_literals() if self._distinct_attributes else []
        transitions = []
        for rule in self._rules:
            guard = self._compile_rule(rule)
            if extra:
                try:
                    guard = guard.with_literals(extra)
                except (InconsistentTypeError, SpecificationError) as error:
                    # Only the expected spec-level failures are converted to
                    # a diagnostic; programming errors (AttributeError from
                    # a typo'd field, etc.) propagate as the bugs they are.
                    raise SpecificationError(
                        "rule %s -> %s contradicts distinct_attributes: %s"
                        % (rule.source, rule.target, error)
                    )
            transitions.append(Transition(rule.source, guard, rule.target))
        accepting = {name for name, stage in self._stages.items() if stage.recurring}
        return RegisterAutomaton(
            k=len(self._attributes),
            signature=self._signature,
            states=set(self._stages),
            initial=set(self._initial),
            accepting=accepting,
            transitions=transitions,
        )

    def reordered(self, attribute_order: Sequence[str]) -> "WorkflowSpec":
        """The same workflow with attributes re-declared in the given order.

        Projections always keep a register *prefix*, so views reorder the
        attributes to push the hidden ones to the back.
        """
        if sorted(attribute_order) != sorted(self._attributes):
            raise SpecificationError("attribute_order must be a permutation")
        clone = WorkflowSpec(
            attributes=attribute_order,
            stages=list(self._stages.values()),
            signature=self._signature,
            initial=self._initial,
            distinct_attributes=self._distinct_attributes,
        )
        clone._rules = self._rules  # rules reference attributes by name
        return clone
