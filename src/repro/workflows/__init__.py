"""Data-driven workflows and their role views (the paper's Section 1).

The introduction motivates projection views with database-driven workflows:
a record of named attributes evolves under transition rules that may query
an underlying database, and different user roles see only a subset of the
attributes.  This package provides the declarative layer:

* :mod:`repro.workflows.spec` -- :class:`WorkflowSpec`: attributes, stages
  and rules, compiled to a :class:`~repro.core.RegisterAutomaton`;
* :mod:`repro.workflows.views` -- role views: hide attributes (Theorem 13)
  or attributes plus the whole database (Theorem 24);
* :mod:`repro.workflows.review` -- the manuscript-review workflow from the
  paper's introduction, ready to run.
"""

from repro.workflows.spec import Stage, TransitionRule, WorkflowSpec
from repro.workflows.views import RoleView, database_hidden_view, role_view
from repro.workflows.review import manuscript_review_workflow

__all__ = [
    "WorkflowSpec",
    "Stage",
    "TransitionRule",
    "RoleView",
    "role_view",
    "database_hidden_view",
    "manuscript_review_workflow",
]
