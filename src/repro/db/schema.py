"""Relational signatures (database schemas).

A :class:`Signature` fixes the vocabulary available to a register automaton:
relation symbols with arities and constant symbols.  The empty signature
(``Signature.empty()``) corresponds to automata "without a database", the
setting of Sections 4 and 5 of the paper.
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from repro.foundations.errors import SpecificationError
from repro.logic.literals import RelAtom
from repro.logic.terms import Const


@dataclass(frozen=True)
class Signature:
    """A relational signature: relations with arities, plus constants.

    Parameters
    ----------
    relations:
        Mapping from relation name to arity (a non-negative integer).
    constants:
        Names of the constant symbols.

    Examples
    --------
    >>> sig = Signature(relations={"E": 2, "U": 1}, constants=("root",))
    >>> sig.arity("E")
    2
    >>> sig.const("root")
    ~root
    """

    relations: Dict[str, int] = field(default_factory=dict)
    constants: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for name, arity in self.relations.items():
            if not isinstance(arity, int) or arity < 0:
                raise SpecificationError(
                    "relation %r must have a non-negative integer arity, got %r" % (name, arity)
                )
        if len(set(self.constants)) != len(self.constants):
            raise SpecificationError("duplicate constant symbols in %r" % (self.constants,))
        overlap = set(self.relations) & set(self.constants)
        if overlap:
            raise SpecificationError(
                "names used both as relation and constant: %s" % sorted(overlap)
            )

    @staticmethod
    def empty() -> "Signature":
        """The empty signature (automata without a database)."""
        return Signature()

    def is_empty(self) -> bool:
        """Whether there are neither relations nor constants."""
        return not self.relations and not self.constants

    def has_relation(self, name: str) -> bool:
        return name in self.relations

    def arity(self, name: str) -> int:
        """Arity of relation *name* (raises on unknown relations)."""
        if name not in self.relations:
            raise SpecificationError("unknown relation %r" % name)
        return self.relations[name]

    def const(self, name: str) -> Const:
        """The :class:`Const` term for constant symbol *name*."""
        if name not in self.constants:
            raise SpecificationError("unknown constant symbol %r" % name)
        return Const(name)

    def const_terms(self) -> Tuple[Const, ...]:
        """All constant symbols, as terms, in declaration order."""
        return tuple(Const(name) for name in self.constants)

    def validate_atom(self, atom: RelAtom) -> None:
        """Check a relational atom against the signature."""
        if atom.relation not in self.relations:
            raise SpecificationError("atom %r uses unknown relation" % (atom,))
        expected = self.relations[atom.relation]
        if len(atom.args) != expected:
            raise SpecificationError(
                "atom %r has %d arguments, relation %s has arity %d"
                % (atom, len(atom.args), atom.relation, expected)
            )

    def extend(
        self, relations: Dict[str, int] = None, constants: Iterable[str] = ()
    ) -> "Signature":
        """A new signature with additional relations/constants."""
        merged = dict(self.relations)
        for name, arity in (relations or {}).items():
            if name in merged and merged[name] != arity:
                raise SpecificationError(
                    "relation %r redeclared with a different arity" % name
                )
            merged[name] = arity
        new_constants = tuple(self.constants) + tuple(
            c for c in constants if c not in self.constants
        )
        return Signature(relations=merged, constants=new_constants)

    def __repr__(self) -> str:
        rels = ", ".join("%s/%d" % (n, a) for n, a in sorted(self.relations.items()))
        consts = ", ".join(self.constants)
        return "Signature(%s%s)" % (rels or "-", ("; consts: " + consts) if consts else "")
