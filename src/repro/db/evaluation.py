"""Evaluation of quantifier-free formulas and types over a database.

Given a database ``D``, a quantifier-free formula ``phi(x)`` and a valuation
``a`` for the free variables, this module decides ``D |= phi(a)``
(Section 2).  Types are evaluated as conjunctions of literals; constants are
resolved through the database's constant map.
"""

from typing import Dict, Mapping

from repro.foundations.domain import DataValue
from repro.foundations.errors import EvaluationError
from repro.foundations.interning import register_mode_listener
from repro.db.database import Database
from repro.logic.formulas import And, AtomFormula, FalseFormula, Formula, Not, Or, TrueFormula
from repro.logic.literals import EqAtom, Literal, RelAtom
from repro.logic.terms import Const, Term, Var, x_vars, y_vars
from repro.logic.types import SigmaType

#: A valuation assigns data values to variables.
Valuation = Mapping[Var, DataValue]


def resolve_term(term: Term, database: Database, valuation: Valuation) -> DataValue:
    """The data value denoted by *term* under the database and valuation."""
    if isinstance(term, Const):
        return database.constant_value(term.name)
    if term in valuation:
        return valuation[term]
    raise EvaluationError("no value for variable %r in the valuation" % term)


def evaluate_atom(atom, database: Database, valuation: Valuation) -> bool:
    """Truth of an atom under the database and valuation."""
    if isinstance(atom, EqAtom):
        return resolve_term(atom.left, database, valuation) == resolve_term(
            atom.right, database, valuation
        )
    if isinstance(atom, RelAtom):
        database.signature.validate_atom(atom)
        row = tuple(resolve_term(t, database, valuation) for t in atom.args)
        return database.holds(atom.relation, row)
    raise EvaluationError("unknown atom kind %r" % (atom,))


def evaluate_literal(literal: Literal, database: Database, valuation: Valuation) -> bool:
    """Truth of a literal under the database and valuation."""
    value = evaluate_atom(literal.atom, database, valuation)
    return value if literal.positive else not value


# Memoization of equality-type evaluation.  A type with no relational
# literals and no constants is a pure equality constraint on its variables:
# its truth depends only on *which variable values coincide*, not on the
# database or the values themselves.  Such evaluations are therefore cached
# per type under the valuation's equality pattern -- the tuple mapping each
# variable (in a fixed order, the "shape") to the first-occurrence index of
# its value.  Both the shape and the pattern memo live on the type instance
# itself (``SigmaType`` carries ``__dict__`` precisely for such caches, cf.
# ``closure``), so the hot path never hashes or compares whole types and
# entries die with the type.  With hash-consing the instance *is* the
# value: every construction of a structurally equal guard returns the same
# canonical object, so this per-instance memo silently became a per-value
# memo shared across all construction sites.  Stats are imported lazily:
# ``repro.core`` transitively imports this module, so a top-level import
# would be circular.
_EVAL_STATS = None


def _eval_stats():
    global _EVAL_STATS
    if _EVAL_STATS is None:
        from repro.core.caching import cache_stats

        _EVAL_STATS = cache_stats("db.evaluate_type")
    return _EVAL_STATS


def _guard_shape(delta: SigmaType):
    """The ordered variable tuple of a database-free type, else ``None``."""
    try:
        return delta.__dict__["_evaluation_shape"]
    except KeyError:
        if delta.constants or not delta.is_equality_type():
            shape = None
        else:
            shape = tuple(sorted(delta.variables, key=repr))
        delta.__dict__["_evaluation_shape"] = shape
        return shape


def evaluate_type(delta: SigmaType, database: Database, valuation: Valuation) -> bool:
    """Whether ``D |= delta(valuation)``: all literals hold."""
    shape = _guard_shape(delta)
    if shape is not None:
        try:
            values = [valuation[variable] for variable in shape]
        except KeyError:
            pass  # incomplete valuation: the direct path raises the right error
        else:
            first: Dict = {}
            pattern = tuple(first.setdefault(v, len(first)) for v in values)
            memo = delta.__dict__.get("_evaluation_memo")
            if memo is None:
                memo = delta.__dict__["_evaluation_memo"] = {}
            stats = _eval_stats()
            if pattern in memo:
                stats.hit()
                return memo[pattern]
            stats.miss()
            result = all(
                evaluate_literal(l, database, valuation) for l in delta.literals
            )
            memo[pattern] = result
            stats.note_entries(len(memo))
            return result
    return all(evaluate_literal(l, database, valuation) for l in delta.literals)


def evaluate_formula(formula: Formula, database: Database, valuation: Valuation) -> bool:
    """Truth of a quantifier-free formula under the database and valuation."""
    if isinstance(formula, TrueFormula):
        return True
    if isinstance(formula, FalseFormula):
        return False
    if isinstance(formula, AtomFormula):
        return evaluate_atom(formula.atom, database, valuation)
    if isinstance(formula, Not):
        return not evaluate_formula(formula.operand, database, valuation)
    if isinstance(formula, And):
        return all(evaluate_formula(op, database, valuation) for op in formula.operands)
    if isinstance(formula, Or):
        return any(evaluate_formula(op, database, valuation) for op in formula.operands)
    raise EvaluationError("unknown formula kind %r" % (formula,))


# Register-variable tuples by arity.  ``transition_valuation`` runs once
# per streamed/searched position; building ``Var("x%d" % i)`` there cost a
# string format plus an intern probe per register.  The tuples are tiny and
# the set of arities tinier, so a plain dict memo is the right shape.  The
# cached ``Var`` instances are interned values, so a mode flip clears the
# memos (identity-is-equality would otherwise break across the flip).
_X_VARS: Dict[int, tuple] = {}
_Y_VARS: Dict[int, tuple] = {}

register_mode_listener(_X_VARS.clear)
register_mode_listener(_Y_VARS.clear)


def register_vars(kind: str, count: int) -> tuple:
    """The cached tuple ``(x1..x_count)`` or ``(y1..y_count)``."""
    memo = _X_VARS if kind == "x" else _Y_VARS
    found = memo.get(count)
    if found is None:
        found = memo[count] = x_vars(count) if kind == "x" else y_vars(count)
    return found


def transition_valuation(
    before: tuple, after: tuple, extra: Dict[Var, DataValue] = None
) -> Dict[Var, DataValue]:
    """The valuation sending ``x_i -> before[i-1]`` and ``y_i -> after[i-1]``.

    This is how transition guards are evaluated: *before* holds the register
    contents at the current position, *after* at the next one.  *extra* may
    supply values for additional variables (e.g. LTL-FO globals).
    """
    valuation: Dict[Var, DataValue] = dict(
        zip(register_vars("x", len(before)), before)
    )
    valuation.update(zip(register_vars("y", len(after)), after))
    if extra:
        valuation.update(extra)
    return valuation
