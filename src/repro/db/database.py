"""Finite databases over the data domain.

A :class:`Database` interprets every relation of its signature as a finite
set of tuples over ``D`` and every constant symbol as an element of ``D``.
The *active domain* is the set of values occurring in relations plus the
constants (Section 2).
"""

from typing import Dict, FrozenSet, Iterable, Set, Tuple

from repro.foundations.domain import DataValue
from repro.foundations.errors import SpecificationError
from repro.db.schema import Signature


class Database:
    """A finite relational structure over a :class:`Signature`.

    Parameters
    ----------
    signature:
        The schema this database instantiates.
    relations:
        Mapping from relation name to an iterable of tuples.  Relations
        missing from the mapping are interpreted as empty.
    constants:
        Mapping from constant symbol to its denotation.  Every constant of
        the signature must be given a value.

    Examples
    --------
    >>> sig = Signature(relations={"E": 2, "U": 1})
    >>> db = Database(sig, relations={"E": [("c", "d0")], "U": [("d0",), ("d1",)]})
    >>> sorted(db.active_domain())
    ['c', 'd0', 'd1']
    """

    def __init__(
        self,
        signature: Signature,
        relations: Dict[str, Iterable[Tuple[DataValue, ...]]] = None,
        constants: Dict[str, DataValue] = None,
    ):
        self._signature = signature
        self._relations: Dict[str, FrozenSet[Tuple[DataValue, ...]]] = {}
        provided = relations or {}
        for name in provided:
            if not signature.has_relation(name):
                raise SpecificationError("database populates unknown relation %r" % name)
        for name, arity in signature.relations.items():
            rows = set()
            for row in provided.get(name, ()):
                row = tuple(row)
                if len(row) != arity:
                    raise SpecificationError(
                        "tuple %r has wrong arity for relation %s/%d" % (row, name, arity)
                    )
                rows.add(row)
            self._relations[name] = frozenset(rows)
        self._constants: Dict[str, DataValue] = dict(constants or {})
        missing = set(signature.constants) - set(self._constants)
        if missing:
            raise SpecificationError("constants missing a denotation: %s" % sorted(missing))
        extra = set(self._constants) - set(signature.constants)
        if extra:
            raise SpecificationError("denotations for undeclared constants: %s" % sorted(extra))

    @property
    def signature(self) -> Signature:
        return self._signature

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def tuples(self, relation: str) -> FrozenSet[Tuple[DataValue, ...]]:
        """The finite relation interpreting *relation*."""
        if relation not in self._relations:
            raise SpecificationError("unknown relation %r" % relation)
        return self._relations[relation]

    def holds(self, relation: str, row: Tuple[DataValue, ...]) -> bool:
        """Whether ``relation(row)`` is a fact of this database."""
        return tuple(row) in self.tuples(relation)

    def constant_value(self, name: str) -> DataValue:
        """The denotation of constant symbol *name*."""
        if name not in self._constants:
            raise SpecificationError("unknown constant symbol %r" % name)
        return self._constants[name]

    def active_domain(self) -> FrozenSet[DataValue]:
        """All values occurring in relations, plus the constants."""
        found: Set[DataValue] = set(self._constants.values())
        for rows in self._relations.values():
            for row in rows:
                found.update(row)
        return frozenset(found)

    def size(self) -> int:
        """Total number of facts."""
        return sum(len(rows) for rows in self._relations.values())

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    def with_facts(self, relation: str, rows: Iterable[Tuple[DataValue, ...]]) -> "Database":
        """A new database with extra facts added to *relation*."""
        merged = {name: set(existing) for name, existing in self._relations.items()}
        merged.setdefault(relation, set()).update(tuple(r) for r in rows)
        return Database(self._signature, relations=merged, constants=self._constants)

    def without_facts(self, relation: str, rows: Iterable[Tuple[DataValue, ...]]) -> "Database":
        """A new database with the given facts removed from *relation*."""
        merged = {name: set(existing) for name, existing in self._relations.items()}
        merged[relation] = merged.get(relation, set()) - {tuple(r) for r in rows}
        return Database(self._signature, relations=merged, constants=self._constants)

    def rename_values(self, mapping: Dict[DataValue, DataValue]) -> "Database":
        """Apply an injective value renaming (used by isomorphism arguments)."""
        image = [mapping.get(v, v) for v in self.active_domain()]
        if len(set(image)) != len(image):
            raise SpecificationError("value renaming is not injective on the active domain")
        renamed = {
            name: {tuple(mapping.get(v, v) for v in row) for row in rows}
            for name, rows in self._relations.items()
        }
        consts = {name: mapping.get(v, v) for name, v in self._constants.items()}
        return Database(self._signature, relations=renamed, constants=consts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return (
            self._signature == other._signature
            and self._relations == other._relations
            and self._constants == other._constants
        )

    def __repr__(self) -> str:
        parts = []
        for name in sorted(self._relations):
            rows = sorted(self._relations[name])
            parts.append("%s=%s" % (name, rows))
        for name in sorted(self._constants):
            parts.append("%s:=%r" % (name, self._constants[name]))
        return "Database(%s)" % "; ".join(parts)
