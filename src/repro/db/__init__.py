"""Relational databases over the infinite data domain (Section 2).

A *database schema* (signature) is a finite set of relation symbols with
arities plus finitely many constant symbols.  A *database* maps each relation
to a finite relation over ``D`` and each constant symbol to an element of
``D``.  The automata query databases only through quantifier-free formulas,
implemented in :mod:`repro.db.evaluation`.
"""

from repro.db.database import Database
from repro.db.evaluation import Valuation, evaluate_formula, evaluate_literal, evaluate_type
from repro.db.schema import Signature

__all__ = [
    "Signature",
    "Database",
    "Valuation",
    "evaluate_formula",
    "evaluate_literal",
    "evaluate_type",
]
