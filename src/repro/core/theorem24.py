"""Hiding the database: Theorem 24 (Section 6).

Given a register automaton ``A`` with database schema ``sigma`` and
``m <= k``, Theorem 24 builds an *enhanced* automaton ``B`` with ``m``
registers and **no database** such that ``Reg(B)`` is the union over all
databases ``D`` of ``Pi_m(Reg(D, A))``.  The construction assembles four
constraint families over the normalised (equality-complete, state-driven)
control:

1. **equality constraints** -- the Lemma 21 trackers for kept register
   pairs, exactly as in the database-free projection (Theorem 13);
2. **monadic inequality constraints** -- the Lemma 21 disequality trackers,
   expressed as arity-1 tuple inequality constraints;
3. **relational tuple-inequality constraints** -- for every relation ``R``,
   every (negative occurrence, positive occurrence) pair of ``R``-literals
   and every partition ``(E, F)`` of the components: if the ``E``
   components are corridor-connected between the two anchor positions, the
   tuples of ``F``-component values must differ (otherwise the negative
   literal would deny a fact the positive literal asserts).  ``E``
   corridors are intersections of :func:`~repro.core.projection.corridor_dfa`
   automata; ``F`` components must surface in *visible* registers at the
   anchor positions themselves (offset 0 for x-terms, 1 for y-terms) --
   partitions whose ``F`` components are hidden or constants are skipped,
   which can only make the result more permissive (the ``>=`` inclusion of
   the theorem always holds).  Example 23's binary and ternary variants are
   captured exactly.
4. **finiteness constraints** -- for each kept register, the positions
   whose value is forced into the database's active domain must use
   finitely many values.  The position selector tracks, along the prefix,
   the set of registers whose current value has touched a positive
   relational literal (directly or through an equality corridor); the
   forward half of the paper's MSO-definable ``adom_w`` membership (a value
   that will only *later* be forced into the active domain) is not
   prefix-computable and is documented in DESIGN.md as a relaxation, again
   on the permissive side.
"""

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.automata.dfa import Dfa
from repro.foundations.errors import SpecificationError
from repro.foundations.resilience import current_deadline
from repro.core.caching import ValueCache, agreement
from repro.logic.terms import Const, X, Y, register_index
from repro.logic.types import SigmaType, project_type_dataless
from repro.core.enhanced import (
    EnhancedAutomaton,
    FinitenessConstraint,
    PairSelector,
    TupleInequalityConstraint,
)
from repro.core.extended import EQ, GlobalConstraint
from repro.core.projection import (
    _advance_set,
    _guard_map,
    corridor_dfa,
    equality_tracker_dfa,
    inequality_tracker_dfa,
)
from repro.core.pruning import prune_infeasible
from repro.core.register_automaton import RegisterAutomaton, State, Transition


def _normalize_db(automaton: RegisterAutomaton) -> RegisterAutomaton:
    """Equality-complete + state-driven normal form."""
    result = automaton
    if not result.is_equality_complete():
        result = result.equality_completed()
    if not result.is_state_driven():
        result = result.state_driven()
    return result


def adom_position_dfa(automaton: RegisterAutomaton, register: int) -> Dfa:
    """Prefix DFA selecting positions whose value is in the active domain.

    Position ``h`` is selected when the value of *register* at ``h`` has
    touched a positive relational literal at some position ``<= h``,
    possibly through an equality corridor.  (The backward half of the
    paper's ``adom_w``; see the module docstring.)
    """
    guards = _guard_map(automaton)
    k = automaton.k
    alphabet = frozenset(automaton.states)

    def positive_registers(guard: SigmaType, kind: str) -> FrozenSet[int]:
        closure = guard.closure
        touched: Set[int] = set()
        for literal in guard.relational_literals():
            if not literal.positive:
                continue
            for term in literal.atom.args:
                if isinstance(term, Const):
                    continue
                for r in range(1, k + 1):
                    probe = X(r) if kind == "x" else Y(r)
                    if term == probe or closure.same(term, probe):
                        touched.add(r)
        return frozenset(touched)

    initial = "init"
    transitions: Dict[Tuple, object] = {}
    states: Set = {initial}
    accepting: Set = set()
    worklist: List = []

    def note(state) -> None:
        if state not in states:
            states.add(state)
            worklist.append(state)

    dead = "dead"
    states.add(dead)
    for symbol in alphabet:
        transitions[(dead, symbol)] = dead
        guard = guards.get(symbol)
        if guard is None:
            transitions[(initial, symbol)] = dead
            continue
        touched = positive_registers(guard, "x")
        target = (touched, symbol)
        transitions[(initial, symbol)] = target
        note(target)

    while worklist:
        state = worklist.pop()
        touched, previous = state
        if register in touched:
            accepting.add(state)
        guard = guards[previous]
        carried_y = positive_registers(guard, "y")
        for symbol in alphabet:
            next_guard = guards.get(symbol)
            if next_guard is None:
                transitions[(state, symbol)] = dead
                continue
            carried = _advance_set(guard, touched, k) | carried_y
            new_touched = carried | positive_registers(next_guard, "x")
            target = (frozenset(new_touched), symbol)
            transitions[(state, symbol)] = target
            note(target)
    for state in states:
        if isinstance(state, tuple) and register in state[0]:
            accepting.add(state)
    return Dfa(states, alphabet, transitions, initial, accepting).minimize()


def _literal_occurrences(automaton: RegisterAutomaton):
    """All (state, polarity, relation, args) relational literal occurrences."""
    occurrences = []
    for state in sorted(automaton.states, key=repr):
        guard = automaton.guard_of_state(state)
        if guard is None:
            continue
        for literal in guard.relational_literals():
            occurrences.append(
                (state, literal.positive, literal.atom.relation, literal.atom.args)
            )
    return occurrences


def _checkpoint(site: str) -> None:
    """Poll the ambient deadline (the Theorem 24 assembly is exponential)."""
    active = current_deadline()
    if active is not None:
        active.check(site)


def _term_endpoint(term) -> Optional[Tuple[str, int]]:
    """``("x"|"y", register)`` for register terms, ``None`` for constants."""
    decomposed = register_index(term)
    if decomposed is None:
        return None
    return decomposed


def _visible_anchor(term, m: int) -> Optional[Tuple[int, int]]:
    """(offset, register) when the term is a visible register at its anchor."""
    endpoint = _term_endpoint(term)
    if endpoint is None:
        return None
    kind, register = endpoint
    if register > m:
        return None
    return (0 if kind == "x" else 1, register)


def relational_tuple_constraints(
    automaton: RegisterAutomaton, m: int, universal_prefix
) -> List[TupleInequalityConstraint]:
    """Family 3: tuple inequalities from negative/positive literal pairs."""
    alphabet = frozenset(automaton.states)
    occurrences = _literal_occurrences(automaton)
    negatives = [o for o in occurrences if not o[1]]
    positives = [o for o in occurrences if o[1]]
    # Per-call memo (the automaton changes between calls); stats accumulate
    # under one shared name for the benchmark report.
    corridor_cache = ValueCache("theorem24.corridor")

    def corridor(start, end) -> Dfa:
        return corridor_cache.lookup(
            (start, end), lambda: corridor_dfa(automaton, start, end)
        )

    constraints: List[TupleInequalityConstraint] = []
    for neg_state, _np, relation_n, args_n in negatives:
        for pos_state, _pp, relation_p, args_p in positives:
            # One poll per literal pair: the partition fan-out (2^arity
            # corridor intersections) happens below this boundary.
            _checkpoint("theorem24.literal_pair")
            if relation_n != relation_p:
                continue
            arity = len(args_n)
            components = list(range(arity))
            for e_size in range(0, arity):
                for e_set in combinations(components, e_size):
                    f_set = [c for c in components if c not in e_set]
                    # Both orders of the anchors.
                    for first_args, second_args, first_state, second_state, swap in (
                        (args_n, args_p, neg_state, pos_state, False),
                        (args_p, args_n, pos_state, neg_state, True),
                    ):
                        constraint = _one_tuple_constraint(
                            first_args,
                            second_args,
                            first_state,
                            second_state,
                            e_set,
                            f_set,
                            m,
                            corridor,
                            alphabet,
                            universal_prefix,
                        )
                        if constraint is not None:
                            constraints.append(constraint)
    # Deduplicate structurally identical constraints.  The factor DFA is
    # identified by its structural fingerprint, not by its object id: ids
    # are recycled by the allocator, so two distinct factors could collide
    # (and one be silently dropped) under an id-based key.
    unique: List[TupleInequalityConstraint] = []
    seen: Set[Tuple] = set()
    for constraint in constraints:
        key = (
            constraint.left,
            constraint.right,
            constraint.selector.factor.structural_key(),
        )
        if key not in seen:
            seen.add(key)
            unique.append(constraint)
    return unique


def _one_tuple_constraint(
    first_args,
    second_args,
    first_state,
    second_state,
    e_set,
    f_set,
    m: int,
    corridor,
    alphabet,
    universal_prefix,
) -> Optional[TupleInequalityConstraint]:
    left: List[Tuple[int, int]] = []
    right: List[Tuple[int, int]] = []
    for component in f_set:
        first_anchor = _visible_anchor(first_args[component], m)
        second_anchor = _visible_anchor(second_args[component], m)
        if first_anchor is None or second_anchor is None:
            return None  # hidden / constant F component: inexpressible
        left.append(first_anchor)
        right.append(second_anchor)
    if not left:
        return None  # F empty: a consistency condition, not a run constraint
    factor: Optional[Dfa] = None
    for component in e_set:
        start = _term_endpoint(first_args[component])
        end = _term_endpoint(second_args[component])
        if start is None and end is None:
            # constant-to-constant: connected iff same constant symbol
            if first_args[component] == second_args[component]:
                continue
            return None
        if start is None or end is None:
            return None  # register/constant corridors are not tracked
        component_dfa = corridor(start, end)
        factor = component_dfa if factor is None else factor.intersect(component_dfa).minimize()
    if factor is None:
        factor = Dfa.universal(alphabet)
    # Anchor the factor at the first/second states: the occurrences live in
    # the guards of specific control states, so the factor must start at
    # first_state and end at second_state.
    anchored = _restrict_endpoints(factor, first_state, second_state, alphabet)
    if anchored.is_empty():
        return None
    return TupleInequalityConstraint(
        left=tuple(left),
        right=tuple(right),
        selector=PairSelector(prefix=universal_prefix, factor=anchored),
    )


def _restrict_endpoints(dfa: Dfa, first, last, alphabet) -> Dfa:
    """Intersect with "first letter is *first* and last letter is *last*"."""
    # states: 0 init, 1 ok-first (last letter != last), 2 ok-first+last, 3 dead
    transitions = {}
    for symbol in alphabet:
        if symbol == first:
            transitions[(0, symbol)] = 2 if first == last else 1
        else:
            transitions[(0, symbol)] = 3
        transitions[(1, symbol)] = 2 if symbol == last else 1
        transitions[(2, symbol)] = 2 if symbol == last else 1
        transitions[(3, symbol)] = 3
    shape = Dfa({0, 1, 2, 3}, alphabet, transitions, 0, {2})
    return dfa.intersect(shape).minimize()


def project_with_database(automaton: RegisterAutomaton, m: int) -> EnhancedAutomaton:
    """**Theorem 24**: hide the database and the registers beyond *m*.

    Returns an enhanced automaton ``B`` with ``m`` registers and an empty
    signature such that ``Reg(B)`` equals the union over databases ``D`` of
    ``Pi_m(Reg(D, A))`` -- exactly on the fragment described in the module
    docstring, and always containing it.
    """
    if m > automaton.k:
        raise SpecificationError("cannot keep %d of %d registers" % (m, automaton.k))
    automaton = prune_infeasible(automaton)
    normalised = _normalize_db(automaton)
    from repro.db.schema import Signature
    from repro.automata.regex import any_of, star

    def agreeing(transition):
        source_guard = normalised.guard_of_state(transition.source)
        target_guard = normalised.guard_of_state(transition.target)
        if target_guard is None:
            return True
        return agreement(source_guard, target_guard, normalised.k)

    projected = RegisterAutomaton(
        m,
        Signature.empty(),
        normalised.states,
        normalised.initial,
        normalised.accepting,
        [
            # drop transitions whose full guards disagree on shared
            # registers: dead in the original, alive (and harmful) after
            # projection -- see _agreeing_projected_transitions in
            # repro.core.projection
            Transition(t.source, project_type_dataless(t.guard, m), t.target)
            for t in normalised.transitions
            if agreeing(t)
        ],
    )
    universal_prefix = Dfa.universal(frozenset(normalised.states))

    equality = []
    tuples: List[TupleInequalityConstraint] = []
    for i in range(1, m + 1):
        for j in range(1, m + 1):
            _checkpoint("theorem24.register_pair")
            eq_dfa = equality_tracker_dfa(normalised, i, j)
            if not eq_dfa.is_empty():
                equality.append(GlobalConstraint(EQ, i, j, eq_dfa))
            neq_dfa = inequality_tracker_dfa(normalised, i, j)
            if not neq_dfa.is_empty():
                tuples.append(
                    TupleInequalityConstraint(
                        left=((0, i),),
                        right=((0, j),),
                        selector=PairSelector(prefix=universal_prefix, factor=neq_dfa),
                    )
                )
    tuples.extend(relational_tuple_constraints(normalised, m, universal_prefix))
    finiteness = []
    for i in range(1, m + 1):
        selector = adom_position_dfa(normalised, i)
        if not selector.is_empty():
            finiteness.append(FinitenessConstraint(register=i, selector=selector))
    return EnhancedAutomaton(
        projected,
        equality_constraints=equality,
        tuple_constraints=tuples,
        finiteness_constraints=finiteness,
    )
