"""Symbolic control traces and their realisation (Section 2 end, Theorem 9).

``SControl(A)`` -- the symbolic control traces of a register automaton --
is the omega-regular language of ``(state, type)`` sequences satisfying:

(i)   the first state is initial and some accepting state recurs,
(ii)  consecutive pairs are connected by transitions of ``A``,
(iii) consecutive types agree on the common registers.

:func:`scontrol_buchi` compiles this into a Buchi automaton.  The deep
result ([19], re-proved as stage 1 of Theorem 9) is ``Control(A) =
SControl(A)``: every symbolic trace is realised by a concrete finite
database and run.  :func:`realize_control_trace` implements the witness
construction for lasso-shaped traces.

Realisation strategy (in place of the paper's guarded-logic chase).  The
paper proves existence of a finite witness database via the finite model
property of the guarded sentence ``Psi_A``; for lasso traces we can build
the witness directly.  Unfold the lasso's loop ``m`` times and close it
into a ring; take the equality closure of the guards' equality literals
over (position, register) nodes; give each class a distinct value; emit a
fact for every positive relational literal.  The construction fails only
through *spurious identifications* -- distinct classes of the infinite
unfolding that collide modulo ``m`` periods -- and enlarging ``m`` separates
them: a class spanning more than one period is carried through registers,
hence shift-periodic with period at most ``k`` loop lengths, so ``m =
lcm(1..k)`` already avoids all collisions.  We search ``m`` by iterative
deepening and verify the produced run explicitly, so a returned witness is
always genuine.
"""

from math import gcd
from typing import Dict, List, Optional, Tuple

from repro.automata.buchi import BuchiAutomaton
from repro.automata.words import Lasso
from repro.db.database import Database
from repro.foundations.errors import ReproError, SpecificationError
from repro.foundations.domain import FreshSupply
from repro.logic.closure import UnionFind
from repro.logic.literals import EqAtom, RelAtom
from repro.logic.terms import Const, register_index
from repro.core.caching import AutomatonIndex, agreement
from repro.core.register_automaton import RegisterAutomaton
from repro.core.runs import LassoRun


def control_pairs(automaton: RegisterAutomaton) -> List[Tuple]:
    """The (state, guard) pairs occurring as transition sources."""
    seen = dict.fromkeys((t.source, t.guard) for t in automaton.transitions)
    return list(seen)


def scontrol_buchi(automaton: RegisterAutomaton) -> BuchiAutomaton:
    """The Buchi automaton accepting ``SControl(A)``.

    Symbols and states are both ``(state, guard)`` pairs: the automaton is
    in pair ``P`` at position ``n`` exactly when the trace letter there is
    ``P``, so each transition is labelled by its source pair.
    """
    pairs = control_pairs(automaton)
    pair_set = set(pairs)
    k = automaton.k
    transitions: Dict[Tuple, Dict[Tuple, set]] = {}
    index = AutomatonIndex.of(automaton)
    pairs_by_state: Dict[object, List[Tuple]] = {}
    for pair in pairs:
        pairs_by_state.setdefault(pair[0], []).append(pair)

    for source_state, guard in pairs:
        for transition in index.transitions_with_guard(source_state, guard):
            for next_pair in pairs_by_state.get(transition.target, ()):
                if not agreement(guard, next_pair[1], k):
                    continue
                transitions.setdefault((source_state, guard), {}).setdefault(
                    (source_state, guard), set()
                ).add(next_pair)
    initial = {pair for pair in pair_set if pair[0] in automaton.initial}
    accepting = {pair for pair in pair_set if pair[0] in automaton.accepting}
    return BuchiAutomaton(transitions, initial, accepting)


def state_trace_buchi(automaton: RegisterAutomaton) -> BuchiAutomaton:
    """The Buchi automaton for ``State(A)`` (the homomorphic image).

    For complete automata this equals the paper's omega-regular ``State(A)``
    by [19]; in general it is the image of ``SControl(A)``.
    """
    return scontrol_buchi(automaton).map_symbols(lambda pair: pair[0])


def is_symbolic_control_trace(automaton: RegisterAutomaton, trace: Lasso) -> bool:
    """Membership of a lasso in ``SControl(A)``."""
    return scontrol_buchi(automaton).accepts(trace)


def _lcm_up_to(k: int) -> int:
    value = 1
    for i in range(2, max(k, 1) + 1):
        value = value * i // gcd(value, i)
    return value


class RealizationFailure(ReproError):
    """No data-periodic realisation found within the unfolding budget."""


def realize_control_trace(
    automaton: RegisterAutomaton,
    trace: Lasso,
    max_unfoldings: int = None,
    check_membership: bool = True,
) -> Tuple[Database, LassoRun]:
    """Realise a symbolic lasso trace by a finite database and lasso run.

    This is the constructive content of ``Control(A) = SControl(A)``:
    given ``trace`` in ``SControl(A)``, build ``(D, rho)`` with ``rho`` a
    run of ``A`` over ``D`` whose control trace is ``trace``.

    Raises :class:`SpecificationError` if the trace is not symbolic, and
    :class:`RealizationFailure` if no data-periodic witness is found within
    the unfolding budget.  For *complete* automata the analysis in the
    module docstring rules failures out; with incomplete guards a
    symbolic trace can hide a global (dis)equality clash and be genuinely
    unrealisable, in which case the failure is the correct verdict.
    """
    if check_membership and not is_symbolic_control_trace(automaton, trace):
        raise SpecificationError("the given lasso is not in SControl(A)")
    k = automaton.k
    budget = max_unfoldings
    if budget is None:
        budget = max(4, 2 * _lcm_up_to(k))
    candidates = sorted(set(range(1, min(budget, 6) + 1)) | {_lcm_up_to(k), budget})
    for unfoldings in candidates:
        if unfoldings > budget:
            continue
        witness = _try_realize(automaton, trace, unfoldings)
        if witness is not None:
            database, run = witness
            error = None
            from repro.core.runs import validity_error

            error = validity_error(run, automaton, database)
            if error is not None:
                raise AssertionError("internal realisation bug: %s" % error)
            return database, run
    raise RealizationFailure(
        "no data-periodic witness within %d loop unfoldings for %r" % (budget, trace)
    )


def _try_realize(
    automaton: RegisterAutomaton, trace: Lasso, unfoldings: int
) -> Optional[Tuple[Database, LassoRun]]:
    k = automaton.k
    prefix = trace.prefix
    period = trace.period * unfoldings
    positions = list(prefix) + list(period)
    n = len(positions)
    loop_start = len(prefix)

    def successor(i: int) -> int:
        return loop_start if i + 1 == n else i + 1

    def node(position: int, term) -> object:
        if isinstance(term, Const):
            return ("const", term.name)
        decomposed = register_index(term)
        kind, index = decomposed
        pos = position if kind == "x" else successor(position)
        return (pos, index)

    uf: UnionFind = UnionFind()
    for constant in automaton.signature.constants:
        uf.find(("const", constant))
    for position in range(n):
        for register in range(1, k + 1):
            uf.find((position, register))

    inequalities: List[Tuple[object, object]] = []
    positive_facts: List[Tuple[str, Tuple]] = []
    negative_facts: List[Tuple[str, Tuple]] = []
    for position in range(n):
        _state, guard = positions[position]
        for literal in guard.literals:
            atom = literal.atom
            if isinstance(atom, EqAtom):
                left, right = node(position, atom.left), node(position, atom.right)
                if literal.positive:
                    uf.union(left, right)
                else:
                    inequalities.append((left, right))
            elif isinstance(atom, RelAtom):
                row = tuple(node(position, t) for t in atom.args)
                target = positive_facts if literal.positive else negative_facts
                target.append((atom.relation, row))

    for left, right in inequalities:
        if uf.same(left, right):
            return None  # spurious identification; retry with more unfoldings

    # Assign one fresh value per class.
    supply = FreshSupply(prefix="v")
    values: Dict[object, object] = {}

    def value_of(any_node) -> object:
        root = uf.find(any_node)
        if root not in values:
            values[root] = supply.take()
        return values[root]

    fact_rows = {}
    for relation, row in positive_facts:
        fact_rows.setdefault(relation, set()).add(tuple(value_of(cell) for cell in row))
    for relation, row in negative_facts:
        concrete = tuple(value_of(cell) for cell in row)
        if concrete in fact_rows.get(relation, set()):
            return None  # positive/negative clash; retry with more unfoldings

    constant_map = {
        name: value_of(("const", name)) for name in automaton.signature.constants
    }
    database = Database(automaton.signature, relations=fact_rows, constants=constant_map)
    data = tuple(
        tuple(value_of((position, register)) for register in range(1, k + 1))
        for position in range(n)
    )
    run = LassoRun(
        data=data,
        states=tuple(pair[0] for pair in positions),
        guards=tuple(pair[1] for pair in positions),
        loop_start=loop_start,
    )
    return database, run


def control_equals_scontrol_on_samples(
    automaton: RegisterAutomaton, max_prefix: int = 2, max_cycle: int = 4, limit: int = 25
) -> bool:
    """Empirically confirm ``Control(A) = SControl(A)`` on sampled lassos.

    Enumerates accepted lassos of ``SControl(A)`` within the bounds and
    realises each; returns ``True`` when every sample is realisable.  Used
    by tests and by the E3 benchmark.

    The theorem (and hence this check) applies to *complete* automata: with
    incomplete guards a locally-agreeing trace can hide a global equality/
    disequality clash and have no run, so the automaton is completed first.
    """
    if not automaton.is_complete():
        automaton = automaton.completed()
    buchi = scontrol_buchi(automaton)
    count = 0
    seen = set()
    for lasso in buchi.iter_accepted_lassos(max_cycle, max_prefix):
        if lasso in seen:
            continue
        seen.add(lasso)
        realize_control_trace(automaton, lasso, check_membership=False)
        count += 1
        if count >= limit:
            break
    return True
