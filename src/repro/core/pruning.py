"""Sound pruning of proved-dead control, powered by the dataflow analysis.

Consumers of the reachable-equality-types fixpoint
(:mod:`repro.analysis.dataflow`) inside the core pipeline:

* :func:`prune_infeasible` -- drop states no valid run prefix can reach
  and transitions whose guard is unsatisfiable under every reachable
  register configuration.  Sound for *both* the omega-language and every
  finite run prefix: a valid (finite or lasso) run starts in an initial
  state, so each of its prefixes witnesses concrete reachability of every
  state it visits and fires only feasible transitions -- none of which are
  pruned.  The valid-run set is therefore preserved exactly (asserted
  brute-force in ``tests/test_dataflow.py``).
* :func:`prune_extended` -- the same on an extended automaton; constraint
  DFAs are remapped onto the surviving state alphabet (runs only visit
  surviving states, so the constraint semantics is unchanged).
* :class:`ConstraintNarrowing` -- an incremental prefix filter threaded
  through the candidate-lasso enumeration of
  :meth:`repro.automata.buchi.BuchiAutomaton.iter_accepted_lassos`.  It
  mirrors :func:`repro.core.emptiness.trace_is_consistent` exactly on the
  explored finite word: a global inequality constraint violated *inside*
  the word dooms every lasso extending it (the consistency walk is
  deterministic and reaches the violating position before any cycle-break
  or dead-state break can fire), so the whole enumeration subtree is
  skipped.  Surviving candidates keep their enumeration order, hence the
  verdict and the winning witness trace are identical to the unpruned
  run while ``candidates_checked`` can only shrink.

Everything is gated by the ``REPRO_PRUNE`` environment knob -- read at
call time like ``REPRO_WORKERS`` (never at import), default on,
``REPRO_PRUNE=0`` is the ablation switch used by CI and the benchmarks.

Layering note: this module lives in ``core`` but the analysis lives above
it, so the dataflow import happens lazily inside the functions.
"""

from typing import Iterable, List, Optional, Tuple

from repro.foundations import knobs
from repro.core.caching import dead_states
from repro.core.extended import ExtendedAutomaton, GlobalConstraint, _map_dfa_alphabet
from repro.core.register_automaton import RegisterAutomaton
from repro.logic.types import advance_registers, x_equality_classes

__all__ = [
    "pruning_enabled",
    "prune_infeasible",
    "prune_extended",
    "ConstraintNarrowing",
    "build_narrowing",
]

def pruning_enabled() -> bool:
    """The ``REPRO_PRUNE`` knob, read at call time (default on).

    Mirrors :func:`repro.core.parallel.worker_count`: never cached, so
    tests and the ablation CI job can flip it per call.
    """
    return knobs.value("REPRO_PRUNE")


def prune_infeasible(
    automaton: RegisterAutomaton,
    enabled: Optional[bool] = None,
) -> RegisterAutomaton:
    """Drop abstractly-unreachable states and infeasible transitions.

    Returns the *same object* when nothing is pruned (or pruning is
    disabled, or the analysis declines the automaton), so identity-keyed
    caches downstream stay warm on the common path.
    """
    if enabled is None:
        enabled = pruning_enabled()
    if not enabled or automaton.k == 0:
        return automaton
    from repro.analysis.dataflow import analyze_reachable_types

    types = analyze_reachable_types(automaton)
    if types is None:
        return automaton
    dead_state_set = frozenset(types.unreachable_states())
    infeasible = set(types.infeasible_transitions())
    if not dead_state_set and not infeasible:
        return automaton
    return automaton.restricted(
        automaton.states - dead_state_set,
        (t for t in automaton.transitions if t not in infeasible),
    )


def prune_extended(
    extended: ExtendedAutomaton,
    enabled: Optional[bool] = None,
) -> ExtendedAutomaton:
    """:func:`prune_infeasible` lifted to an extended automaton.

    The surviving automaton has a smaller state alphabet, so constraint
    DFAs (whose alphabet must match the states exactly) are remapped onto
    it; runs of the pruned automaton visit only surviving states, hence
    every constraint accepts/rejects exactly the factors it did before.
    """
    if enabled is None:
        enabled = pruning_enabled()
    pruned = prune_infeasible(extended.automaton, enabled=enabled)
    if pruned is extended.automaton:
        return extended
    constraints = [
        GlobalConstraint(
            constraint.kind,
            constraint.i,
            constraint.j,
            _map_dfa_alphabet(
                extended.constraint_dfa(constraint),
                pruned.states,
                lambda state: state,
            ),
        )
        for constraint in extended.constraints
    ]
    return ExtendedAutomaton(pruned, constraints)


class ConstraintNarrowing:
    """Prefix-monotone infeasibility filter for the lasso enumeration.

    A *filter state* is ``(previous guard, per-constraint thread sets)``;
    each thread ``(dfa state, corridor members)`` is the exact
    configuration :func:`~repro.core.emptiness.trace_is_consistent` would
    hold after walking one constraint from one start position up to the
    current end of the explored word.  :meth:`step` advances every thread
    over the appended ``(state, guard)`` symbol, spawns the thread for the
    new start position, and returns ``None`` -- pruning the enumeration
    subtree -- when some accepting thread carries the constrained register
    in its corridor (the violation the full consistency check would find)
    or when the optional per-state abstract-configuration filter refutes
    the symbol outright.

    All thread bookkeeping uses frozensets queried with order-independent
    predicates, so decisions are identical across hash seeds, interning
    modes and worker counts.
    """

    __slots__ = ("_k", "_constraints", "_dfas", "_dead", "_types", "paths_pruned")

    def __init__(self, extended: ExtendedAutomaton, types=None) -> None:
        self._k = extended.automaton.k
        self._constraints = extended.inequality_constraints()
        self._dfas = [extended.constraint_dfa(c) for c in self._constraints]
        self._dead = [dead_states(dfa) for dfa in self._dfas]
        self._types = types
        self.paths_pruned = 0

    def empty(self) -> Tuple:
        """The filter state before any symbol has been read."""
        return (None, tuple(frozenset() for _ in self._constraints))

    def step(self, fstate: Tuple, symbol) -> Optional[Tuple]:
        """The filter state after appending *symbol*, or ``None`` to prune."""
        state, guard = symbol
        if self._types is not None and not self._types.feasible_from(state, guard):
            self.paths_pruned += 1
            return None
        previous_guard, all_threads = fstate
        k = self._k
        new_threads: List[frozenset] = []
        for index, constraint in enumerate(self._constraints):
            dfa = self._dfas[index]
            dead = self._dead[index]
            accepting = dfa.accepting
            advanced = set()
            for dfa_state, members in all_threads[index]:
                # Mirror of the consistency walk, in its exact order:
                # advance, then dead-break, then violation-check.
                next_state = dfa.delta(dfa_state, state)
                if next_state in dead:
                    continue
                next_members = advance_registers(previous_guard, members, k)
                if next_state in accepting and constraint.j in next_members:
                    self.paths_pruned += 1
                    return None
                advanced.add((next_state, next_members))
            # Spawn the thread for start = the appended position.
            spawn_state = dfa.delta(dfa.initial, state)
            if spawn_state not in dead:
                spawn_members = x_equality_classes(guard, k)[constraint.i]
                if spawn_state in accepting and constraint.j in spawn_members:
                    self.paths_pruned += 1
                    return None
                advanced.add((spawn_state, spawn_members))
            new_threads.append(frozenset(advanced))
        return (guard, tuple(new_threads))


def build_narrowing(
    normalised: ExtendedAutomaton,
    enabled: Optional[bool] = None,
) -> Optional[ConstraintNarrowing]:
    """A :class:`ConstraintNarrowing` for the normalised automaton, or ``None``.

    ``None`` when pruning is disabled or the automaton carries no
    inequality constraints (the emptiness check then has nothing to
    narrow on).  The per-state abstract configurations are attached when
    the dataflow analysis fits its budget; they make the filter also
    refuse symbols whose guard cannot fire from any reachable
    configuration (a no-op on completed automata, where the symbolic
    control graph is already exact, but sound and cheap everywhere).
    """
    if enabled is None:
        enabled = pruning_enabled()
    if not enabled or not normalised.inequality_constraints():
        return None
    from repro.analysis.dataflow import analyze_reachable_types

    types = analyze_reachable_types(normalised.automaton)
    return ConstraintNarrowing(normalised, types)
