"""Incremental (streaming) checking of runs and global constraints.

The paper motivates LR-boundedness by observing that being the projection
of a register automaton means the view's global constraints "can be
enforced entirely by local transitions, in a streaming fashion, at the cost
of additional registers" (Section 5).  This module provides the runtime
counterpart: a :class:`StreamingChecker` consumes a run one position at a
time and reports violations as soon as they are observable:

* **validity**: the next (state, registers) pair must extend the run via an
  existing transition whose guard holds over the database;
* **global equality constraints**: when a constraint factor completes, the
  two endpoint values must be equal -- checkable immediately;
* **global inequality constraints**: likewise, checkable immediately.

The checker keeps, per constraint, the set of live (DFA state, stored
value) threads -- exactly the register discipline of Propositions 6 and 22,
executed directly instead of being compiled into an automaton.  Memory is
O(constraints x DFA states x distinct live values); for LR-bounded
automata the live-value count is bounded (that is Theorem 19's point), and
:attr:`StreamingChecker.peak_threads` reports the high-water mark so the
bound can be observed experimentally (benchmark E11).
"""

from typing import Dict, List, Optional, Set, Tuple

from repro.db.database import Database
from repro.db.evaluation import evaluate_type, transition_valuation
from repro.foundations.domain import DataValue
from repro.foundations.errors import SpecificationError
from repro.foundations.resilience import current_deadline
from repro.core.caching import dead_states
from repro.core.extended import ExtendedAutomaton
from repro.core.register_automaton import State


class StreamingViolation(SpecificationError):
    """Raised (or reported) when the streamed run breaks a rule."""


class StreamingChecker:
    """Feed a run position by position; violations surface immediately.

    Parameters
    ----------
    extended:
        The specification: an extended automaton (possibly with an empty
        constraint set, for pure validity checking).
    database:
        The database the run executes over.
    strict:
        When ``True`` (default), :meth:`feed` raises on violation;
        otherwise it returns the violation message and the checker enters
        a failed state.

    Examples
    --------
    >>> # doctest-style sketch; see tests/test_streaming.py for real use
    >>> # checker = StreamingChecker(extended, database)
    >>> # checker.feed("q1", ("v", "v")); checker.feed("q2", ("w", "v"))
    """

    def __init__(
        self, extended: ExtendedAutomaton, database: Database, strict: bool = True
    ):
        self._extended = extended
        self._automaton = extended.automaton
        self._database = database
        self._strict = strict
        self._position = -1
        self._previous: Optional[Tuple[State, Tuple[DataValue, ...]]] = None
        self._failed: Optional[str] = None
        # per constraint: dict (dfa_state -> set of stored source values)
        self._threads: List[Dict[object, Set[DataValue]]] = [
            {} for _ in extended.constraints
        ]
        self._dfas = [extended.constraint_dfa(c) for c in extended.constraints]
        # Dead-state sets are computed per DFA (one backward BFS each) and
        # cached per DFA *object* -- never in a module-level dict keyed by
        # the DFA's id, which served stale verdicts when object ids were
        # recycled across garbage-collected DFAs.
        self._dead = [dead_states(dfa) for dfa in self._dfas]
        self.peak_threads = 0

    # ------------------------------------------------------------------ #

    @property
    def position(self) -> int:
        """Index of the last consumed position (-1 before the first feed)."""
        return self._position

    @property
    def failed(self) -> Optional[str]:
        """The first violation message, or ``None`` while healthy."""
        return self._failed

    def live_threads(self) -> int:
        """Total live (DFA state, value) threads across constraints."""
        return sum(
            len(values) for threads in self._threads for values in threads.values()
        )

    # ------------------------------------------------------------------ #

    def _fail(self, message: str) -> Optional[str]:
        self._failed = message
        if self._strict:
            raise StreamingViolation(message)
        return message

    def snapshot(self) -> "SessionSnapshot":
        """A compact, picklable capture of this checker's run state.

        The snapshot records everything :meth:`feed` depends on --
        position, last (state, registers) pair, failed status, strictness
        and the live constraint threads -- but *not* the specification or
        database, so it stays small (Theorem 19's register discipline
        bounds the thread count) and cheap to journal.  Restoring it into
        a checker built over the same specification resumes the run
        byte-identically to an uninterrupted feed.
        """
        from repro.core.monitor import SessionSnapshot

        return SessionSnapshot.capture(self)

    def restore(self, snapshot: "SessionSnapshot") -> "StreamingChecker":
        """Adopt *snapshot*'s run state; returns ``self`` for chaining.

        The snapshot must come from a checker over a specification with
        the same register arity and constraint count (a
        :class:`~repro.foundations.errors.SpecificationError` otherwise).
        Strictness travels with the snapshot: a failed non-strict session
        restored into a default (strict) checker keeps *returning* the
        original message instead of suddenly raising.
        """
        snapshot.apply(self)
        return self

    def feed(self, state: State, registers: Tuple[DataValue, ...]) -> Optional[str]:
        """Consume the next run position.

        Returns ``None`` when everything checks out, the violation message
        otherwise (or raises it, in strict mode).
        """
        if self._failed is not None:
            # Stay failed, reporting the *original* message verbatim on
            # every further feed -- without re-entering _fail, whose
            # re-assignment path is for first failures only.  Restored
            # snapshots rely on this: a post-violation snapshot resumes
            # into a checker that keeps answering exactly as the
            # uninterrupted one would.
            if self._strict:
                raise StreamingViolation(self._failed)
            return self._failed
        registers = tuple(registers)
        if len(registers) != self._automaton.k:
            return self._fail(
                "position %d: register tuple arity %d, expected %d"
                % (self._position + 1, len(registers), self._automaton.k)
            )
        self._position += 1
        position = self._position

        # -- validity ---------------------------------------------------- #
        if position == 0:
            if state not in self._automaton.initial:
                return self._fail("position 0: state %r is not initial" % (state,))
        else:
            previous_state, previous_registers = self._previous
            valuation = transition_valuation(previous_registers, registers)
            for transition in self._automaton.transitions_between(previous_state, state):
                if evaluate_type(transition.guard, self._database, valuation):
                    break
            else:
                return self._fail(
                    "position %d: no transition %r -> %r consistent with the data"
                    % (position, previous_state, state)
                )
        self._previous = (state, registers)

        # -- constraints -------------------------------------------------- #
        for index, constraint in enumerate(self._extended.constraints):
            dfa = self._dfas[index]
            threads = self._threads[index]
            advanced: Dict[object, Set[DataValue]] = {}
            for dfa_state, values in threads.items():
                target = dfa.delta(dfa_state, state)
                advanced.setdefault(target, set()).update(values)
            # spawn a thread for this position as a factor start
            start = dfa.delta(dfa.initial, state)
            advanced.setdefault(start, set()).add(registers[constraint.i - 1])
            # check acceptance: completed factors relate stored sources to
            # the current value of register j
            current = registers[constraint.j - 1]
            for dfa_state in advanced:
                if dfa_state not in dfa.accepting:
                    continue
                sources = advanced[dfa_state]
                if constraint.kind == "eq":
                    bad = [v for v in sources if v != current]
                    if bad:
                        return self._fail(
                            "position %d: equality constraint %r expects %r, saw %r"
                            % (position, constraint, sorted(map(repr, bad))[0], current)
                        )
                else:
                    if current in sources:
                        return self._fail(
                            "position %d: inequality constraint %r violated by %r"
                            % (position, constraint, current)
                        )
            # drop threads parked in dead states (no accepting reachable)
            dead = self._dead[index]
            self._threads[index] = {
                s: vs for s, vs in advanced.items() if s not in dead
            }
        self.peak_threads = max(self.peak_threads, self.live_threads())
        return None

    def feed_run(self, run) -> Optional[str]:
        """Consume a whole :class:`FiniteRun` (states + data only).

        Polls the ambient deadline once per position: runs can be
        arbitrarily long, and a whole-run replay inside a deadline scope
        (e.g. witness validation during an emptiness check) must stay
        interruptible.
        """
        for state, registers in zip(run.states, run.data):
            active = current_deadline()
            if active is not None:
                active.check("streaming.feed_run")
            message = self.feed(state, registers)
            if message is not None:
                return message
        return None
