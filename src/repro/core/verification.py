"""LTL-FO verification of (extended) register automata (Theorem 12).

``A |= forall z . phi_f`` holds when every run of ``A`` on every database
satisfies the LTL-FO sentence under every valuation of the global variables
``z``.  The decision procedure follows the paper:

1. **global-variable elimination** -- each ``z`` variable becomes an extra
   register that is propagated unchanged through every transition, so each
   run carries a candidate valuation;
2. the control is normalised (complete + state-driven) so each position's
   complete type settles the truth of every proposition
   (:func:`repro.ltl.ltlfo.evaluate_formula_under_type`);
3. the negated property is translated to a Buchi automaton
   (:func:`repro.ltl.translation.ltl_to_buchi`) and intersected with the
   ``SControl`` automaton, whose letters are mapped to truth assignments;
4. an accepted lasso of the product is a *symbolic* counterexample; it is
   a genuine one iff it is realisable (consistency + bounded cliques,
   exactly as in :mod:`repro.core.emptiness`).  Without global constraints
   every symbolic trace is realisable and the procedure is exact Buchi
   emptiness; with constraints, candidate counterexamples are enumerated
   under bounds and the "verified" verdict records the bound.

Concrete-run checking (:func:`run_satisfies`) is also provided: it
evaluates the sentence semantically on a lasso run over a database, serving
as the ground-truth oracle in tests and benchmarks.
"""

from dataclasses import dataclass
from itertools import product as cartesian_product
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.automata.buchi import BuchiAutomaton
from repro.automata.words import Lasso
from repro.db.database import Database
from repro.db.evaluation import evaluate_formula, transition_valuation
from repro.foundations.domain import FreshSupply
from repro.foundations.errors import SpecificationError
from repro.logic.literals import eq as lit_eq
from repro.logic.terms import Var, X, Y
from repro.logic.types import SigmaType
from repro.ltl.ltlfo import LtlFoSentence, proposition_assignment
from repro.ltl.syntax import Not_, satisfies
from repro.ltl.translation import ltl_to_buchi
from repro.core.caching import ValueCache
from repro.core.emptiness import (
    EmptinessWitness,
    _normalize_for_analysis,
    trace_has_bounded_cliques,
    trace_is_consistent,
)
from repro.core.extended import ExtendedAutomaton
from repro.core.pruning import build_narrowing, prune_extended
from repro.core.register_automaton import RegisterAutomaton, Transition
from repro.core.runs import LassoRun
from repro.core.symbolic import scontrol_buchi


def add_global_registers(
    extended: ExtendedAutomaton, global_vars: Sequence[Var]
) -> Tuple[ExtendedAutomaton, Dict[Var, int]]:
    """Eliminate LTL-FO global variables by frozen extra registers.

    Returns the augmented automaton and the mapping from each global
    variable to the register index now holding its value.  The new
    registers are propagated unchanged (``x_r = y_r`` in every guard), so
    each run fixes one valuation; universality over valuations becomes
    universality over runs.
    """
    if not global_vars:
        return extended, {}
    automaton = extended.automaton
    k = automaton.k
    mapping = {var: k + offset for offset, var in enumerate(global_vars, start=1)}
    freeze = [lit_eq(X(index), Y(index)) for index in mapping.values()]
    transitions = [
        Transition(t.source, t.guard.with_literals(freeze), t.target)
        for t in automaton.transitions
    ]
    augmented = RegisterAutomaton(
        k + len(global_vars),
        automaton.signature,
        automaton.states,
        automaton.initial,
        automaton.accepting,
        transitions,
    )
    return ExtendedAutomaton(augmented, extended.constraints), mapping


def _rewrite_sentence(sentence: LtlFoSentence, mapping: Dict[Var, int]) -> LtlFoSentence:
    """Rewrite global variables as their register x-variables."""
    if not mapping:
        return sentence
    from repro.logic.formulas import And, AtomFormula, FalseFormula, Not, Or, TrueFormula
    from repro.logic.literals import EqAtom, RelAtom

    def sub_term(term):
        if isinstance(term, Var) and term in mapping:
            return X(mapping[term])
        return term

    def sub(formula):
        if isinstance(formula, (TrueFormula, FalseFormula)):
            return formula
        if isinstance(formula, AtomFormula):
            atom = formula.atom
            if isinstance(atom, EqAtom):
                return AtomFormula(EqAtom(sub_term(atom.left), sub_term(atom.right)))
            return AtomFormula(RelAtom(atom.relation, tuple(sub_term(t) for t in atom.args)))
        if isinstance(formula, Not):
            return Not(sub(formula.operand))
        if isinstance(formula, And):
            return And(tuple(sub(op) for op in formula.operands))
        if isinstance(formula, Or):
            return Or(tuple(sub(op) for op in formula.operands))
        raise SpecificationError("unknown formula node %r" % (formula,))

    return LtlFoSentence(
        skeleton=sentence.skeleton,
        propositions={name: sub(f) for name, f in sentence.propositions.items()},
        global_vars=(),
    )


@dataclass
class VerificationResult:
    """Outcome of :func:`verify`.

    ``holds`` is the verdict; ``exact`` records whether it is unconditional
    (see the module docstring); ``counterexample`` is an
    :class:`EmptinessWitness` for the violating trace when ``holds`` is
    ``False``.
    """

    holds: bool
    exact: bool
    counterexample: Optional[EmptinessWitness] = None
    product_size: int = 0
    candidates_checked: int = 0


def verify(
    extended: ExtendedAutomaton,
    sentence: LtlFoSentence,
    max_prefix: int = 2,
    max_cycle: int = 6,
    max_candidates: int = 5000,
) -> VerificationResult:
    """Decide ``A |= sentence`` (Theorem 12).

    Accepts a plain :class:`RegisterAutomaton` wrapped in an
    :class:`ExtendedAutomaton` with no constraints (then the answer is
    exact) or a genuinely extended automaton (then a "verified" answer is
    certified up to the enumeration bounds; counterexamples are always
    exact).
    """
    augmented, mapping = add_global_registers(extended, sentence.global_vars)
    grounded = _rewrite_sentence(sentence, mapping)
    # Sound under REPRO_PRUNE (default on): pruning preserves the valid-run
    # set exactly, hence the set of genuine counterexamples; REPRO_PRUNE=0
    # reproduces the unpruned product byte for byte.
    augmented = prune_extended(augmented)
    normalised = _normalize_for_analysis(augmented)
    automaton = normalised.automaton

    trace_buchi = scontrol_buchi(automaton)
    negated, _props = ltl_to_buchi(Not_(grounded.skeleton))

    # Lift the property automaton to read (state, guard) letters directly.
    # Local to this call: the assignments depend on *grounded*.
    assignment_cache = ValueCache("verification.assignment")

    def assignment(pair) -> FrozenSet[str]:
        guard = pair[1]
        return assignment_cache.lookup(
            guard, lambda: proposition_assignment(grounded, guard)
        )

    letters = {pair for pair in trace_buchi.symbols()}
    lifted_transitions: Dict = {}
    for state in negated.states():
        for letter in letters:
            targets = negated.successors(state, assignment(letter))
            if targets:
                lifted_transitions.setdefault(state, {})[letter] = set(targets)
    lifted = BuchiAutomaton(lifted_transitions, negated.initial, negated.accepting)

    product = trace_buchi.intersect(lifted)
    size = product.size()

    if not normalised.constraints:
        lasso = product.find_accepted_lasso()
        if lasso is None:
            return VerificationResult(holds=True, exact=True, product_size=size)
        witness = EmptinessWitness(lasso, normalised, extended, extended.k)
        return VerificationResult(
            holds=False, exact=True, counterexample=witness, product_size=size,
            candidates_checked=1,
        )

    checked = 0
    seen: Set[Lasso] = set()
    # The same subsumption-backed frontier the emptiness check threads
    # through its enumeration: product letters are (state, guard) symbols
    # of the normalised control, exactly what the filter expects.  It only
    # skips candidates trace_is_consistent would reject, so the verdict
    # and the winning counterexample are unchanged.
    narrow = build_narrowing(normalised)
    for lasso in product.iter_accepted_lassos(max_cycle, max_prefix, narrow=narrow):
        if lasso in seen:
            continue
        seen.add(lasso)
        checked += 1
        if checked > max_candidates:
            break
        if not trace_is_consistent(normalised, lasso):
            continue
        if not trace_has_bounded_cliques(normalised, lasso):
            continue
        witness = EmptinessWitness(lasso, normalised, extended, extended.k)
        return VerificationResult(
            holds=False,
            exact=True,
            counterexample=witness,
            product_size=size,
            candidates_checked=checked,
        )
    exact = product.find_accepted_lasso() is None
    return VerificationResult(
        holds=True, exact=exact, product_size=size, candidates_checked=checked
    )


# ---------------------------------------------------------------------- #
# concrete-run semantics (ground truth)
# ---------------------------------------------------------------------- #


def run_satisfies(
    sentence: LtlFoSentence, run: LassoRun, database: Database
) -> bool:
    """Semantic satisfaction of an LTL-FO sentence by a concrete lasso run.

    Evaluates each proposition at each position from the actual data values
    and the database, then checks the LTL skeleton with the lasso oracle.
    Global variables are universally quantified; because the run and the
    database contain finitely many values, it suffices to check valuations
    drawn from the active domain, the run's values, and one fresh value
    (two indistinguishable fresh values behave identically).
    """
    relevant: Set = set(database.active_domain())
    for row in run.data:
        relevant.update(row)
    supply = FreshSupply(used=relevant)
    candidates = sorted(relevant, key=repr) + [supply.take()]

    def position_assignment(position: int, valuation: Dict[Var, object]) -> FrozenSet[str]:
        nxt = run.successor(position)
        base = transition_valuation(run.data[position], run.data[nxt], dict(valuation))
        return frozenset(
            name
            for name, formula in sentence.propositions.items()
            if evaluate_formula(formula, database, base)
        )

    n = len(run.states)
    for values in cartesian_product(candidates, repeat=len(sentence.global_vars)):
        valuation = dict(zip(sentence.global_vars, values))
        letters = [position_assignment(p, valuation) for p in range(n)]
        word = Lasso(tuple(letters[: run.loop_start]), tuple(letters[run.loop_start :]))
        if not satisfies(word, sentence.skeleton):
            return False
    return True
