"""Lifetime-safe caching and indexing for the automata hot paths.

The streaming checker, the run searches and the projection pipeline all
memoize intermediate results (dead-state sets, transition lookups, guard
agreement, compiled constraint DFAs).  Before this module existed, each
site rolled its own dict -- two of them keyed by the object's ``id``,
which is unsound: CPython recycles the ids of garbage-collected objects,
so a cache entry for a dead DFA could be served for a brand-new one (the
flaky ``test_inequality_constraint_streamed`` failure).  This module
centralises the discipline:

* **value-keyed caches** (:class:`ValueCache`) for keys with structural
  equality (guards, state pairs, structural DFA fingerprints);
* **lifetime-bound caches** (:func:`cached_method`, the weak registries of
  :class:`AutomatonIndex` and :func:`dead_states`) where the cache entry
  cannot outlive the object it describes, because the object itself is the
  ``WeakKeyDictionary`` key -- never its ``id``;
* **observability** (:class:`CacheStats`) so benchmarks can report cache
  effectiveness (hits, misses, evictions, peak entries) alongside timings.

The hard rule enforced by CI: no cache in ``src/`` may key on object ids.

**Key discipline after the hash-consing kernel** (PR 3).  The logic values
that dominate cache keys -- ``SigmaType``, ``Literal``, terms -- are
interned (:mod:`repro.foundations.interning`) and carry their hash from
construction.  A ``ValueCache`` probe on such keys therefore costs an O(1)
cached-hash mix plus (on the usual path) a pointer-identity comparison:
value keying and identity keying have converged, without ever touching
``id()``.  Correctness never depends on interning: a non-interned key
(built under ``REPRO_INTERN=0`` or unpickled by other means) still hashes
and compares structurally and hits the same entries.

Stats live in :mod:`repro.foundations.stats` and :class:`ValueCache` /
:func:`clear_value_caches` in :mod:`repro.foundations.memo` (so the logic
kernel below ``repro.core`` can use both without an import cycle); this
module re-exports them all for backwards compatibility.
"""

import weakref
from functools import wraps
from typing import Callable, Dict, FrozenSet, Optional, Tuple

from repro.foundations.memo import ValueCache, clear_value_caches
from repro.foundations.stats import (
    CacheStats,
    all_cache_stats,
    cache_stats,
    reset_cache_stats,
)

__all__ = [
    "CacheStats",
    "cache_stats",
    "all_cache_stats",
    "reset_cache_stats",
    "ValueCache",
    "clear_value_caches",
    "cached_method",
    "AutomatonIndex",
    "dead_states",
    "agreement",
]


def cached_method(name: Optional[str] = None, key: Optional[Callable] = None):
    """Memoize a method per instance, without pinning the instance.

    The memo lives in a ``WeakKeyDictionary`` keyed by the instance itself
    (so entries die with the instance and two instances never share
    verdicts) and, per instance, in a plain dict keyed by the argument
    tuple (or ``key(*args)`` when given).  Hit/miss counters are shared
    across instances under one stats name.
    """

    def decorate(fn):
        stats = cache_stats(name or "%s.%s" % (fn.__module__, fn.__qualname__))
        store: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

        @wraps(fn)
        def wrapper(self, *args):
            memo = store.get(self)
            if memo is None:
                memo = store[self] = {}
            cache_key = args if key is None else key(*args)
            if cache_key in memo:
                stats.hit()
                return memo[cache_key]
            stats.miss()
            value = fn(self, *args)
            memo[cache_key] = value
            stats.note_entries(len(memo))
            return value

        wrapper.__cache_stats__ = stats
        return wrapper

    return decorate


# ---------------------------------------------------------------------- #
# automaton indexing
# ---------------------------------------------------------------------- #


def _group(transitions: Tuple, key: Callable) -> Dict:
    table: Dict[object, List] = {}
    for transition in transitions:
        table.setdefault(key(transition), []).append(transition)
    return {k: tuple(ts) for k, ts in table.items()}


class AutomatonIndex:
    """Transition tables for one :class:`RegisterAutomaton`.

    Three groupings, each built lazily on first use (normalisation
    pipelines create many short-lived intermediate automata that only ever
    ask one kind of question):

    * ``transitions_from(source)`` -- the classic by-source grouping,
    * ``transitions_between(source, target)`` -- the (source, target) table
      the streaming validity check needs (it previously re-scanned the
      by-source list filtering on ``target`` at every fed position), and
    * ``transitions_with_guard(source, guard)`` -- the grouping the
      ``SControl`` compilation filters by.

    Indexes are cached per automaton *object* in a ``WeakKeyDictionary``
    (:meth:`of`), so they die with the automaton and can never be served
    for a different one.  The index itself holds only the transition
    tuple, not the automaton, so no reference cycle is created.
    """

    __slots__ = (
        "_transitions",
        "_by_source",
        "_by_source_target",
        "_by_source_guard",
        "__weakref__",
    )

    _instances: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    def __init__(self, transitions: Tuple):
        self._transitions = tuple(transitions)
        self._by_source: Optional[Dict] = None
        self._by_source_target: Optional[Dict] = None
        self._by_source_guard: Optional[Dict] = None

    @classmethod
    def of(cls, automaton) -> "AutomatonIndex":
        """The index for *automaton*, built once per automaton object."""
        stats = cache_stats("core.automaton_index")
        index = cls._instances.get(automaton)
        if index is not None:
            stats.hit()
            return index
        stats.miss()
        index = cls(automaton.transitions)
        cls._instances[automaton] = index
        stats.note_entries(len(cls._instances))
        return index

    def transitions_from(self, source) -> Tuple:
        """All transitions whose source is *source*."""
        table = self._by_source
        if table is None:
            table = self._by_source = _group(self._transitions, lambda t: t.source)
        return table.get(source, ())

    def transitions_between(self, source, target) -> Tuple:
        """All transitions from *source* to *target*."""
        table = self._by_source_target
        if table is None:
            table = self._by_source_target = _group(
                self._transitions, lambda t: (t.source, t.target)
            )
        return table.get((source, target), ())

    def transitions_with_guard(self, source, guard) -> Tuple:
        """All transitions from *source* firing exactly *guard*."""
        table = self._by_source_guard
        if table is None:
            table = self._by_source_guard = _group(
                self._transitions, lambda t: (t.source, t.guard)
            )
        return table.get((source, guard), ())


# ---------------------------------------------------------------------- #
# per-DFA dead-state sets
# ---------------------------------------------------------------------- #


_DEAD_STATES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def dead_states(dfa) -> FrozenSet:
    """The states of *dfa* from which no accepting state is reachable.

    Computed for the whole DFA in **one backward BFS** from the accepting
    states over the reversed transition relation (the predecessor replaces
    a per-state forward search on every query).  Cached per DFA *object*
    in a ``WeakKeyDictionary`` -- the entry dies with the DFA, so a new
    DFA allocated at a recycled address starts from a clean slate.
    """
    stats = cache_stats("core.dead_states")
    cached = _DEAD_STATES.get(dfa)
    if cached is not None:
        stats.hit()
        return cached
    stats.miss()
    reverse: Dict[object, List] = {}
    for state in dfa.states:
        for symbol in dfa.alphabet:
            reverse.setdefault(dfa.delta(state, symbol), []).append(state)
    live = set(dfa.accepting)
    frontier = list(live)
    while frontier:
        node = frontier.pop()
        for predecessor in reverse.get(node, ()):
            if predecessor not in live:
                live.add(predecessor)
                frontier.append(predecessor)
    dead = frozenset(dfa.states - live)
    _DEAD_STATES[dfa] = dead
    stats.note_entries(len(_DEAD_STATES))
    return dead


# ---------------------------------------------------------------------- #
# guard agreement
# ---------------------------------------------------------------------- #


_AGREEMENT = ValueCache("core.agreement")


def agreement(delta_now, delta_next, k: int) -> bool:
    """Memoized :func:`repro.logic.types.agree` on guard *values*.

    Guards compare structurally (``SigmaType`` implements value equality),
    so one shared table serves every construction that checks condition
    (iii) of symbolic control traces -- ``scontrol_buchi``, the projected-
    transition filters of Theorem 13 and Theorem 24.  With the interning
    kernel the probe is effectively identity-keyed: both guards carry a
    cached hash and equal guards are normally the same object, so the key
    tuple hashes in O(1) and compares by pointer; non-interned guards fall
    back to structural comparison and still hit the same entries.
    """
    from repro.logic.types import agree

    return _AGREEMENT.lookup(
        (delta_now, delta_next, k), lambda: agree(delta_now, delta_next, k)
    )
