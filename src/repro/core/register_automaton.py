"""Register automata (Section 2).

A register automaton is a tuple ``(k, sigma, Q, I, F, Delta)``: ``k``
registers, a relational signature, states with initial states ``I`` and
Buchi-final states ``F``, and transitions ``(p, delta, q)`` whose guard
``delta`` is a sigma-type over ``x1..xk`` (registers before) and ``y1..yk``
(registers after).

This module implements the model itself plus the two normal forms the paper
uses throughout:

* **completion** (Example 2) -- replace every guard by its complete
  extensions; exponential, preserves the register traces;
* **state-driven** conversion (Example 3) -- at most one guard per source
  state, quadratic, preserves the register traces.
"""

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from repro.db.schema import Signature
from repro.foundations.diagnostics import Diagnostic, error
from repro.foundations.errors import SpecificationError
from repro.logic.terms import Const, Var, register_index, x_vars, y_vars
from repro.logic.types import SigmaType
from repro.core.caching import AutomatonIndex, cached_method

State = Hashable


@dataclass(frozen=True)
class Transition:
    """A transition ``(source, guard, target)``.

    The guard relates the registers before (``x``) and after (``y``) the
    transition and may query the database through relational literals.
    """

    source: State
    guard: SigmaType
    target: State

    def __repr__(self) -> str:
        return "(%r --[%s]--> %r)" % (self.source, self.guard.pretty(), self.target)


class RegisterAutomaton:
    """A database-driven register automaton.

    Parameters
    ----------
    k:
        Number of registers (may be zero).
    signature:
        The database schema queried by the guards
        (:meth:`Signature.empty` for the database-free setting of
        Sections 4-5).
    states / initial / accepting:
        Finite control with Buchi acceptance: a run must start in an
        initial state and visit an accepting state infinitely often.
    transitions:
        The transition set.

    Examples
    --------
    The paper's Example 1 (2 registers, no database):

    >>> from repro.logic import X, Y, eq, SigmaType
    >>> d1 = SigmaType([eq(X(1), X(2)), eq(X(2), Y(2))])
    >>> d2 = SigmaType([eq(X(2), Y(2))])
    >>> d3 = SigmaType([eq(X(2), Y(2)), eq(Y(1), Y(2))])
    >>> A = RegisterAutomaton(
    ...     k=2, signature=Signature.empty(),
    ...     states={"q1", "q2"}, initial={"q1"}, accepting={"q1"},
    ...     transitions=[("q1", d1, "q2"), ("q2", d2, "q2"), ("q2", d3, "q1")],
    ... )
    >>> A.k, len(A.transitions)
    (2, 3)
    """

    def __init__(
        self,
        k: int,
        signature: Signature,
        states: Iterable[State],
        initial: Iterable[State],
        accepting: Iterable[State],
        transitions: Iterable,
    ):
        if k < 0:
            raise SpecificationError("the number of registers must be >= 0")
        self._k = k
        self._signature = signature
        self._states = frozenset(states)
        self._initial = frozenset(initial)
        self._accepting = frozenset(accepting)
        normalized: List[Transition] = []
        for entry in transitions:
            transition = entry if isinstance(entry, Transition) else Transition(*entry)
            normalized.append(transition)
        self._transitions: Tuple[Transition, ...] = tuple(normalized)
        self._validate()

    def _validate(self) -> None:
        diagnostics = self.structural_diagnostics()
        if diagnostics:
            raise SpecificationError.from_diagnostics(diagnostics)

    def structural_diagnostics(self) -> List[Diagnostic]:
        """Structural well-formedness findings, as stable-coded diagnostics.

        This is the single codepath behind both construction-time
        validation (:class:`SpecificationError` raised with these
        diagnostics attached) and the ``structure`` pass of
        :mod:`repro.analysis`.  An automaton built through the public
        constructor is clean by construction; the analysis pass re-checks
        so that automata assembled by other means (deserialisation,
        subclass shortcuts) get the same scrutiny.
        """
        diagnostics: List[Diagnostic] = []
        for state in sorted(self._initial - self._states, key=repr):
            diagnostics.append(
                error("RA001", "initial state %r is not a state" % (state,))
            )
        for state in sorted(self._accepting - self._states, key=repr):
            diagnostics.append(
                error("RA002", "accepting state %r is not a state" % (state,))
            )
        constants = set(self._signature.const_terms())
        register_vars = set(x_vars(self._k)) | set(y_vars(self._k))
        for transition in self._transitions:
            # Rendering a transition (its guard included) is far more
            # expensive than checking it; build the location string only
            # when a diagnostic actually needs it.
            location: Optional[str] = None

            def where() -> str:
                nonlocal location
                if location is None:
                    location = repr(transition)
                return location

            if transition.source not in self._states or transition.target not in self._states:
                diagnostics.append(
                    error("RA003", "transition uses unknown states", where())
                )
            guard = transition.guard
            if not guard.variables <= register_vars:
                for variable in sorted(guard.variables):
                    decomposed = register_index(variable)
                    if decomposed is None or variable not in register_vars:
                        diagnostics.append(
                            error(
                                "RA004",
                                "guard variable %r is not a register variable "
                                "x1..x%d / y1..y%d" % (variable, self._k, self._k),
                                where(),
                            )
                        )
            for constant in sorted(guard.constants):
                if constant not in constants:
                    diagnostics.append(
                        error(
                            "RA005",
                            "guard constant %r is not declared in the signature"
                            % (constant,),
                            where(),
                        )
                    )
            for literal in guard.relational_literals():
                try:
                    self._signature.validate_atom(literal.atom)
                except SpecificationError as failure:
                    diagnostics.append(error("RA006", str(failure), where()))
        return diagnostics

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def k(self) -> int:
        return self._k

    @property
    def signature(self) -> Signature:
        return self._signature

    @property
    def states(self) -> FrozenSet[State]:
        return self._states

    @property
    def initial(self) -> FrozenSet[State]:
        return self._initial

    @property
    def accepting(self) -> FrozenSet[State]:
        return self._accepting

    @property
    def transitions(self) -> Tuple[Transition, ...]:
        return self._transitions

    @cached_property
    def index(self) -> AutomatonIndex:
        """The precomputed transition tables (see :mod:`repro.core.caching`)."""
        return AutomatonIndex.of(self)

    def transitions_from(self, state: State) -> Tuple[Transition, ...]:
        """All transitions whose source is *state*."""
        return self.index.transitions_from(state)

    def transitions_between(self, source: State, target: State) -> Tuple[Transition, ...]:
        """All transitions from *source* to *target* (indexed, not scanned)."""
        return self.index.transitions_between(source, target)

    def transitions_with_guard(self, source: State, guard: SigmaType) -> Tuple[Transition, ...]:
        """All transitions from *source* firing exactly *guard*."""
        return self.index.transitions_with_guard(source, guard)

    def guards_from(self, state: State) -> Tuple[SigmaType, ...]:
        """The distinct guards fired from *state* (ordered deterministically)."""
        seen = dict.fromkeys(t.guard for t in self.transitions_from(state))
        return tuple(seen)

    def has_transition(self, source: State, guard: SigmaType, target: State) -> bool:
        return Transition(source, guard, target) in set(self._transitions)

    @cached_method("automaton.guard_vocabulary")
    def guard_vocabulary(self) -> Tuple[Tuple[Var, ...], Tuple[Const, ...]]:
        """The (variables, constants) over which guards are complete.

        Cached per automaton instance (``CacheStats`` name
        ``automaton.guard_vocabulary``): the completeness predicates and the
        completion loops below ask for it once per guard, and rebuilding
        ``2k`` interned variables plus the constant tuple each time showed
        up in normalisation profiles.  The memo holds interned terms but is
        keyed by the automaton instance and dies with it, so an interning
        mode flip cannot serve stale values to new automata (MC001).
        """
        variables = tuple(x_vars(self._k)) + tuple(y_vars(self._k))
        return variables, self._signature.const_terms()

    # ------------------------------------------------------------------ #
    # completion (Example 2)
    # ------------------------------------------------------------------ #

    def is_complete(self) -> bool:
        """Whether every guard is a complete sigma-type."""
        variables, constants = self.guard_vocabulary()
        return all(
            t.guard.is_complete(self._signature.relations, variables, constants)
            for t in self._transitions
        )

    def completed(self) -> "RegisterAutomaton":
        """The complete automaton: each transition split over guard completions.

        As the paper notes, this may blow up exponentially; register traces
        are preserved because completions partition the models of the guard.
        """
        variables, constants = self.guard_vocabulary()
        new_transitions: List[Transition] = []
        for transition in self._transitions:
            for completion in transition.guard.completions(
                self._signature.relations, variables, constants
            ):
                new_transitions.append(
                    Transition(transition.source, completion, transition.target)
                )
        return RegisterAutomaton(
            self._k,
            self._signature,
            self._states,
            self._initial,
            self._accepting,
            new_transitions,
        )

    def is_equality_complete(self) -> bool:
        """Whether every guard settles every variable (dis)equality.

        Weaker than :meth:`is_complete`: relational atoms may stay open.
        Sufficient for all corridor-tracking constructions (Lemma 21,
        Theorem 24), which only read the equality skeleton of guards.
        """
        variables, constants = self.guard_vocabulary()
        return all(
            t.guard.is_complete({}, variables, constants) for t in self._transitions
        )

    def equality_completed(self) -> "RegisterAutomaton":
        """Split transitions over completions of the *equality* skeleton.

        Settles every variable/variable and variable/constant pair while
        leaving relational atoms untouched -- exponential only in the number
        of registers, not in the relational vocabulary.  Register traces are
        preserved.
        """
        variables, constants = self.guard_vocabulary()
        new_transitions: List[Transition] = []
        for transition in self._transitions:
            for completion in transition.guard.completions({}, variables, constants):
                new_transitions.append(
                    Transition(transition.source, completion, transition.target)
                )
        return RegisterAutomaton(
            self._k,
            self._signature,
            self._states,
            self._initial,
            self._accepting,
            new_transitions,
        )

    # ------------------------------------------------------------------ #
    # state-driven conversion (Example 3)
    # ------------------------------------------------------------------ #

    def is_state_driven(self) -> bool:
        """Whether each state fires at most one guard."""
        return all(len(self.guards_from(state)) <= 1 for state in self._states)

    def state_driven(self) -> "RegisterAutomaton":
        """The state-driven variant: states become ``(state, guard)`` pairs.

        The new state ``(p, delta)`` means "in control state p, about to
        fire delta".  Quadratic in the worst case; register traces are
        preserved (Example 3).
        """
        # dict.fromkeys, not a set comprehension: the pairs feed the state
        # and initial/accepting sets below (frozensets, order-free) but are
        # also what callers iterate when inspecting the result, so keep the
        # deterministic first-occurrence order (ORD001).
        pairs = dict.fromkeys((t.source, t.guard) for t in self._transitions)
        new_transitions: List[Transition] = []
        for transition in self._transitions:
            source_pair = (transition.source, transition.guard)
            for follow in self.transitions_from(transition.target):
                new_transitions.append(
                    Transition(source_pair, transition.guard, (follow.source, follow.guard))
                )
        new_initial = [pair for pair in pairs if pair[0] in self._initial]
        new_accepting = [pair for pair in pairs if pair[0] in self._accepting]
        return RegisterAutomaton(
            self._k,
            self._signature,
            pairs,
            new_initial,
            new_accepting,
            new_transitions,
        )

    def guard_of_state(self, state: State) -> Optional[SigmaType]:
        """In a state-driven automaton, the unique guard fired from *state*.

        ``None`` when the state is terminal (fires nothing).  Raises when
        the automaton is not state-driven at *state*.
        """
        guards = self.guards_from(state)
        if len(guards) > 1:
            raise SpecificationError(
                "state %r fires %d distinct guards; automaton is not "
                "state-driven there" % (state, len(guards))
            )
        return guards[0] if guards else None

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    def restricted(
        self,
        states: Iterable[State],
        transitions: Optional[Iterable] = None,
    ) -> "RegisterAutomaton":
        """The sub-automaton induced by *states* (and optionally *transitions*).

        Keeps the given states, intersects initial/accepting with them, and
        drops every transition with an endpoint outside.  When *transitions*
        is given it further restricts to that set (endpoints must still be
        kept states).  Used by :mod:`repro.core.pruning` to drop
        proved-dead control; the result is a plain automaton with the same
        ``k`` and signature.
        """
        kept_states = frozenset(states)
        if transitions is None:
            kept_transitions = self._transitions
        else:
            kept_set = {
                entry if isinstance(entry, Transition) else Transition(*entry)
                for entry in transitions
            }
            kept_transitions = tuple(t for t in self._transitions if t in kept_set)
        return RegisterAutomaton(
            self._k,
            self._signature,
            kept_states,
            self._initial & kept_states,
            self._accepting & kept_states,
            (
                t
                for t in kept_transitions
                if t.source in kept_states and t.target in kept_states
            ),
        )

    def rename_states(self, mapping: Dict[State, State]) -> "RegisterAutomaton":
        """Apply an injective state renaming."""
        image = [mapping.get(s, s) for s in self._states]
        if len(set(image)) != len(image):
            raise SpecificationError("state renaming is not injective")
        get = lambda s: mapping.get(s, s)
        return RegisterAutomaton(
            self._k,
            self._signature,
            (get(s) for s in self._states),
            (get(s) for s in self._initial),
            (get(s) for s in self._accepting),
            (Transition(get(t.source), t.guard, get(t.target)) for t in self._transitions),
        )

    def __repr__(self) -> str:
        return "RegisterAutomaton(k=%d, |Q|=%d, |Delta|=%d, sigma=%r)" % (
            self._k,
            len(self._states),
            len(self._transitions),
            self._signature,
        )
