"""Enhanced automata: finiteness and tuple-inequality constraints (Section 6).

When the database is hidden, extended automata are not expressive enough to
describe projections (Example 23).  The paper adds two constraint kinds:

* **finiteness constraints** ``phi_fin``: an MSO-definable set of positions
  per register; the run must use only finitely many *values* at the selected
  positions.  Every MSO position property used by the paper (membership of
  ``(h, i)`` in the active-domain positions ``adom_w``) is determined by a
  regular property of the *prefix* ending at the position, so we represent
  selectors as prefix-acceptance DFAs over the state alphabet:
  position ``h`` is selected iff ``q_0 .. q_h`` is accepted.

* **tuple inequality constraints** ``phi_tup``: for selected pairs of anchor
  positions ``(a, b)``, the tuple of register values at offsets around ``a``
  must differ from the tuple at offsets around ``b``.  Anchor pairs are
  selected by a :class:`PairSelector`: ``(a, b)`` with ``a <= b`` is
  selected iff ``q_0 .. q_a`` matches the selector's *prefix* language and
  ``q_a .. q_b`` matches its *factor* language.  This captures the
  constraints of Theorem 24 (both are MSO-regular position properties) and
  generalises plain inequality constraints (arity-1 tuples, factor language
  = the constraint regex).

An :class:`EnhancedAutomaton` bundles a register automaton with global
equality constraints (inherited from extended automata), tuple-inequality
constraints and finiteness constraints -- exactly the vocabulary of
Theorem 24.
"""

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.automata.dfa import Dfa
from repro.automata.regex import Regex
from repro.foundations.errors import SpecificationError
from repro.core.caching import cached_method
from repro.core.extended import ExtendedAutomaton, GlobalConstraint
from repro.core.register_automaton import RegisterAutomaton
from repro.core.runs import FiniteRun, LassoRun


def _compile(expression, states: FrozenSet) -> Dfa:
    if isinstance(expression, Dfa):
        return expression
    if isinstance(expression, Regex):
        return expression.to_dfa(states)
    raise SpecificationError("expected a Regex or Dfa, got %r" % type(expression))


@dataclass(frozen=True)
class PairSelector:
    """A regular selector of ordered position pairs ``(a, b)``, ``a <= b``.

    ``(a, b)`` is selected iff the prefix ``q_0 .. q_a`` is in ``prefix``
    and the factor ``q_a .. q_b`` is in ``factor`` (both inclusive).
    """

    prefix: object
    factor: object

    def compiled(self, states: FrozenSet) -> Tuple[Dfa, Dfa]:
        return _compile(self.prefix, states), _compile(self.factor, states)


@dataclass(frozen=True)
class TupleInequalityConstraint:
    """``phi_tup``: tuples around selected anchor pairs must differ.

    Parameters
    ----------
    left / right:
        Sequences of ``(offset, register)`` pairs; the compared tuples are
        ``(d_{a+offset}[register], ...)`` and ``(d_{b+offset}[register],
        ...)``.  Both must have the same length (the paper's arity ``l``).
    selector:
        The :class:`PairSelector` choosing anchor pairs.
    """

    left: Tuple[Tuple[int, int], ...]
    right: Tuple[Tuple[int, int], ...]
    selector: PairSelector

    def __post_init__(self) -> None:
        if len(self.left) != len(self.right):
            raise SpecificationError("tuple inequality sides must have equal arity")
        for offset, register in tuple(self.left) + tuple(self.right):
            if offset < 0 or register < 1:
                raise SpecificationError(
                    "offsets must be >= 0 and registers >= 1, got (%d, %d)"
                    % (offset, register)
                )

    @property
    def arity(self) -> int:
        return len(self.left)

    def max_offset(self) -> int:
        return max(offset for offset, _register in tuple(self.left) + tuple(self.right))


@dataclass(frozen=True)
class FinitenessConstraint:
    """``phi_fin``: finitely many values of *register* at selected positions.

    Position ``h`` is selected iff the prefix ``q_0 .. q_h`` is accepted by
    *selector* (a prefix-acceptance DFA / regex over states).
    """

    register: int
    selector: object

    def __post_init__(self) -> None:
        if self.register < 1:
            raise SpecificationError("registers are numbered from 1")


class EnhancedAutomaton:
    """A register automaton with equality, tuple-inequality and finiteness
    constraints -- the model of Theorem 24.

    Plain inequality constraints of extended automata embed via
    :meth:`from_extended` (an inequality constraint is an arity-1 tuple
    inequality whose selector's prefix language is universal).
    """

    def __init__(
        self,
        automaton: RegisterAutomaton,
        equality_constraints: Iterable[GlobalConstraint] = (),
        tuple_constraints: Iterable[TupleInequalityConstraint] = (),
        finiteness_constraints: Iterable[FinitenessConstraint] = (),
    ):
        self._automaton = automaton
        self._equality = tuple(equality_constraints)
        for constraint in self._equality:
            if constraint.kind != "eq":
                raise SpecificationError(
                    "only equality GlobalConstraints belong here; express "
                    "inequalities as TupleInequalityConstraints"
                )
        self._tuples = tuple(tuple_constraints)
        self._finiteness = tuple(finiteness_constraints)
        for constraint in self._tuples:
            for _offset, register in constraint.left + constraint.right:
                if register > automaton.k:
                    raise SpecificationError(
                        "tuple constraint register %d beyond k=%d" % (register, automaton.k)
                    )
        for constraint in self._finiteness:
            if constraint.register > automaton.k:
                raise SpecificationError(
                    "finiteness constraint register %d beyond k=%d"
                    % (constraint.register, automaton.k)
                )

    @staticmethod
    def from_extended(extended: ExtendedAutomaton) -> "EnhancedAutomaton":
        """Embed an extended automaton (inequalities become tuple constraints)."""
        from repro.automata.regex import star, any_of

        states = extended.automaton.states
        tuples = []
        for constraint in extended.inequality_constraints():
            selector = PairSelector(
                prefix=star(any_of(states)), factor=constraint.expression
            )
            tuples.append(
                TupleInequalityConstraint(
                    left=((0, constraint.i),), right=((0, constraint.j),), selector=selector
                )
            )
        return EnhancedAutomaton(
            extended.automaton,
            equality_constraints=extended.equality_constraints(),
            tuple_constraints=tuples,
        )

    @property
    def automaton(self) -> RegisterAutomaton:
        return self._automaton

    @property
    def k(self) -> int:
        return self._automaton.k

    @property
    def equality_constraints(self) -> Tuple[GlobalConstraint, ...]:
        return self._equality

    @property
    def tuple_constraints(self) -> Tuple[TupleInequalityConstraint, ...]:
        return self._tuples

    @property
    def finiteness_constraints(self) -> Tuple[FinitenessConstraint, ...]:
        return self._finiteness

    # ------------------------------------------------------------------ #
    # satisfaction
    # ------------------------------------------------------------------ #

    @cached_method("enhanced.compiled_selector", key=lambda key, expression: key)
    def _compiled(self, key, expression) -> Dfa:
        return _compile(expression, self._automaton.states)

    def constraint_violation(self, run) -> Optional[str]:
        """The first violated constraint on *run*, or ``None``.

        Equality constraints are delegated to the extended-automaton
        checker.  Tuple-inequality and finiteness checks are exact on
        :class:`LassoRun` witnesses; on :class:`FiniteRun` prefixes, pairs
        whose offsets fall outside the prefix are (necessarily) skipped and
        finiteness is vacuous.
        """
        if self._equality:
            helper = ExtendedAutomaton(self._automaton, self._equality)
            message = helper.constraint_violation(run)
            if message is not None:
                return message
        for index, constraint in enumerate(self._tuples):
            message = self._check_tuple(index, constraint, run)
            if message is not None:
                return message
        # Finiteness: on a lasso the selected values form a finite set by
        # periodicity, so the constraint always holds; on a finite prefix it
        # is vacuous.  (It bites on non-periodic run schemes, which the
        # emptiness machinery handles symbolically.)
        return None

    def satisfies_constraints(self, run) -> bool:
        return self.constraint_violation(run) is None

    def is_run(self, run, database) -> bool:
        return run.is_valid(self._automaton, database) and self.satisfies_constraints(run)

    def selected_values(self, constraint: FinitenessConstraint, run: FiniteRun) -> List:
        """The values of the constraint's register at selected positions."""
        dfa = self._compiled(("fin", constraint), constraint.selector)
        values: List = []
        state = dfa.initial
        for position in range(len(run.states)):
            state = dfa.delta(state, run.states[position])
            if state in dfa.accepting:
                values.append(run.data[position][constraint.register - 1])
        return values

    def _check_tuple(self, index, constraint: TupleInequalityConstraint, run) -> Optional[str]:
        prefix_dfa, factor_dfa = constraint.selector.compiled(self._automaton.states)
        prefix_dfa = self._compiled(("tup-p", index), prefix_dfa)
        factor_dfa = self._compiled(("tup-f", index), factor_dfa)
        reach = constraint.max_offset()

        def tuple_at(anchor_positions, side) -> Optional[Tuple]:
            values = []
            for offset, register in side:
                position = anchor_positions(offset)
                if position is None:
                    return None
                values.append(run.data[position][register - 1])
            return tuple(values)

        if isinstance(run, FiniteRun):
            n = len(run.states)
            prefix_state = prefix_dfa.initial
            for a in range(n):
                prefix_state = prefix_dfa.delta(prefix_state, run.states[a])
                if prefix_state not in prefix_dfa.accepting:
                    continue
                factor_state = factor_dfa.initial
                for b in range(a, n):
                    factor_state = factor_dfa.delta(factor_state, run.states[b])
                    if factor_state not in factor_dfa.accepting:
                        continue
                    left = tuple_at(
                        lambda o, _a=a: _a + o if _a + o < n else None, constraint.left
                    )
                    right = tuple_at(
                        lambda o, _b=b: _b + o if _b + o < n else None, constraint.right
                    )
                    if left is None or right is None:
                        continue
                    if left == right:
                        return (
                            "tuple inequality %d violated at anchors (%d, %d): both sides %r"
                            % (index, a, b, left)
                        )
            return None

        if isinstance(run, LassoRun):
            # Enumerate distinct anchor behaviours by cycle detection.
            n = len(run.states)

            def advance(position: int) -> int:
                return run.successor(position)

            def offset_position(anchor: int, offset: int) -> Optional[int]:
                position = anchor
                for _ in range(offset):
                    position = advance(position)
                return position

            seen_a: Set[Tuple] = set()
            prefix_state = prefix_dfa.initial
            a = 0
            steps = 0
            while steps <= n * prefix_dfa.size() + 1:
                prefix_state = prefix_dfa.delta(prefix_state, run.states[a])
                key_a = (prefix_state, a)
                if key_a in seen_a:
                    break
                seen_a.add(key_a)
                if prefix_state in prefix_dfa.accepting:
                    message = self._lasso_factor_scan(
                        index, constraint, run, factor_dfa, a, offset_position
                    )
                    if message is not None:
                        return message
                a = advance(a)
                steps += 1
            return None
        raise SpecificationError("unknown run kind %r" % type(run))

    def _lasso_factor_scan(
        self, index, constraint, run: LassoRun, factor_dfa: Dfa, anchor: int, offset_position
    ) -> Optional[str]:
        seen: Set[Tuple] = set()
        factor_state = factor_dfa.initial
        b = anchor
        while True:
            factor_state = factor_dfa.delta(factor_state, run.states[b])
            if factor_state in factor_dfa.accepting:
                left = tuple(
                    run.data[offset_position(anchor, o)][r - 1] for o, r in constraint.left
                )
                right = tuple(
                    run.data[offset_position(b, o)][r - 1] for o, r in constraint.right
                )
                if left == right:
                    return (
                        "tuple inequality %d violated at anchors (%d, %d): both sides %r"
                        % (index, anchor, b, left)
                    )
            key = (factor_state, b)
            b = run.successor(b)
            if key in seen:
                return None
            seen.add(key)

    def __repr__(self) -> str:
        return "EnhancedAutomaton(%r, eq=%d, tup=%d, fin=%d)" % (
            self._automaton,
            len(self._equality),
            len(self._tuples),
            len(self._finiteness),
        )
