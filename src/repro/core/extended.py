"""Extended register automata (Section 3).

An extended register automaton is a pair ``(A, Sigma)``: a register
automaton plus a finite set of *global constraints*.  Each constraint is a
regular expression ``e`` over the states of ``A`` together with a kind and
two register indices: when the factor ``q_n .. q_m`` of a run's state trace
matches ``e``, an equality constraint forces ``d_n[i] = d_m[j]`` and an
inequality constraint forces ``d_n[i] != d_m[j]``.

This module provides:

* :class:`GlobalConstraint` / :class:`ExtendedAutomaton` -- the model,
* exact satisfaction checking of constraints on :class:`FiniteRun` prefixes
  and on :class:`LassoRun` witnesses (lassos are checked exhaustively via
  cycle detection on (DFA state, stored position) pairs -- data and control
  are periodic, so this finite walk covers every factor),
* :func:`eliminate_equality_constraints` -- **Proposition 6**: global
  equality constraints are compiled away into extra registers (one per
  state of each constraint DFA) and bookkeeping control state.
"""

from dataclasses import dataclass
from itertools import product as cartesian_product
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.automata.dfa import Dfa
from repro.automata.regex import Regex
from repro.foundations.errors import InconsistentTypeError, SpecificationError
from repro.logic.literals import eq as lit_eq
from repro.logic.terms import Var, X, Y
from repro.logic.types import SigmaType
from repro.core.caching import cached_method
from repro.core.register_automaton import RegisterAutomaton, State, Transition
from repro.core.runs import FiniteRun, LassoRun

EQ = "eq"
NEQ = "neq"


@dataclass(frozen=True)
class GlobalConstraint:
    """A global constraint ``e=_{ij}`` or ``e!=_{ij}``.

    Parameters
    ----------
    kind:
        ``"eq"`` or ``"neq"``.
    i / j:
        Register indices: ``i`` read at the factor's first position, ``j``
        at its last.
    expression:
        A regular expression over automaton states, or a pre-compiled
        :class:`Dfa` over the state alphabet.
    """

    kind: str
    i: int
    j: int
    expression: object

    def __post_init__(self) -> None:
        if self.kind not in (EQ, NEQ):
            raise SpecificationError("constraint kind must be 'eq' or 'neq'")
        if self.i < 1 or self.j < 1:
            raise SpecificationError("register indices start at 1")
        if not isinstance(self.expression, (Regex, Dfa)):
            raise SpecificationError(
                "constraint expression must be a Regex or a Dfa, got %r"
                % type(self.expression)
            )

    def compiled(self, states: FrozenSet[State]) -> Dfa:
        """The DFA over exactly the given state alphabet."""
        if isinstance(self.expression, Dfa):
            if self.expression.alphabet != frozenset(states):
                raise SpecificationError(
                    "constraint DFA alphabet %r does not match automaton states %r"
                    % (sorted(map(repr, self.expression.alphabet)), sorted(map(repr, states)))
                )
            return self.expression
        return self.expression.to_dfa(states)

    def is_equality(self) -> bool:
        return self.kind == EQ

    def __repr__(self) -> str:
        op = "=" if self.kind == EQ else "!="
        return "e%s[%d,%d](%r)" % (op, self.i, self.j, self.expression)


class ExtendedAutomaton:
    """A register automaton with global regular (in)equality constraints.

    Examples
    --------
    The paper's Example 5: one register, states ``p1`` (initial/accepting)
    and ``p2``, empty guards, and the equality constraint ``p1 p2* p1``
    forcing the register to carry the same value whenever the automaton is
    in ``p1``:

    >>> from repro.automata.regex import literal, star, concat
    >>> from repro.db import Signature
    >>> from repro.logic import SigmaType
    >>> empty = SigmaType()
    >>> B = RegisterAutomaton(1, Signature.empty(), {"p1", "p2"}, {"p1"},
    ...     {"p1"}, [("p1", empty, "p2"), ("p2", empty, "p2"),
    ...              ("p2", empty, "p1")])
    >>> e = concat(literal("p1"), star(literal("p2")), literal("p1"))
    >>> ext = ExtendedAutomaton(B, [GlobalConstraint("eq", 1, 1, e)])
    """

    def __init__(self, automaton: RegisterAutomaton, constraints: Iterable[GlobalConstraint]):
        self._automaton = automaton
        self._constraints = tuple(constraints)
        for constraint in self._constraints:
            if constraint.i > automaton.k or constraint.j > automaton.k:
                raise SpecificationError(
                    "constraint %r refers to registers beyond k=%d"
                    % (constraint, automaton.k)
                )

    @property
    def automaton(self) -> RegisterAutomaton:
        return self._automaton

    @property
    def constraints(self) -> Tuple[GlobalConstraint, ...]:
        return self._constraints

    @property
    def k(self) -> int:
        return self._automaton.k

    def equality_constraints(self) -> Tuple[GlobalConstraint, ...]:
        return tuple(c for c in self._constraints if c.kind == EQ)

    def inequality_constraints(self) -> Tuple[GlobalConstraint, ...]:
        return tuple(c for c in self._constraints if c.kind == NEQ)

    @cached_method("extended.constraint_dfa")
    def constraint_dfa(self, constraint: GlobalConstraint) -> Dfa:
        """The constraint's DFA over the automaton's state alphabet (cached
        per extended-automaton instance; see :mod:`repro.core.caching`)."""
        return constraint.compiled(self._automaton.states)

    # ------------------------------------------------------------------ #
    # constraint satisfaction on runs
    # ------------------------------------------------------------------ #

    def constraint_violation(self, run) -> Optional[str]:
        """Explain the first global-constraint violation on *run*.

        ``None`` when all constraints are satisfied.  For a
        :class:`FiniteRun`, every factor inside the prefix is checked; for a
        :class:`LassoRun` the check is *exhaustive over the infinite word*
        (see the module docstring).
        """
        for constraint in self._constraints:
            message = self._check_one(constraint, run)
            if message is not None:
                return message
        return None

    def satisfies_constraints(self, run) -> bool:
        """Whether *run* satisfies every global constraint."""
        return self.constraint_violation(run) is None

    def is_run(self, run, database) -> bool:
        """Whether *run* is a run of the underlying automaton that also
        satisfies the global constraints."""
        return run.is_valid(self._automaton, database) and self.satisfies_constraints(run)

    def _check_one(self, constraint: GlobalConstraint, run) -> Optional[str]:
        dfa = self.constraint_dfa(constraint)
        i, j = constraint.i, constraint.j
        want_equal = constraint.kind == EQ
        if isinstance(run, FiniteRun):
            states, data = run.states, run.data
            for start in range(len(states)):
                dfa_state = dfa.initial
                for end in range(start, len(states)):
                    dfa_state = dfa.delta(dfa_state, states[end])
                    if dfa_state in dfa.accepting:
                        if (data[start][i - 1] == data[end][j - 1]) != want_equal:
                            return self._violation_message(constraint, start, end, run)
            return None
        if isinstance(run, LassoRun):
            for start in range(len(run.states)):
                seen: Set[Tuple] = set()
                position = start
                dfa_state = dfa.initial
                while True:
                    dfa_state = dfa.delta(dfa_state, run.states[position])
                    if dfa_state in dfa.accepting:
                        left = run.data[start][i - 1]
                        right = run.data[position][j - 1]
                        if (left == right) != want_equal:
                            return self._violation_message(constraint, start, position, run)
                    key = (dfa_state, position)
                    position = run.successor(position)
                    if key in seen:
                        break
                    seen.add(key)
            return None
        raise SpecificationError("unknown run kind %r" % type(run))

    @staticmethod
    def _violation_message(constraint, start, end, run) -> str:
        return "constraint %r violated between positions %d and %d (states %r..%r)" % (
            constraint,
            start,
            end,
            run.states[start],
            run.states[end],
        )

    def __repr__(self) -> str:
        return "ExtendedAutomaton(%r, %d constraints)" % (
            self._automaton,
            len(self._constraints),
        )


# ---------------------------------------------------------------------- #
# Proposition 6: eliminating global equality constraints
# ---------------------------------------------------------------------- #


def _map_dfa_alphabet(dfa: Dfa, new_alphabet: Iterable, project) -> Dfa:
    """A DFA over *new_alphabet* simulating *dfa* through ``project``."""
    new_alphabet = frozenset(new_alphabet)
    transitions = {
        (state, symbol): dfa.delta(state, project(symbol))
        for state in dfa.states
        for symbol in new_alphabet
    }
    return Dfa(dfa.states, new_alphabet, transitions, dfa.initial, dfa.accepting)


def lift_constraints_to_states(
    constraints: Sequence[GlobalConstraint],
    old_states: FrozenSet[State],
    new_states: FrozenSet[State],
    project,
) -> List[GlobalConstraint]:
    """Rewrite constraints over old states as constraints over new states.

    Used whenever a construction refines the control state (Proposition 6,
    the product steps of Theorem 13): the constraint DFAs read the refined
    states through the projection ``project``.
    """
    lifted: List[GlobalConstraint] = []
    for constraint in constraints:
        dfa = constraint.compiled(old_states)
        lifted.append(
            GlobalConstraint(
                constraint.kind,
                constraint.i,
                constraint.j,
                _map_dfa_alphabet(dfa, new_states, project),
            )
        )
    return lifted


def eliminate_equality_constraints(extended: ExtendedAutomaton) -> Tuple["ExtendedAutomaton", int]:
    """**Proposition 6**: compile global equality constraints into registers.

    Returns ``(B, k)`` where ``B`` is an extended automaton with *no*
    equality constraints and ``k`` is the original register count:
    ``Reg(D, extended) = Pi_k(Reg(D, B))`` for every database ``D``.

    Construction (following the paper's proof).  For each equality
    constraint ``e`` with deterministic automaton ``E``, ``B`` allocates one
    extra register per state of ``E``.  At every position ``B`` guesses, per
    constraint, whether the position is the source of a (future or
    immediate) match of ``e``:

    * a **yes** guess spawns a *tracking thread*: the value of register
      ``i`` at the spawn position is stored in the register associated with
      the thread's current DFA state and carried along as the DFA advances;
      whenever the thread's state is accepting, the guard forces register
      ``j`` to equal the stored value; two threads reaching the same DFA
      state force their stored values equal (one register per DFA state
      therefore suffices -- the paper's key observation);
    * a **no** guess spawns a *monitoring thread* without a register; if a
      monitoring thread ever reaches an accepting state the guess was wrong
      and that branch is aborted (no such transition exists in ``B``).

    Invariant.  In the control state reached at run position ``n``, each
    constraint carries ``(tracked, monitored)``: the DFA states of live
    threads *after reading* ``q_0 .. q_n``, and for every ``s`` in
    ``tracked`` the register of ``s`` holds the stored source value at
    position ``n``.  Spawning, propagation and enforcement at position
    ``n+1`` are all emitted as ``y``-literals on the transition from ``n``
    to ``n+1``; position 0 obligations are carried as pending ``x``-literals
    inside the (seed) initial control states and emitted on their outgoing
    transitions.

    Inequality constraints are lifted to the refined control states.
    """
    automaton = extended.automaton
    k = automaton.k
    equality = extended.equality_constraints()
    if not equality:
        return extended, k

    dfas = [extended.constraint_dfa(c) for c in equality]
    # Register layout: 1..k original; then one block per constraint with one
    # register per DFA state, in a fixed order.
    register_of: Dict[Tuple[int, object], int] = {}
    next_register = k + 1
    for index, dfa in enumerate(dfas):
        for state in sorted(dfa.states, key=repr):
            register_of[(index, state)] = next_register
            next_register += 1
    total_registers = next_register - 1

    def guess_combinations(position_state: State, configs_before):
        """Per-constraint spawn guesses at a position reading *position_state*.

        *configs_before* are the (tracked, monitored) sets already advanced
        over *position_state*; the spawned thread starts at
        ``delta(q0, position_state)``.  Yields ``(configs_after, spawned)``
        where ``spawned[index]`` is the spawn DFA state or ``None``.
        """
        per_constraint = []
        for index in range(len(equality)):
            dfa = dfas[index]
            tracked, monitored = configs_before[index]
            start = dfa.delta(dfa.initial, position_state)
            options = []
            # "no": monitor; abort immediately if the guess is already wrong.
            if start not in dfa.accepting:
                options.append(((tracked, monitored | {start}), None))
            # "yes": track.
            options.append(((tracked | {start}, monitored), start))
            per_constraint.append(options)
        for combo in cartesian_product(*per_constraint):
            yield tuple(c[0] for c in combo), tuple(c[1] for c in combo)

    def advance(configs, symbol) -> Optional[Tuple]:
        """Advance all threads over *symbol*; None aborts (monitor accepted)."""
        advanced = []
        for index in range(len(equality)):
            dfa = dfas[index]
            tracked, monitored = configs[index]
            new_monitored = frozenset(dfa.delta(s, symbol) for s in monitored)
            if new_monitored & dfa.accepting:
                return None
            advanced.append((frozenset(dfa.delta(s, symbol) for s in tracked), new_monitored))
        return tuple(advanced)

    def transfer_literals(configs, symbol) -> List:
        """Carry stored values along the advance (y-literals)."""
        literals: List = []
        for index in range(len(equality)):
            dfa = dfas[index]
            tracked, _monitored = configs[index]
            targets: Dict[object, List[object]] = {}
            for s in tracked:
                targets.setdefault(dfa.delta(s, symbol), []).append(s)
            for target, sources in sorted(targets.items(), key=lambda kv: repr(kv[0])):
                source_regs = sorted(register_of[(index, s)] for s in sources)
                for other in source_regs[1:]:
                    literals.append(lit_eq(X(source_regs[0]), X(other)))
                literals.append(lit_eq(Y(register_of[(index, target)]), X(source_regs[0])))
        return literals

    def position_literals(spawned, configs_after, var) -> List:
        """Spawn + enforcement obligations at one position.

        *var* is :func:`Y` for ordinary steps (obligations about the target
        position of a transition) and :func:`X` for position 0.
        """
        literals: List = []
        for index, constraint in enumerate(equality):
            dfa = dfas[index]
            spawn_state = spawned[index]
            if spawn_state is not None:
                literals.append(
                    lit_eq(var(register_of[(index, spawn_state)]), var(constraint.i))
                )
            tracked, _monitored = configs_after[index]
            for s in sorted(tracked & dfa.accepting, key=repr):
                literals.append(
                    lit_eq(var(constraint.j), var(register_of[(index, s)]))
                )
        return literals

    empty_configs = tuple((frozenset(), frozenset()) for _ in equality)

    # Seeds: position-0 guesses; pending x-literals are embedded in the state.
    initial_states: Set[Tuple] = set()
    worklist: List[Tuple] = []
    for q in sorted(automaton.initial, key=repr):
        for configs_after, spawned in guess_combinations(q, empty_configs):
            pending = tuple(position_literals(spawned, configs_after, X))
            seed = (q, configs_after, pending)
            initial_states.add(seed)
            worklist.append(seed)

    transitions: List[Transition] = []
    all_states: Set[Tuple] = set(initial_states)
    explored: Set[Tuple] = set()
    while worklist:
        b_state = worklist.pop()
        if b_state in explored:
            continue
        explored.add(b_state)
        automaton_state, configs, pending = b_state
        for transition in automaton.transitions_from(automaton_state):
            target_symbol = transition.target
            advanced = advance(configs, target_symbol)
            if advanced is None:
                continue
            carry = transfer_literals(configs, target_symbol)
            for final_configs, spawned in guess_combinations(target_symbol, advanced):
                literals = list(pending) + carry + position_literals(
                    spawned, final_configs, Y
                )
                try:
                    guard = transition.guard.with_literals(literals)
                except InconsistentTypeError:
                    continue  # contradictory obligations: this branch dies
                target = (target_symbol, final_configs, ())
                transitions.append(Transition(b_state, guard, target))
                if target not in all_states:
                    all_states.add(target)
                    worklist.append(target)

    accepting = {s for s in all_states if s[0] in automaton.accepting}
    new_automaton = RegisterAutomaton(
        total_registers,
        automaton.signature,
        all_states,
        initial_states,
        accepting,
        transitions,
    )
    lifted = lift_constraints_to_states(
        extended.inequality_constraints(),
        automaton.states,
        new_automaton.states,
        lambda b_state: b_state[0],
    )
    return ExtendedAutomaton(new_automaton, lifted), k
