"""Code-based normalisation for the emptiness pipeline (the symkernel).

``check_emptiness`` normalises the automaton -- ``completed()`` then
``state_driven()`` -- before the lasso search starts.  Completion is the
Bell(2k) wall: every guard splits into one transition per completion of
its equality skeleton, each materialised as an interned :class:`SigmaType`
with its closure, satisfiability check and canonical form, and the
state-driven conversion then multiplies those transitions again before
``scontrol_buchi`` walks them pair by pair.  For the automata the
emptiness check actually sees in the constraint pipeline -- relation-free
signature, no constants, equality-type guards -- all of that structure is
determined by *partition codes*: a completion of a guard over the
vocabulary ``x1..xk, y1..yk`` is exactly a set partition of the ``2k``
variables, an integer bitmask over :func:`repro.logic.types.pair_bits`.

This module builds the normalised symbolic control graph directly over
those codes:

* nodes are the control pairs of the normalised automaton, keyed by
  ``(source state, completion literal set)`` and carried as dense integer
  ranks with flat per-rank tuples (original state, partition code,
  per-register class masks and successor-image masks);
* the type-agreement edge test of ``scontrol_buchi`` becomes an integer
  comparison ``y_code(n) == x_code(n')`` (for complete constant-free
  equality types, agreement *is* equality of the boundary partitions);
* the Lemma 21 corridor trackers -- the candidate consistency walk and the
  :class:`~repro.core.pruning.ConstraintNarrowing` prefix filter -- run on
  register bitmasks and precomputed DFA transition tables instead of
  closure queries on materialised guards.

**Byte-identity.**  The kernel result must be indistinguishable from the
legacy path.  The anchors:

* :func:`repro.logic.types.guard_completion_search` replays the legacy
  completion DFS over pure masks, so codes come out in ``completions()``
  order and :func:`repro.logic.types.decode_completion` rebuilds any
  completion literal-for-literal (under interning: the same object).
* The Buchi lasso searches order states and symbols by ``repr``.  Kernel
  node ids are ``"n%08d" % rank`` with ranks assigned by sorting the
  nodes on the *exact legacy pair repr* -- built from the same sorted
  canonical literal strings ``SigmaType.__repr__`` uses -- so the id
  order replays the pair order and the enumeration visits candidates in
  the legacy sequence.  :class:`~repro.automata.words.Lasso`
  canonicalisation is pure symbol-equality, hence commutes with the
  id-to-pair bijection: deduplication, ``candidates_checked`` and the
  winning trace all match, and only the winner is decoded.
* The corridor walks use the *base* constraint DFAs (the legacy path
  lifts them onto normalised states, which only renames the alphabet:
  ``lifted.delta(s, (p, comp)) == base.delta(s, p)``).  The lifted DFA's
  dead-state set can be larger -- states only live through alphabet
  symbols that are not normalised-state peels -- but a thread parked on a
  lifted-dead state can never reach an accepting state over actual trace
  symbols, so keeping it alive changes no verdict and no prune decision;
  accepting states are never dead on either side, so every violation
  fires identically.
* The narrowing skips the optional abstract-configuration filter the
  legacy path attaches: on completed automata the symbolic control graph
  is already exact and the filter is a no-op (see
  :func:`repro.core.pruning.build_narrowing`).

**Eligibility.**  :func:`build_kernel` returns ``None`` -- and the caller
falls back to the legacy path -- when the signature has relations or
constants, when ``k == 0``, when some guard is not an equality type, or
when the automaton is already complete and state-driven (the legacy path
then skips normalisation entirely and there is no wall to avoid).  Within
the eligible domain an incomplete guard always yields at least two
completions from one source state, so the completed automaton is never
state-driven and the normalised control pairs are uniformly the nested
``((state, completion), completion)`` shape.

Everything is gated by the call-time ``REPRO_SYMKERNEL`` knob (default
on); ``REPRO_SYMKERNEL=0`` is the ablation switch used by CI and the E19
benchmark (``benchmarks/bench_symkernel.py``, BENCH_8.json).
"""

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.foundations import knobs
from repro.automata.buchi import BuchiAutomaton
from repro.automata.words import Lasso
from repro.core.caching import dead_states
from repro.core.extended import ExtendedAutomaton
from repro.core.pruning import pruning_enabled
from repro.foundations.resilience import current_deadline
from repro.logic.literals import eq, neq
from repro.logic.terms import x_vars, y_vars
from repro.logic.types import (
    decode_completion,
    guard_completion_search,
    pair_bit,
    pair_bits,
)

__all__ = ["symkernel_enabled", "build_kernel", "SymbolicKernel"]

def symkernel_enabled() -> bool:
    """The ``REPRO_SYMKERNEL`` knob, read at call time (default on).

    Mirrors :func:`repro.core.pruning.pruning_enabled`: never cached, so
    tests and the ablation CI leg can flip it per call.
    """
    return knobs.value("REPRO_SYMKERNEL")


# ---------------------------------------------------------------------- #
# pure integer bit tables (per register count)
# ---------------------------------------------------------------------- #

_BIT_TABLES: Dict[int, Tuple] = {}  # mode-ok: pure integer tables


def _bit_tables(k: int) -> Tuple:
    """Pair-bit index maps between widths ``2k`` (codes) and ``k`` (masks).

    Returns ``(x_remap, y_remap, xclass_bits, yimage_bits)``:

    * ``x_remap[b] = (bit2k, bitk)`` for the x-side pairs ``(i, j)``,
      ``i < j <= k`` -- projecting a completion code onto the current
      x-partition at width ``k``;
    * ``y_remap`` the same for the pairs ``(k+i, k+j)`` (the next
      x-partition, read off the y-side);
    * ``xclass_bits[i-1]`` lists ``(m, bit2k)`` for every other register
      ``m`` -- the bits deciding the ``~``-class of register ``i``;
    * ``yimage_bits[l-1]`` lists ``(m, bit2k)`` for the pairs
      ``(l, k+m)`` -- the bits deciding where register ``l`` flows.
    """
    found = _BIT_TABLES.get(k)
    if found is None:
        width = 2 * k
        x_remap = tuple(
            (pair_bit(i, j, width), bit) for bit, (i, j) in enumerate(pair_bits(k))
        )
        y_remap = tuple(
            (pair_bit(k + i, k + j, width), bit)
            for bit, (i, j) in enumerate(pair_bits(k))
        )
        xclass_bits = tuple(
            tuple((m, pair_bit(i, m, width)) for m in range(1, k + 1) if m != i)
            for i in range(1, k + 1)
        )
        yimage_bits = tuple(
            tuple((m, pair_bit(l, k + m, width)) for m in range(1, k + 1))
            for l in range(1, k + 1)
        )
        found = _BIT_TABLES[k] = (x_remap, y_remap, xclass_bits, yimage_bits)
    return found


def _code_masks(code: int, k: int) -> Tuple[int, int, Tuple[int, ...], Tuple[int, ...]]:
    """``(x_code, y_code, x_class masks, y_image masks)`` of a completion code.

    ``x_class[i-1]`` has bit ``m-1`` set when the completion puts ``x_i``
    and ``x_m`` in one class (``i`` itself included) -- the integer form of
    :func:`repro.logic.types.x_equality_classes`.  ``y_image[l-1]`` has
    bit ``m-1`` set when it entails ``x_l = y_m`` -- the integer form of
    :func:`repro.logic.types.y_successor_images`.
    """
    x_remap, y_remap, xclass_bits, yimage_bits = _bit_tables(k)
    x_code = 0
    for bit2k, bitk in x_remap:
        if code >> bit2k & 1:
            x_code |= 1 << bitk
    y_code = 0
    for bit2k, bitk in y_remap:
        if code >> bit2k & 1:
            y_code |= 1 << bitk
    x_class = []
    for i in range(1, k + 1):
        mask = 1 << (i - 1)
        for m, bit2k in xclass_bits[i - 1]:
            if code >> bit2k & 1:
                mask |= 1 << (m - 1)
        x_class.append(mask)
    y_image = []
    for l in range(1, k + 1):
        mask = 0
        for m, bit2k in yimage_bits[l - 1]:
            if code >> bit2k & 1:
                mask |= 1 << (m - 1)
        y_image.append(mask)
    return x_code, y_code, tuple(x_class), tuple(y_image)


def _advance_mask(y_image: Tuple[int, ...], members: int) -> int:
    """One corridor step: the union of images of the registers in *members*."""
    result = 0
    remaining = members
    while remaining:
        low = remaining & -remaining
        result |= y_image[low.bit_length() - 1]
        remaining ^= low
    return result


class _Node:
    """One control pair of the normalised automaton, in coded form."""

    __slots__ = ("state", "guard", "code", "lits", "targets", "rank", "node_id", "text")

    def __init__(self, state, guard, code: int, lits: FrozenSet):
        self.state = state
        self.guard = guard
        self.code = code
        self.lits = lits
        self.targets: Set = set()
        self.rank = -1
        self.node_id = ""
        self.text = ""


# ---------------------------------------------------------------------- #
# corridor trackers over codes
# ---------------------------------------------------------------------- #


class CodedCandidateCheck:
    """Picklable consistency check for one id-lasso candidate.

    The coded mirror of :class:`repro.core.emptiness._CandidateCheck`:
    the same product walk of constraint DFA and corridor tracker with the
    same cycle detection, but corridors are register bitmasks, DFA steps
    are table lookups keyed by ``(dfa state, original-state index)``, and
    nothing references a guard object -- the instance ships only tuples,
    dicts and frozensets.  Bounded cliques (Theorem 9 condition (b)) hold
    vacuously in the kernel's domain: a relation-free signature gives the
    inequality graph no vertices, exactly the early-out of
    :func:`repro.core.emptiness.trace_has_bounded_cliques`.
    """

    __slots__ = ("node_orig", "node_xclass", "node_yimage", "tables")

    def __init__(self, node_orig, node_xclass, node_yimage, tables):
        self.node_orig = node_orig
        self.node_xclass = node_xclass
        self.node_yimage = node_yimage
        self.tables = tables

    def __call__(self, lasso: Lasso) -> bool:
        spine = lasso.spine_length()
        period = len(lasso.period)
        ranks = [int(symbol[1:]) for symbol in lasso.prefix + lasso.period]

        def stored(position: int) -> int:
            if position < spine:
                return position
            return spine - period + (position - (spine - period)) % period

        node_orig = self.node_orig
        node_xclass = self.node_xclass
        node_yimage = self.node_yimage
        for i_index, j_bit, delta, initial, accepting, dead in self.tables:
            for start in range(spine):
                rank = ranks[start]
                members = node_xclass[rank][i_index]
                dfa_state = delta[(initial, node_orig[rank])]
                position = start
                seen: Set[Tuple] = set()
                while True:
                    if dfa_state in dead:
                        break  # acceptance unreachable: no violation ahead
                    if dfa_state in accepting and members >> j_bit & 1:
                        return False
                    key = (dfa_state, members, stored(position))
                    if key in seen:
                        break
                    seen.add(key)
                    members = _advance_mask(node_yimage[ranks[stored(position)]], members)
                    position += 1
                    dfa_state = delta[(dfa_state, node_orig[ranks[stored(position)]])]
        return True


class CodedNarrowing:
    """Mask-level mirror of :class:`repro.core.pruning.ConstraintNarrowing`.

    Same filter-state discipline -- per-constraint thread sets advanced in
    the exact consistency-walk order (step, dead-continue, advance,
    violation, spawn) -- over node ranks instead of ``(state, guard)``
    symbols.  Prune decisions are identical to the legacy filter (see the
    module docstring for the dead-set argument); ``paths_pruned`` is kept
    for diagnostics.
    """

    __slots__ = ("_node_orig", "_node_xclass", "_node_yimage", "_tables", "paths_pruned")

    def __init__(self, node_orig, node_xclass, node_yimage, tables):
        self._node_orig = node_orig
        self._node_xclass = node_xclass
        self._node_yimage = node_yimage
        self._tables = tables
        self.paths_pruned = 0

    def empty(self) -> Tuple:
        return (None, tuple(frozenset() for _ in self._tables))

    def step(self, fstate: Tuple, symbol) -> Optional[Tuple]:
        rank = int(symbol[1:])
        orig = self._node_orig[rank]
        previous_rank, all_threads = fstate
        previous_image = (
            None if previous_rank is None else self._node_yimage[previous_rank]
        )
        new_threads: List[frozenset] = []
        for index, table in enumerate(self._tables):
            i_index, j_bit, delta, initial, accepting, dead = table
            advanced = set()
            for dfa_state, members in all_threads[index]:
                next_state = delta[(dfa_state, orig)]
                if next_state in dead:
                    continue
                next_members = _advance_mask(previous_image, members)
                if next_state in accepting and next_members >> j_bit & 1:
                    self.paths_pruned += 1
                    return None
                advanced.add((next_state, next_members))
            spawn_state = delta[(initial, orig)]
            if spawn_state not in dead:
                spawn_members = self._node_xclass[rank][i_index]
                if spawn_state in accepting and spawn_members >> j_bit & 1:
                    self.paths_pruned += 1
                    return None
                advanced.add((spawn_state, spawn_members))
            new_threads.append(frozenset(advanced))
        return (rank, tuple(new_threads))


# ---------------------------------------------------------------------- #
# the kernel
# ---------------------------------------------------------------------- #


class SymbolicKernel:
    """The coded normalised control graph of one eligible automaton.

    Produced by :func:`build_kernel`; consumed by
    :func:`repro.core.emptiness.check_emptiness`.  ``buchi`` is the Buchi
    automaton for ``SControl`` of the normalised automaton over rank ids;
    :meth:`decode_lasso` maps an id-lasso back to the legacy
    ``((state, completion), completion)`` pair lasso, materialising only
    the completions the winning witness touches.
    """

    def __init__(self, without_eq, vocab, nodes, buchi, node_tables, stats):
        self._without_eq = without_eq
        self._vocab = vocab
        self._nodes = nodes  # rank -> _Node
        self.buchi = buchi
        self._node_orig, self._node_xclass, self._node_yimage = node_tables
        self._pairs: Dict[int, Tuple] = {}
        self.stats = stats

    # -- decoding ------------------------------------------------------ #

    def decode_node(self, rank: int) -> Tuple:
        """The legacy control pair of node *rank* (cached per rank)."""
        found = self._pairs.get(rank)
        if found is None:
            node = self._nodes[rank]
            completion = decode_completion(node.guard, node.code, self._vocab)
            found = self._pairs[rank] = ((node.state, completion), completion)
        return found

    def decode_lasso(self, lasso: Lasso) -> Lasso:
        """The pair lasso of an id-lasso (byte-identical to the legacy one)."""
        return lasso.map(lambda symbol: self.decode_node(int(symbol[1:])))

    # -- corridor trackers --------------------------------------------- #

    def _constraint_tables(self) -> Tuple[Tuple, ...]:
        found = getattr(self, "_tables", None)
        if found is None:
            without_eq = self._without_eq
            orig_index: Dict[object, int] = {}
            for node in self._nodes:
                if node.state not in orig_index:
                    orig_index[node.state] = len(orig_index)
            originals = list(orig_index)
            tables = []
            for constraint in without_eq.inequality_constraints():
                dfa = without_eq.constraint_dfa(constraint)
                delta = {
                    (state, index): dfa.delta(state, original)
                    for state in dfa.states
                    for index, original in enumerate(originals)
                }
                tables.append(
                    (
                        constraint.i - 1,
                        constraint.j - 1,
                        delta,
                        dfa.initial,
                        frozenset(dfa.accepting),
                        dead_states(dfa),
                    )
                )
            # Re-key the per-node original states by the index the delta
            # tables use (plain ints: cheap to pickle with the check).
            self._node_orig = tuple(orig_index[node.state] for node in self._nodes)
            found = self._tables = tuple(tables)
        return found

    def candidate_check(self) -> CodedCandidateCheck:
        """The picklable per-candidate realisability check."""
        tables = self._constraint_tables()
        return CodedCandidateCheck(
            self._node_orig, self._node_xclass, self._node_yimage, tables
        )

    def build_narrowing(self) -> Optional[CodedNarrowing]:
        """The coded enumeration filter, honouring ``REPRO_PRUNE``.

        ``None`` exactly when :func:`repro.core.pruning.build_narrowing`
        would return ``None``: pruning disabled or no inequality
        constraints.
        """
        if not pruning_enabled() or not self._without_eq.inequality_constraints():
            return None
        tables = self._constraint_tables()
        return CodedNarrowing(
            self._node_orig, self._node_xclass, self._node_yimage, tables
        )


def build_kernel(without_eq: ExtendedAutomaton) -> Optional[SymbolicKernel]:
    """The coded normalised control graph, or ``None`` when ineligible.

    *without_eq* is the extended automaton **after** equality-constraint
    elimination (Proposition 6), pruning and trimming -- the exact input
    the legacy ``completed()``/``state_driven()`` normalisation would see.
    """
    automaton = without_eq.automaton
    signature = automaton.signature
    k = automaton.k
    if k == 0 or signature.relations or signature.const_terms():
        return None
    transitions = automaton.transitions
    if not transitions:
        return None

    guards = dict.fromkeys(transition.guard for transition in transitions)
    for guard in guards:
        if not guard.is_equality_type():
            return None

    vocab = tuple(x_vars(k)) + tuple(y_vars(k))
    searches = {}
    complete = True
    for guard in guards:
        codes, choices = guard_completion_search(guard, vocab)
        searches[guard] = (codes, choices)
        if len(codes) != 1:
            complete = False
    if complete and automaton.is_state_driven():
        return None  # legacy normalisation is the identity: nothing to win

    # Chosen-branch literals, one per (pair bit, polarity) at width 2k.
    width_pairs = pair_bits(2 * k)
    chosen_literal = {}
    for bit, (i, j) in enumerate(width_pairs):
        left, right = vocab[i - 1], vocab[j - 1]
        chosen_literal[(bit, True)] = eq(left, right)
        chosen_literal[(bit, False)] = neq(left, right)

    # Nodes: one per (source state, completion literal set), first-occurrence
    # order over (transition, completion) -- the order the legacy completed()
    # loop materialises them in.  Identical literal sets are identical
    # completions (SigmaType equality is literal-set equality), so the dedup
    # matches the control_pairs() dedup of the normalised automaton.
    nodes: Dict[Tuple, _Node] = {}
    completed_transitions = 0
    for transition in transitions:
        active = current_deadline()
        if active is not None:
            active.check("symkernel.build")
        codes, choices = searches[transition.guard]
        completed_transitions += len(codes)
        base_literals = transition.guard.literals
        for code in codes:
            lits = base_literals.union(
                chosen_literal[choice] for choice in choices[code]
            )
            key = (transition.source, lits)
            node = nodes.get(key)
            if node is None:
                node = nodes[key] = _Node(transition.source, transition.guard, code, lits)
            node.targets.add(transition.target)

    # Control pairs: sources of normalised transitions, i.e. nodes with a
    # completion-successor.  Every guard is satisfiable, so a target has
    # followers exactly when it has base transitions.
    has_follow = {
        state: bool(automaton.transitions_from(state)) for state in automaton.states
    }
    control = [
        node
        for node in nodes.values()
        if any(has_follow[target] for target in node.targets)
    ]

    # Rank by the legacy pair repr.  The normalised pair is
    # ((state, completion), completion); its repr is assembled from the
    # state repr and the completion's canonical literal rendering -- the
    # exact strings SigmaType.__repr__ would produce -- without building
    # the SigmaType.
    state_text: Dict[object, str] = {}
    literal_text: Dict[object, str] = {}
    guard_text: Dict[FrozenSet, str] = {}
    for node in control:
        text = guard_text.get(node.lits)
        if text is None:
            if node.lits:
                rendered = []
                for literal in sorted(node.lits):
                    found = literal_text.get(literal)
                    if found is None:
                        found = literal_text[literal] = repr(literal)
                    rendered.append(found)
                text = "SigmaType(%s)" % " and ".join(rendered)
            else:
                text = "SigmaType(true)"
            guard_text[node.lits] = text
        state = state_text.get(node.state)
        if state is None:
            state = state_text[node.state] = repr(node.state)
        node.text = "((%s, %s), %s)" % (state, text, text)
    control.sort(key=lambda node: node.text)
    for rank, node in enumerate(control):
        node.rank = rank
        node.node_id = "n%08d" % rank

    # Per-code mask tables and the agreement groups.
    masks: Dict[int, Tuple] = {}
    by_state_xcode: Dict[Tuple, List[_Node]] = {}
    for node in control:
        found = masks.get(node.code)
        if found is None:
            found = masks[node.code] = _code_masks(node.code, k)
        by_state_xcode.setdefault((node.state, found[0]), []).append(node)

    buchi_transitions: Dict[str, Dict[str, frozenset]] = {}
    edge_count = 0
    for node in control:
        y_code = masks[node.code][1]
        successors: Set[str] = set()
        for target in node.targets:
            for successor in by_state_xcode.get((target, y_code), ()):
                successors.add(successor.node_id)
        if successors:
            edge_count += len(successors)
            buchi_transitions[node.node_id] = {node.node_id: frozenset(successors)}
    initial = [node.node_id for node in control if node.state in automaton.initial]
    accepting = [node.node_id for node in control if node.state in automaton.accepting]
    buchi = BuchiAutomaton(buchi_transitions, initial, accepting)

    node_orig = tuple(node.state for node in control)
    node_xclass = tuple(masks[node.code][2] for node in control)
    node_yimage = tuple(masks[node.code][3] for node in control)
    stats = {
        "control_nodes": len(control),
        "control_edges": edge_count,
        "distinct_guards": len(guards),
        "completed_transitions": completed_transitions,
    }
    return SymbolicKernel(
        without_eq,
        vocab,
        tuple(control),
        buchi,
        (node_orig, node_xclass, node_yimage),
        stats,
    )
