"""Runs of register automata and their traces (Section 2).

Runs are infinite objects; the library represents them in two finite forms:

* :class:`FiniteRun` -- a prefix ``(d_0,q_0,delta_0) .. (d_{n-1},q_{n-1})``
  of a run, used for simulation, streaming checks and counterexamples;
* :class:`LassoRun` -- an ultimately periodic run (data and control both
  periodic), the witness shape produced by decision procedures.

Both expose the paper's three traces: register trace, control trace and
state trace.  Validity checking against an automaton and database, plus
bounded run search (:func:`find_lasso_run`, :func:`generate_finite_runs`),
live here too.

Completeness note for the searches: over a fixed database, guards only
compare register values for equality among themselves, with constants, and
with the active domain.  A pool consisting of ``adom(D)`` plus ``2k+1``
fresh values therefore realises every reachable equality pattern: at any
point at most ``k`` pool values are held in registers, so ``k+1`` unused
fresh values always remain to realise "new distinct value" demands.
"""

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.automata.words import Lasso
from repro.db.database import Database
from repro.db.evaluation import evaluate_type, transition_valuation
from repro.foundations.domain import DataValue, FreshSupply
from repro.foundations.errors import SpecificationError
from repro.foundations.interning import register_mode_listener
from repro.core.caching import ValueCache
from repro.core.register_automaton import RegisterAutomaton, State, Transition


@dataclass(frozen=True)
class FiniteRun:
    """A finite prefix of a run.

    ``data[i]`` and ``states[i]`` describe position ``i``; ``guards[i]`` is
    the type fired from position ``i`` to ``i+1`` (so ``len(guards) ==
    len(states) - 1``).
    """

    data: Tuple[Tuple[DataValue, ...], ...]
    states: Tuple[State, ...]
    guards: Tuple

    def __post_init__(self) -> None:
        if len(self.data) != len(self.states):
            raise SpecificationError("data and states must have equal length")
        if len(self.guards) != max(len(self.states) - 1, 0):
            raise SpecificationError(
                "a finite run of length n needs exactly n-1 guards, got %d for n=%d"
                % (len(self.guards), len(self.states))
            )

    def __len__(self) -> int:
        return len(self.states)

    # traces ------------------------------------------------------------ #

    def register_trace(self) -> Tuple[Tuple[DataValue, ...], ...]:
        return self.data

    def state_trace(self) -> Tuple[State, ...]:
        return self.states

    def control_trace(self) -> Tuple[Tuple[State, object], ...]:
        """The ``(q_i, delta_i)`` pairs (one per position with a guard)."""
        return tuple(zip(self.states[:-1], self.guards))

    def project(self, m: int) -> "FiniteRun":
        """The run with register values restricted to registers ``1..m``.

        Only the data is projected; states and guards are left untouched
        (callers projecting automata use
        :func:`repro.logic.types.project_type` on the guards).
        """
        return FiniteRun(
            tuple(row[:m] for row in self.data), self.states, self.guards
        )

    def map_states(self, fn) -> "FiniteRun":
        """Relabel control states (e.g. undo a product construction)."""
        return FiniteRun(self.data, tuple(fn(s) for s in self.states), self.guards)

    def map_guards(self, fn) -> "FiniteRun":
        """Rewrite guards (e.g. restrict them after a register projection)."""
        return FiniteRun(self.data, self.states, tuple(fn(g) for g in self.guards))

    def is_valid(self, automaton: RegisterAutomaton, database: Database) -> bool:
        """Whether this is a genuine run prefix of *automaton* over *database*."""
        return validity_error(self, automaton, database) is None


@dataclass(frozen=True)
class LassoRun:
    """An ultimately periodic run ``prefix . loop^omega``.

    Positions ``0 .. loop_start-1`` form the prefix; positions
    ``loop_start .. n-1`` the loop.  ``guards`` has one entry per position:
    ``guards[i]`` is fired from position ``i`` to ``i+1``, and the final
    guard ``guards[n-1]`` wraps back to position ``loop_start`` (data
    included: the run repeats its loop data forever).
    """

    data: Tuple[Tuple[DataValue, ...], ...]
    states: Tuple[State, ...]
    guards: Tuple
    loop_start: int

    def __post_init__(self) -> None:
        n = len(self.states)
        if len(self.data) != n:
            raise SpecificationError("data and states must have equal length")
        if len(self.guards) != n:
            raise SpecificationError("a lasso run needs one guard per position")
        if not (0 <= self.loop_start < n):
            raise SpecificationError("loop_start out of range")

    def __len__(self) -> int:
        return len(self.states)

    @property
    def loop_length(self) -> int:
        return len(self.states) - self.loop_start

    def successor(self, position: int) -> int:
        """The next position (wrapping the loop)."""
        nxt = position + 1
        return self.loop_start if nxt == len(self.states) else nxt

    def position_at(self, time: int) -> int:
        """The stored position representing absolute time *time*."""
        if time < len(self.states):
            return time
        return self.loop_start + (time - self.loop_start) % self.loop_length

    # traces ------------------------------------------------------------ #

    def register_trace(self) -> Lasso:
        return Lasso(self.data[: self.loop_start], self.data[self.loop_start :])

    def state_trace(self) -> Lasso:
        return Lasso(self.states[: self.loop_start], self.states[self.loop_start :])

    def control_trace(self) -> Lasso:
        pairs = tuple(zip(self.states, self.guards))
        return Lasso(pairs[: self.loop_start], pairs[self.loop_start :])

    def unfold(self, length: int) -> FiniteRun:
        """The :class:`FiniteRun` covering the first *length* positions."""
        data: List[Tuple[DataValue, ...]] = []
        states: List[State] = []
        guards: List = []
        for time in range(length):
            position = self.position_at(time)
            data.append(self.data[position])
            states.append(self.states[position])
            if time < length - 1:
                guards.append(self.guards[position])
        return FiniteRun(tuple(data), tuple(states), tuple(guards))

    def project(self, m: int) -> "LassoRun":
        """Register projection of the data onto registers ``1..m``."""
        return LassoRun(
            tuple(row[:m] for row in self.data), self.states, self.guards, self.loop_start
        )

    def map_states(self, fn) -> "LassoRun":
        """Relabel control states (e.g. undo a product construction)."""
        return LassoRun(
            self.data, tuple(fn(s) for s in self.states), self.guards, self.loop_start
        )

    def map_guards(self, fn) -> "LassoRun":
        """Rewrite guards (e.g. restrict them after a register projection)."""
        return LassoRun(
            self.data, self.states, tuple(fn(g) for g in self.guards), self.loop_start
        )

    def is_valid(self, automaton: RegisterAutomaton, database: Database) -> bool:
        """Whether this is a genuine (accepting) run of *automaton*."""
        return validity_error(self, automaton, database) is None


def validity_error(run, automaton: RegisterAutomaton, database: Database) -> Optional[str]:
    """Explain why *run* is not a run of *automaton* over *database*.

    Returns ``None`` for valid runs, otherwise a human-readable reason.
    For :class:`LassoRun` this includes the Buchi condition (an accepting
    state inside the loop) and the wrap-around step; for :class:`FiniteRun`
    only the prefix conditions are checked.
    """
    index = automaton.index
    n = len(run.states)
    if n == 0:
        return "empty run"
    if run.states[0] not in automaton.initial:
        return "state %r at position 0 is not initial" % (run.states[0],)
    for row in run.data:
        if len(row) != automaton.k:
            return "register tuple %r has arity %d, expected %d" % (
                row,
                len(row),
                automaton.k,
            )
    if isinstance(run, LassoRun):
        steps = [(i, run.successor(i)) for i in range(n)]
        if not any(
            run.states[i] in automaton.accepting for i in range(run.loop_start, n)
        ):
            return "no accepting state inside the loop (Buchi condition fails)"
    else:
        steps = [(i, i + 1) for i in range(n - 1)]
    for i, j in steps:
        guard = run.guards[i]
        if not any(
            t.target == run.states[j]
            for t in index.transitions_with_guard(run.states[i], guard)
        ):
            return "no transition (%r, %s, %r) at position %d" % (
                run.states[i],
                guard.pretty(),
                run.states[j],
                i,
            )
        valuation = transition_valuation(run.data[i], run.data[j])
        if not evaluate_type(guard, database, valuation):
            return "guard %s fails at position %d on %r -> %r" % (
                guard.pretty(),
                i,
                run.data[i],
                run.data[j],
            )
    return None


# ---------------------------------------------------------------------- #
# bounded run search
# ---------------------------------------------------------------------- #


def value_pool(
    automaton: RegisterAutomaton, database: Database, extra_fresh: int = None
) -> Tuple[DataValue, ...]:
    """The canonical search pool: active domain plus ``2k+1`` fresh values."""
    if extra_fresh is None:
        extra_fresh = 2 * automaton.k + 1
    adom = sorted(database.active_domain(), key=repr)
    supply = FreshSupply(used=adom)
    return tuple(adom) + tuple(supply.take_many(extra_fresh))


_GUARD_LEVELS = ValueCache("runs.guard_levels")


def _guard_levels(guard, k: int):
    """Literals grouped by the highest y-register they mention.

    ``levels[0]`` holds literals with no y-variables (checkable before any
    next-register value is chosen); ``levels[l]`` holds literals whose
    highest y-index is ``l`` (checkable once ``y_1 .. y_l`` are fixed).
    Cached per guard *value*: run search evaluates the same guards millions
    of times, and structurally equal guards share one entry.
    """
    from repro.logic.terms import register_index

    def compute() -> List[List]:
        levels: List[List] = [[] for _ in range(k + 1)]
        for literal in guard.literals:
            highest = 0
            for term in literal.terms:
                decomposed = register_index(term)
                if decomposed and decomposed[0] == "y":
                    highest = max(highest, decomposed[1])
            levels[highest].append(literal)
        return levels

    return _GUARD_LEVELS.lookup((guard, k), compute)


def _register_choices(
    guard, before: Tuple[DataValue, ...], pool: Sequence[DataValue], database: Database, k: int
) -> Iterator[Tuple[DataValue, ...]]:
    """All next register tuples over *pool* satisfying *guard* from *before*.

    Backtracking over registers with early guard filtering: after fixing
    ``y_1 .. y_l`` we check exactly the literals whose variables became
    determined at level ``l``.
    """
    from repro.db.evaluation import evaluate_literal, register_vars

    levels = _guard_levels(guard, k)
    y_variables = register_vars("y", k)
    valuation: Dict = dict(zip(register_vars("x", len(before)), before))

    def level_ok(level: int) -> bool:
        for literal in levels[level]:
            if not evaluate_literal(literal, database, valuation):
                return False
        return True

    if not level_ok(0):
        return

    partial: List[DataValue] = []

    def extend(level: int) -> Iterator[Tuple[DataValue, ...]]:
        if level > k:
            yield tuple(partial)
            return
        variable = y_variables[level - 1]
        for value in pool:
            valuation[variable] = value
            partial.append(value)
            if level_ok(level):
                yield from extend(level + 1)
            partial.pop()
        valuation.pop(variable, None)

    if k == 0:
        yield ()
        return
    yield from extend(1)


def initial_tuples(
    automaton: RegisterAutomaton, database: Database, pool: Sequence[DataValue]
) -> Iterator[Tuple[State, Tuple[DataValue, ...], Transition]]:
    """All (initial state, first tuple, first transition) combinations.

    The first register tuple must satisfy the x-part of some transition
    fired from an initial state.
    """
    k = automaton.k
    for state in sorted(automaton.initial, key=repr):
        for transition in automaton.transitions_from(state):
            # Evaluate the x-part as if choosing "next" values: rename
            # x_i -> y_i so _register_choices' y-backtracking applies.
            x_guard = transition.guard.x_part(k).rename(_x_to_y_mapping(k))
            seen: Set[Tuple[DataValue, ...]] = set()
            for first in _register_choices(
                x_guard,
                ("?",) * k,
                pool,
                database,
                k,
            ):
                if first not in seen:
                    seen.add(first)
                    yield state, first, transition


# Cached interned ``Var`` values: cleared on interning-mode flips, like
# the register_vars memos it is built from.
_X_TO_Y: Dict[int, Dict] = {}

register_mode_listener(_X_TO_Y.clear)


def _x_to_y_mapping(k: int) -> Dict:
    """The substitution ``x_i -> y_i`` (cached per register count)."""
    mapping = _X_TO_Y.get(k)
    if mapping is None:
        from repro.db.evaluation import register_vars

        mapping = _X_TO_Y[k] = dict(
            zip(register_vars("x", k), register_vars("y", k))
        )
    return mapping


def find_lasso_run(
    automaton: RegisterAutomaton,
    database: Database,
    pool: Sequence[DataValue] = None,
    max_configurations: int = 200000,
) -> Optional[LassoRun]:
    """Search for an accepting lasso run over *database*.

    Explores the configuration graph (state, register tuple) with values
    from *pool* (default: :func:`value_pool`).  Complete for that pool; by
    the pool-completeness argument in the module docstring, a run over the
    database exists iff one over the pool does.

    Returns a :class:`LassoRun` or ``None``.
    """
    if pool is None:
        pool = value_pool(automaton, database)
    Config = Tuple[State, Tuple[DataValue, ...]]
    parents: Dict[Config, Optional[Tuple[Config, object]]] = {}
    order: List[Config] = []
    for state, first, _transition in initial_tuples(automaton, database, pool):
        config = (state, first)
        if config not in parents:
            parents[config] = None
            order.append(config)

    successors_cache: Dict[Config, List[Tuple[Config, object]]] = {}

    def successors(config: Config) -> List[Tuple[Config, object]]:
        if config in successors_cache:
            return successors_cache[config]
        state, registers = config
        result: List[Tuple[Config, object]] = []
        for transition in automaton.transitions_from(state):
            for nxt in _register_choices(
                transition.guard, registers, pool, database, automaton.k
            ):
                result.append(((transition.target, nxt), transition.guard))
        successors_cache[config] = result
        return result

    # Forward BFS to collect all reachable configurations.
    queue = list(order)
    while queue:
        if len(parents) > max_configurations:
            raise SpecificationError(
                "configuration graph exceeds %d nodes; shrink the pool or database"
                % max_configurations
            )
        config = queue.pop(0)
        for target, guard in successors(config):
            if target not in parents:
                parents[target] = (config, guard)
                order.append(target)
                queue.append(target)

    def path_to(config: Config) -> Tuple[List[Config], List]:
        configs: List[Config] = [config]
        guards: List = []
        node = config
        while parents[node] is not None:
            node, guard = parents[node]
            configs.append(node)
            guards.append(guard)
        return list(reversed(configs)), list(reversed(guards))

    for anchor in order:
        if anchor[0] not in automaton.accepting:
            continue
        cycle = _find_cycle(anchor, successors)
        if cycle is None:
            continue
        cycle_configs, cycle_guards = cycle
        access_configs, access_guards = path_to(anchor)
        # assemble: prefix = access path without the anchor; loop = anchor + cycle interior
        all_configs = access_configs[:-1] + cycle_configs[:-1]
        all_guards = access_guards + cycle_guards
        loop_start = len(access_configs) - 1
        return LassoRun(
            data=tuple(c[1] for c in all_configs),
            states=tuple(c[0] for c in all_configs),
            guards=tuple(all_guards),
            loop_start=loop_start,
        )
    return None


def _find_cycle(anchor, successors) -> Optional[Tuple[List, List]]:
    """A shortest non-empty cycle anchor -> anchor; (configs, guards)."""
    local_parent: Dict = {}
    queue: List = []
    for target, guard in successors(anchor):
        if target == anchor:
            return [anchor, anchor], [guard]
        if target not in local_parent:
            local_parent[target] = (anchor, guard)
            queue.append(target)
    while queue:
        config = queue.pop(0)
        for target, guard in successors(config):
            if target == anchor:
                configs = [anchor]
                guards = [guard]
                node = config
                while node != anchor:
                    configs.append(node)
                    node, back_guard = local_parent[node]
                    guards.append(back_guard)
                configs.append(anchor)
                return list(reversed(configs)), list(reversed(guards))
            if target not in local_parent:
                local_parent[target] = (config, guard)
                queue.append(target)
    return None


def generate_finite_runs(
    automaton: RegisterAutomaton,
    database: Database,
    length: int,
    pool: Sequence[DataValue] = None,
    limit: int = None,
) -> Iterator[FiniteRun]:
    """Enumerate valid run prefixes of the given *length* (DFS order).

    Exhaustive over the pool; *limit* caps the number of yielded runs.
    """
    if length < 1:
        return
    if pool is None:
        pool = value_pool(automaton, database)
    produced = [0]

    def extend(
        data: List[Tuple[DataValue, ...]], states: List[State], guards: List
    ) -> Iterator[FiniteRun]:
        if limit is not None and produced[0] >= limit:
            return
        if len(states) == length:
            produced[0] += 1
            yield FiniteRun(tuple(data), tuple(states), tuple(guards))
            return
        for transition in automaton.transitions_from(states[-1]):
            for nxt in _register_choices(
                transition.guard, data[-1], pool, database, automaton.k
            ):
                yield from extend(
                    data + [nxt], states + [transition.target], guards + [transition.guard]
                )

    seen_starts: Set[Tuple[State, Tuple[DataValue, ...]]] = set()
    for state, first, _transition in initial_tuples(automaton, database, pool):
        if (state, first) in seen_starts:
            continue
        seen_starts.add((state, first))
        yield from extend([first], [state], [])
