"""The paper's contribution: register automata, views, and their theory.

Module map (one module per paper section / theorem cluster):

* :mod:`repro.core.register_automaton` -- the base model (Section 2),
* :mod:`repro.core.runs` -- finite and lasso-shaped runs and their traces,
* :mod:`repro.core.symbolic` -- symbolic control traces, ``SControl(A)``
  as a Buchi automaton, and realisation of symbolic traces by concrete
  databases and runs (Theorem 9, stage 1; the re-proof of [19]),
* :mod:`repro.core.extended` -- extended register automata with global
  regular (in)equality constraints (Section 3) and Proposition 6,
* :mod:`repro.core.emptiness` -- emptiness / nonemptiness with witnesses
  (Theorem 9 + Corollary 10),
* :mod:`repro.core.verification` -- LTL-FO model checking (Theorem 12),
* :mod:`repro.core.projection` -- projections of (extended) register
  automata without a database (Theorem 13, Lemma 21),
* :mod:`repro.core.lr` -- LR-boundedness and Theorem 19 (both directions),
* :mod:`repro.core.enhanced` -- enhanced automata with finiteness and
  tuple-inequality constraints; projections hiding the database
  (Section 6, Theorem 24).
"""

from repro.core.register_automaton import RegisterAutomaton, Transition
from repro.core.runs import FiniteRun, LassoRun
from repro.core.extended import ExtendedAutomaton, GlobalConstraint
from repro.core.enhanced import EnhancedAutomaton, FinitenessConstraint, TupleInequalityConstraint

__all__ = [
    "RegisterAutomaton",
    "Transition",
    "FiniteRun",
    "LassoRun",
    "ExtendedAutomaton",
    "GlobalConstraint",
    "EnhancedAutomaton",
    "FinitenessConstraint",
    "TupleInequalityConstraint",
]
