"""Projections of register automata without a database (Section 4, Theorem 13).

Register automata are *not* closed under projection (Example 4); extended
automata are, and they can describe every projection of a register
automaton.  The constructive heart is **Lemma 21**: for a complete,
state-driven register automaton ``A`` there are regular expressions
``e=_{ij}`` / ``e!=_{ij}`` over its states such that for every state trace
``w`` and positions ``a <= b``:

* ``(a,i) ~_w (b,j)``  iff the factor ``w_a .. w_b`` is in ``e=_{ij}``,
* ``(a,i) !=_w (b,j)`` iff the factor is in ``e!=_{ij}``,

where ``~_w`` is the equality relation induced by the guards and ``!=_w``
the induced disequality.  Both are recognised by small tracking automata:

* the **equality tracker** carries the set ``S`` of registers whose current
  value equals the value of register ``i`` at the factor's start (the
  paper's subset automaton);
* the **inequality tracker** runs the equality tracker to some middle
  position ``c``, consumes one local disequality literal of the (complete)
  type at ``c``, and then tracks the other side's equality corridor to the
  end.  Completeness of the types guarantees every induced disequality has
  such a local witness inside the factor (the corridors of the two classes
  overlap, and a complete type settles every pair it sees).

:func:`project_register_automaton` assembles Theorem 13 / Proposition 20:
restrict the guards to the kept registers and attach the Lemma 21
constraints for the kept register pairs.  The resulting extended automaton
is LR-bounded (Proposition 20); see :mod:`repro.core.lr`.

:func:`project_extended` extends projection to extended automata
(Theorem 13 in full).  Global equality constraints are first eliminated by
Proposition 6; local (dis)equality transport is Lemma 21 again.  For the
remaining *global* inequality constraints, a disequality between kept
registers ``(a,i) != (b,j)`` may be witnessed by a constraint match
``(n, n')`` connected to ``a`` and ``b`` through equality corridors.  The
implementation captures exactly the matches lying inside the factor
(``a <= n <= n' <= b``); matches whose corridors extend outside the factor
are covered up to an optional ``lookahead`` horizon past the factor's end
(0 by default, i.e. disabled).  With the default, the result is therefore
*complete but possibly under-constrained*: ``Reg(result)`` always contains
``Pi_m(Reg(input))``, with equality whenever witnessing matches stay inside
their factors -- which holds for every constraint produced by this
library's own constructions and for the paper's worked examples.  The
paper's fully general argument goes through MSO transitive closure and
Lemma 14 and is not effective in any practical sense; ``DESIGN.md``
documents this substitution.
"""

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.automata.dfa import Dfa
from repro.automata.nfa import EPSILON, Nfa
from repro.foundations.errors import SpecificationError
from repro.logic.literals import eq as lit_eq
from repro.logic.literals import neq as lit_neq
from repro.logic.terms import X, Y
from repro.logic.types import SigmaType, project_type
from repro.core.extended import (
    EQ,
    NEQ,
    ExtendedAutomaton,
    GlobalConstraint,
    eliminate_equality_constraints,
    lift_constraints_to_states,
)
from repro.core.parallel import parallel_map
from repro.core.pruning import prune_extended, prune_infeasible
from repro.core.register_automaton import RegisterAutomaton, State, Transition


def _normalize(automaton: RegisterAutomaton) -> RegisterAutomaton:
    """Complete and state-driven normal form (the Lemma 21 precondition)."""
    result = automaton
    if not result.is_complete():
        result = result.completed()
    if not result.is_state_driven():
        result = result.state_driven()
    return result


def _guard_map(automaton: RegisterAutomaton) -> Dict[State, SigmaType]:
    """State -> its unique guard (state-driven automata)."""
    guards: Dict[State, SigmaType] = {}
    for state in automaton.states:
        guard = automaton.guard_of_state(state)
        if guard is not None:
            guards[state] = guard
    return guards


def _x_class(guard: SigmaType, register: int, k: int) -> FrozenSet[int]:
    """Registers whose x-value the guard forces equal to ``x_register``."""
    from repro.logic.types import x_equality_classes

    return x_equality_classes(guard, k)[register]


def _advance_set(guard: SigmaType, members: FrozenSet[int], k: int) -> FrozenSet[int]:
    """One corridor step: registers at the next position equal to the class."""
    from repro.logic.types import advance_registers

    return advance_registers(guard, members, k)


def equality_tracker_dfa(automaton: RegisterAutomaton, i: int, j: int) -> Dfa:
    """The Lemma 21 automaton for ``e=_{ij}``.

    Accepts exactly the factors ``q_a .. q_b`` (over the normalised
    automaton's states) along which the value of register *i* at the start
    is carried into register *j* at the end.  *automaton* must be complete
    and state-driven.
    """
    guards = _guard_map(automaton)
    k = automaton.k
    alphabet = frozenset(automaton.states)
    initial = "init"
    dead = "dead"
    transitions: Dict[Tuple, object] = {}
    states: Set = {initial, dead}
    accepting: Set = set()
    worklist: List = []

    for symbol in alphabet:
        transitions[(dead, symbol)] = dead
        guard = guards.get(symbol)
        if guard is None:
            transitions[(initial, symbol)] = dead
            continue
        start_set = _x_class(guard, i, k)
        target = (start_set, symbol)
        transitions[(initial, symbol)] = target
        if target not in states:
            states.add(target)
            worklist.append(target)

    while worklist:
        state = worklist.pop()
        members, previous = state
        if j in members:
            accepting.add(state)
        guard = guards[previous]
        for symbol in alphabet:
            next_guard = guards.get(symbol)
            if next_guard is None:
                transitions[(state, symbol)] = dead
                continue
            advanced = _advance_set(guard, members, k)
            target = (advanced, symbol)
            transitions[(state, symbol)] = target
            if target not in states:
                states.add(target)
                worklist.append(target)

    # accepting membership for states discovered before the loop ran
    for state in states:
        if isinstance(state, tuple) and j in state[0]:
            accepting.add(state)
    return Dfa(states, alphabet, transitions, initial, accepting).minimize()


def corridor_dfa(
    automaton: RegisterAutomaton,
    start: Tuple[str, int],
    end: Tuple[str, int],
) -> Dfa:
    """A generalised equality tracker with x/y endpoints.

    Accepts the factors ``q_a .. q_b`` along which the value of the *start*
    term at the factor's first position is carried to the *end* term at its
    last position.  Endpoints are ``("x", r)`` (register ``r`` at the
    anchor position itself) or ``("y", r)`` (register ``r`` at the position
    *after* the anchor) -- the shapes relational-literal arguments take in
    guards, needed by the Theorem 24 construction.
    *automaton* must be (equality-)complete and state-driven.
    """
    guards = _guard_map(automaton)
    k = automaton.k
    alphabet = frozenset(automaton.states)
    start_kind, start_register = start
    end_kind, end_register = end
    initial = "init"
    dead = "dead"
    transitions: Dict[Tuple, object] = {}
    states: Set = {initial, dead}
    accepting: Set = set()
    worklist: List = []

    from repro.logic.types import y_successor_images

    def start_set(guard: SigmaType) -> FrozenSet[int]:
        if start_kind == "x":
            return _x_class(guard, start_register, k)
        images = y_successor_images(guard, k)
        return frozenset(
            m for m in range(1, k + 1) if start_register in images[m]
        )

    def accepts_here(state) -> bool:
        members, previous, direct = state
        if direct:
            return True
        guard = guards[previous]
        if end_kind == "x":
            return end_register in members
        images = y_successor_images(guard, k)
        return any(end_register in images[l] for l in members)

    for symbol in alphabet:
        transitions[(dead, symbol)] = dead
        guard = guards.get(symbol)
        if guard is None:
            transitions[(initial, symbol)] = dead
            continue
        # A length-1 factor with both endpoints on the y side is connected
        # directly inside the first guard; the corridor sets cannot see it.
        direct = (
            start_kind == "y"
            and end_kind == "y"
            and (
                start_register == end_register
                or guard.closure.same(Y(start_register), Y(end_register))
            )
        )
        target = (start_set(guard), symbol, direct)
        transitions[(initial, symbol)] = target
        if target not in states:
            states.add(target)
            worklist.append(target)

    while worklist:
        state = worklist.pop()
        members, previous, _direct = state
        if accepts_here(state):
            accepting.add(state)
        guard = guards[previous]
        for symbol in alphabet:
            if symbol not in guards:
                transitions[(state, symbol)] = dead
                continue
            target = (_advance_set(guard, members, k), symbol, False)
            transitions[(state, symbol)] = target
            if target not in states:
                states.add(target)
                worklist.append(target)
    for state in states:
        if isinstance(state, tuple) and accepts_here(state):
            accepting.add(state)
    return Dfa(states, alphabet, transitions, initial, accepting).minimize()


def inequality_tracker_dfa(automaton: RegisterAutomaton, i: int, j: int) -> Dfa:
    """The Lemma 21 automaton for ``e!=_{ij}``.

    Accepts the factors ``q_a .. q_b`` along which the classes of
    ``(a, i)`` and ``(b, j)`` are forced unequal.  Characterisation (the
    lemma): there is a position ``c`` in the factor and registers ``l, m``
    with

    * ``(a,i) ~ (c,l)`` and the complete type at ``c`` contains
      ``x_l != x_m`` and ``(c,m) ~ (b,j)``, or
    * ``(a,i) ~ (c,l)`` and the type at ``c`` contains ``x_l != y_m`` and
      ``(c+1,m) ~ (b,j)``.

    Built as an NFA (phase one tracks the left corridor, a nondeterministic
    switch consumes the disequality literal, phase two tracks the right
    corridor) and determinised.
    """
    guards = _guard_map(automaton)
    k = automaton.k
    alphabet = frozenset(automaton.states)

    transitions: Dict[object, Dict[object, Set[object]]] = {}

    def add(source, symbol, target) -> None:
        transitions.setdefault(source, {}).setdefault(symbol, set()).add(target)

    initial = "init"
    nfa_states: Set = {initial}
    worklist: List = []

    def note(state) -> None:
        if state not in nfa_states:
            nfa_states.add(state)
            worklist.append(state)

    for symbol in alphabet:
        guard = guards.get(symbol)
        if guard is None:
            continue
        start = ("one", _x_class(guard, i, k), symbol)
        add(initial, symbol, start)
        note(start)

    accepting: Set = set()
    while worklist:
        state = worklist.pop()
        phase, members, previous = state
        guard = guards[previous]
        closure = guard.closure
        if phase == "one":
            # switch case (ii): x_l != x_m at this position
            for l in members:
                for m in range(1, k + 1):
                    if closure.entails_neq(X(l), X(m)):
                        target = ("two", _x_class(guard, m, k), previous)
                        add(state, EPSILON, target)
                        note(target)
            for symbol in alphabet:
                if symbol not in guards:
                    continue
                # ordinary phase-one advance
                advanced = _advance_set(guard, members, k)
                target = ("one", advanced, symbol)
                add(state, symbol, target)
                note(target)
                # switch case (i): x_l != y_m; phase two starts at c+1
                for l in members:
                    for m in range(1, k + 1):
                        if closure.entails_neq(X(l), Y(m)):
                            landing = frozenset(
                                m2
                                for m2 in range(1, k + 1)
                                if closure.same(Y(m), Y(m2)) or m2 == m
                            )
                            switch_target = ("two", landing, symbol)
                            add(state, symbol, switch_target)
                            note(switch_target)
        else:
            if j in members:
                accepting.add(state)
            for symbol in alphabet:
                if symbol not in guards:
                    continue
                advanced = _advance_set(guard, members, k)
                target = ("two", advanced, symbol)
                add(state, symbol, target)
                note(target)

    nfa = Nfa(transitions, {initial}, accepting)
    return nfa.determinize(alphabet).minimize()


class _TrackerPair:
    """Picklable worker: both Lemma 21 tracker DFAs for one register pair.

    Wraps the normalised automaton (pickled once per chunk when a process
    pool is in use) and returns, for a pair ``(i, j)``, the equality and
    inequality tracker DFAs -- or ``None`` where the tracked language is
    empty and the constraint would be dropped anyway.
    """

    __slots__ = ("automaton",)

    def __init__(self, automaton: RegisterAutomaton):
        self.automaton = automaton

    def __call__(self, pair):
        i, j = pair
        eq_dfa = equality_tracker_dfa(self.automaton, i, j)
        neq_dfa = inequality_tracker_dfa(self.automaton, i, j)
        return (
            None if eq_dfa.is_empty() else eq_dfa,
            None if neq_dfa.is_empty() else neq_dfa,
        )


def lemma21_constraints(
    automaton: RegisterAutomaton, registers: Iterable[int]
) -> List[GlobalConstraint]:
    """The Lemma 21 constraint set for the given (kept) registers.

    *automaton* must be complete and state-driven.  Constraints whose
    language is empty are dropped, and equality constraints that only
    relate a position to itself through the trivial ``i == j`` reflexivity
    are kept (they are harmless and occasionally meaningful).

    Each register pair's two tracker DFAs are independent of every other
    pair's, so the pairs are mapped through
    :func:`repro.core.parallel.parallel_map` -- serial by default,
    process-parallel under ``REPRO_WORKERS`` -- with the constraint list
    assembled in pair order either way.
    """
    registers = list(registers)
    pairs = [(i, j) for i in registers for j in registers]
    results = parallel_map(_TrackerPair(automaton), pairs, chunk_size=2)
    constraints: List[GlobalConstraint] = []
    for (i, j), (eq_dfa, neq_dfa) in zip(pairs, results):
        if eq_dfa is not None:
            constraints.append(GlobalConstraint(EQ, i, j, eq_dfa))
        if neq_dfa is not None:
            constraints.append(GlobalConstraint(NEQ, i, j, neq_dfa))
    return constraints


def project_register_automaton(
    automaton: RegisterAutomaton, m: int
) -> ExtendedAutomaton:
    """**Theorem 13 for register automata** (= Proposition 20's witness).

    Returns an extended automaton ``B`` with *m* registers such that
    ``Reg(B) = Pi_m(Reg(A))``.  The underlying automaton restricts every
    guard to registers ``1..m``; the global constraints are the Lemma 21
    trackers for pairs of kept registers, so they transport exactly the
    (dis)equalities the hidden registers used to enforce.
    """
    if automaton.signature.relations or automaton.signature.constants:
        raise SpecificationError(
            "Theorem 13 projection applies to automata without a database; "
            "use repro.core.enhanced.project_with_database for Section 6"
        )
    if m > automaton.k:
        raise SpecificationError("cannot keep %d of %d registers" % (m, automaton.k))
    automaton = prune_infeasible(automaton)
    normalised = _normalize(automaton)
    k = normalised.k
    projected = RegisterAutomaton(
        m,
        normalised.signature,
        normalised.states,
        normalised.initial,
        normalised.accepting,
        _agreeing_projected_transitions(normalised, m),
    )
    constraints = lemma21_constraints(normalised, range(1, m + 1))
    return ExtendedAutomaton(projected, constraints)


# ---------------------------------------------------------------------- #
# projection of extended automata (Theorem 13 in full)
# ---------------------------------------------------------------------- #


def project_extended(
    extended: ExtendedAutomaton, m: int, lookahead: int = 0
) -> ExtendedAutomaton:
    """Project an extended automaton onto its first *m* registers.

    Pipeline (following the paper's reductions):

    1. **Proposition 6** eliminates global equality constraints into extra
       registers (which join the hidden set).
    2. The control is completed and made state-driven.
    3. Local (dis)equality information is transported by the Lemma 21
       trackers, exactly as for plain register automata.
    4. Remaining *global inequality* constraints induce additional
       disequalities between kept registers whenever an equality corridor
       links a kept register to a constraint endpoint; matches inside the
       factor are captured exactly, right-overhanging matches up to
       *lookahead* extra steps (0 = disabled; see the module docstring for
       the precise exactness guarantee).
    """
    if extended.automaton.signature.relations or extended.automaton.signature.constants:
        raise SpecificationError("projection of extended automata requires no database")
    if m > extended.k:
        raise SpecificationError("cannot keep %d of %d registers" % (m, extended.k))
    extended = prune_extended(extended)
    without_eq, _original_k = eliminate_equality_constraints(extended)
    base = _normalize(without_eq.automaton)
    # Re-target the inequality constraints at the normalised state space.
    inequality = lift_constraints_to_states(
        without_eq.inequality_constraints(),
        without_eq.automaton.states,
        base.states,
        _normalisation_projection(without_eq.automaton, base),
    )
    k = base.k
    projected_automaton = RegisterAutomaton(
        m,
        base.signature,
        base.states,
        base.initial,
        base.accepting,
        _agreeing_projected_transitions(base, m),
    )
    constraints = lemma21_constraints(base, range(1, m + 1))
    constraints.extend(
        _bridge_constraints(base, inequality, m, lookahead)
    )
    return ExtendedAutomaton(projected_automaton, constraints)


def _agreeing_projected_transitions(normalised: RegisterAutomaton, m: int):
    """Projected transitions, restricted to agreement-compatible pairs.

    In the state-driven normal form, a transition ``(p, d) -> (q, d')``
    whose guards disagree on the shared registers (condition (iii) of
    symbolic control traces) can never be traversed by a run -- but after
    restricting the guards to the kept registers the disagreement may
    involve only *hidden* registers and become invisible, opening control
    paths the original automaton does not have (and whose induced
    constraints can even break LR-boundedness).  Dropping them realises
    the paper's "intersect with the Buchi automaton of consistent traces"
    step at the local level: every remaining control path is a symbolic
    control trace of the original automaton, hence realisable and
    consistent (Theorem 9).
    """
    from repro.core.caching import agreement

    k = normalised.k
    transitions = []
    for transition in normalised.transitions:
        source_guard = normalised.guard_of_state(transition.source)
        target_guard = normalised.guard_of_state(transition.target)
        if target_guard is not None:
            if not agreement(source_guard, target_guard, k):
                continue
        transitions.append(
            Transition(transition.source, project_type(transition.guard, m, k), transition.target)
        )
    return transitions


def _normalisation_projection(original: RegisterAutomaton, normalised: RegisterAutomaton):
    """Map normalised states back to original states.

    Completion keeps states; the state-driven construction produces
    ``(state, guard)`` pairs (possibly nested if applied twice).  We peel
    pairs until we land in the original state set.
    """
    original_states = set(original.states)

    def back(state):
        while state not in original_states and isinstance(state, tuple) and len(state) == 2:
            state = state[0]
        if state not in original_states:
            raise SpecificationError(
                "cannot relate normalised state %r to an original state" % (state,)
            )
        return state

    return back


def _bridge_constraints(
    base: RegisterAutomaton,
    inequality_constraints: Sequence[GlobalConstraint],
    m: int,
    lookahead: int,
) -> List[GlobalConstraint]:
    """Disequalities between kept registers induced by global constraints.

    For a global constraint ``e!=_{i0 j0}`` and kept registers ``i, j``,
    the factor ``q_a .. q_b`` must force ``(a,i) != (b,j)`` whenever there
    are positions ``n <= n'`` with ``(n,i0) ~ (a,i)``, ``(n',j0) ~ (b,j)``
    and ``w_n .. w_{n'}`` matching ``e``.  We build an NFA over factors
    for the in-factor cases (``a <= n``, ``n' <= b``) and for bounded
    right overhang (``n' <= b + lookahead``); the left cases (``n < a``)
    are covered by a deterministic left-profile refinement folded into the
    same NFA via its start states.
    """
    guards = _guard_map(base)
    k = base.k
    alphabet = frozenset(base.states)
    results: List[GlobalConstraint] = []
    for constraint in inequality_constraints:
        dfa = constraint.compiled(base.states)
        for i in range(1, m + 1):
            for j in range(1, m + 1):
                nfa = _bridge_nfa(base, guards, dfa, constraint.i, constraint.j, i, j, k, lookahead)
                compiled = nfa.determinize(alphabet).minimize()
                if not compiled.is_empty():
                    results.append(GlobalConstraint(NEQ, i, j, compiled))
    return results


def _bridge_nfa(
    base: RegisterAutomaton,
    guards: Dict[State, SigmaType],
    constraint_dfa: Dfa,
    i0: int,
    j0: int,
    i: int,
    j: int,
    k: int,
    lookahead: int,
) -> Nfa:
    """The factor NFA for one (constraint, i, j) combination.

    Phases: ``("left", S, prev)`` tracks the corridor of the factor-start
    register ``i``; when ``i0`` enters the corridor the constraint DFA is
    started (``("mid", s, prev)``); when the DFA accepts at a position
    whose corridor reaches ``j0``, phase ``("right", T, prev)`` tracks the
    corridor onwards and accepts when ``j`` is in it.  Right overhang
    (constraint match completing after the factor) is approximated by
    closing acceptance under up to *lookahead* further steps at the end,
    which we realise by also accepting ``mid``/``right`` states from which
    an accepting continuation of length <= lookahead exists along *some*
    guard-consistent extension.
    """
    alphabet = frozenset(base.states)
    transitions: Dict[object, Dict[object, Set[object]]] = {}

    def add(source, symbol, target) -> None:
        transitions.setdefault(source, {}).setdefault(symbol, set()).add(target)

    initial = "init"
    worklist: List = []
    seen: Set = {initial}

    def note(state) -> None:
        if state not in seen:
            seen.add(state)
            worklist.append(state)

    for symbol in alphabet:
        guard = guards.get(symbol)
        if guard is None:
            continue
        start = ("left", _x_class(guard, i, k), symbol)
        add(initial, symbol, start)
        note(start)

    accepting: Set = set()
    while worklist:
        state = worklist.pop()
        phase = state[0]
        if phase == "left":
            _phase, members, previous = state
            guard = guards[previous]
            # start the constraint DFA when i0 joins the corridor (n = here)
            if i0 in members:
                mid = ("mid", constraint_dfa.delta(constraint_dfa.initial, previous), previous)
                add(state, EPSILON, mid)
                note(mid)
            for symbol in alphabet:
                if symbol not in guards:
                    continue
                target = ("left", _advance_set(guard, members, k), symbol)
                add(state, symbol, target)
                note(target)
        elif phase == "mid":
            _phase, dfa_state, previous = state
            guard = guards[previous]
            # the DFA accepting here: n' = here, corridor of j0 starts
            if dfa_state in constraint_dfa.accepting:
                right = ("right", _x_class(guard, j0, k), previous)
                add(state, EPSILON, right)
                note(right)
            for symbol in alphabet:
                if symbol not in guards:
                    continue
                target = ("mid", constraint_dfa.delta(dfa_state, symbol), symbol)
                add(state, symbol, target)
                note(target)
        else:  # "right"
            _phase, members, previous = state
            guard = guards[previous]
            if j in members:
                accepting.add(state)
            for symbol in alphabet:
                if symbol not in guards:
                    continue
                target = ("right", _advance_set(guard, members, k), symbol)
                add(state, symbol, target)
                note(target)

    # Right overhang: also accept states that can reach acceptance within
    # `lookahead` symbol steps along transitions consistent with the
    # control graph (any continuation the automaton could take).
    if lookahead > 0:
        succ_states: Dict[State, List[State]] = {}
        for transition in base.transitions:
            succ_states.setdefault(transition.source, []).append(transition.target)
        can_accept: Set = set(accepting)
        frontier = set(accepting)
        for _ in range(lookahead):
            new_frontier: Set = set()
            for state in list(seen):
                if state in can_accept or state == "init":
                    continue
                previous = state[2]
                for symbol in succ_states.get(previous, ()):
                    for target in transitions.get(state, {}).get(symbol, ()):
                        if target in frontier or target in can_accept:
                            new_frontier.add(state)
                            break
            if not new_frontier:
                break
            can_accept |= new_frontier
            frontier = new_frontier
        accepting = can_accept

    return Nfa(transitions, {initial}, accepting)
