"""Crash-surviving multiplexing of streaming monitor sessions.

The paper's Section 5 observation -- projection-view global constraints
"can be enforced entirely by local transitions, in a streaming fashion"
-- is executed by :class:`~repro.core.streaming.StreamingChecker`, one
run in one process.  This module scales that checker to the ROADMAP's
mass-monitoring shape: a :class:`MonitorMultiplexer` drives thousands of
concurrent sessions over one shared specification, and survives worker
or driver crashes without losing (or double-applying) a single event.

Three ideas carry the design:

* **Compact snapshots.**  :class:`SessionSnapshot` captures exactly the
  run state :meth:`StreamingChecker.feed` depends on -- position, last
  (state, registers) pair, failed status, strictness and the live
  constraint threads -- in a canonical (sorted), picklable, version-tagged
  form.  Theorem 19's register discipline bounds the live-thread count,
  which is what makes per-session snapshots small enough to journal at
  scale ("A Finite Exact Representation of Register Automata
  Configurations", arXiv:1402.6783, is the conceptual anchor).

* **Write-ahead journal + periodic snapshots.**  Every ingested batch is
  journaled *before* any state changes; durable per-session snapshots are
  refreshed every ``REPRO_MONITOR_SNAPSHOT_EVERY`` events (and whenever
  the journal exceeds ``REPRO_MONITOR_JOURNAL_CAP``).  Recovery restores
  each session from its last durable snapshot and replays the journal
  suffix -- deterministic, so the rebuilt fingerprints are byte-identical
  to an uninterrupted run: zero lost, zero double-applied events.

* **Pure shard workers.**  Sharded ingest fans out over the resilient
  process pool (:mod:`repro.core.parallel`) with a *stateless* payload:
  snapshots and events go in, snapshots and verdicts come out, and
  durable state only advances on the driver.  The pool's crash recovery
  resubmits whole chunks, which is safe exactly because the payload owns
  nothing -- a re-run chunk recomputes the same snapshots.

Per-session quarantine keeps one poison event from taking down its
neighbours: the offending session is rolled back to its last good
position, terminally marked with an honest ``DEGRADED``
:class:`~repro.foundations.resilience.Outcome` (``CANCELLED`` for
explicit cancellation, ``COMPLETE`` for a clean close), and recorded in
the RS event log; every other session in the batch proceeds untouched.

Fault sites (``docs/ROBUSTNESS.md``): ``monitor.ingest`` (per ingest
call, driver side; ``crash`` simulates loss of all volatile session
state after the batch is journaled, ``raise`` rejects the batch
atomically before journaling), ``monitor.snapshot`` (per durable
snapshot write; ``raise`` skips the write and keeps the journal tail,
``crash`` as above), ``monitor.restore`` (per session during recovery;
``raise`` quarantines just that session, ``crash`` restarts the --
idempotent -- recovery pass).
"""

import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.core import parallel
from repro.core.extended import ExtendedAutomaton
from repro.core.streaming import StreamingChecker
from repro.db.database import Database
from repro.foundations.errors import SpecificationError
from repro.foundations.faults import FaultInjected, fault
from repro.foundations import knobs
from repro.foundations.resilience import (
    CancellationToken,
    Deadline,
    DeadlineExceeded,
    OperationCancelled,
    Outcome,
    OutcomeStatus,
    current_deadline,
    deadline_scope,
    record_event,
)

__all__ = [
    "SNAPSHOT_VERSION",
    "SessionSnapshot",
    "IngestReport",
    "MonitorMultiplexer",
]

#: Version tag carried by every snapshot; :meth:`SessionSnapshot.apply`
#: refuses to restore a snapshot from a different layout generation.
SNAPSHOT_VERSION = 1


def _canonical_threads(
    threads: List[Dict[object, set]],
) -> Tuple[Tuple[Tuple[object, Tuple[Any, ...]], ...], ...]:
    """The live-thread table in canonical (repr-sorted) tuple form.

    Sorting both the DFA states and the stored values makes equal
    checker states produce equal snapshots (and equal pickles), so
    fingerprint comparisons across serial, sharded and recovered runs
    are byte-level, never modulo set iteration order.
    """
    return tuple(
        tuple(
            sorted(
                ((state, tuple(sorted(values, key=repr))) for state, values in per.items()),
                key=lambda pair: repr(pair[0]),
            )
        )
        for per in threads
    )


@dataclass(frozen=True)
class SessionSnapshot:
    """A compact, picklable, version-tagged capture of a streaming session.

    Records only *run* state -- the specification and database stay with
    the checker, so snapshots are cheap to pickle across the process
    pool and to retain in the multiplexer's durable store.  ``threads``
    is stored canonically sorted; :meth:`apply` rebuilds the mutable
    dict-of-sets form.
    """

    version: int
    k: int
    constraint_count: int
    position: int
    previous: Optional[Tuple[object, Tuple[Any, ...]]]
    failed: Optional[str]
    strict: bool
    threads: Tuple[Tuple[Tuple[object, Tuple[Any, ...]], ...], ...]
    peak_threads: int

    @classmethod
    def capture(cls, checker: StreamingChecker) -> "SessionSnapshot":
        """Snapshot *checker* (the engine behind ``StreamingChecker.snapshot``)."""
        return cls(
            version=SNAPSHOT_VERSION,
            k=checker._automaton.k,
            constraint_count=len(checker._threads),
            position=checker._position,
            previous=checker._previous,
            failed=checker._failed,
            strict=checker._strict,
            threads=_canonical_threads(checker._threads),
            peak_threads=checker.peak_threads,
        )

    def apply(self, checker: StreamingChecker) -> None:
        """Restore this snapshot into *checker* (``StreamingChecker.restore``)."""
        if self.version != SNAPSHOT_VERSION:
            raise SpecificationError(
                "session snapshot version %r is not supported (expected %d)"
                % (self.version, SNAPSHOT_VERSION)
            )
        if self.k != checker._automaton.k:
            raise SpecificationError(
                "session snapshot arity %d does not match the checker's "
                "automaton (k=%d)" % (self.k, checker._automaton.k)
            )
        if self.constraint_count != len(checker._threads):
            raise SpecificationError(
                "session snapshot carries %d constraint thread tables, the "
                "checker's specification has %d constraints"
                % (self.constraint_count, len(checker._threads))
            )
        checker._strict = self.strict
        checker._position = self.position
        checker._previous = self.previous
        checker._failed = self.failed
        checker._threads = [
            {state: set(values) for state, values in per} for per in self.threads
        ]
        checker.peak_threads = self.peak_threads

    def fingerprint(self) -> Tuple[object, int, Optional[str], int]:
        """``(state, position, failed, peak_threads)`` -- the identity tests compare."""
        state = self.previous[0] if self.previous is not None else None
        return (state, self.position, self.failed, self.peak_threads)


# ---------------------------------------------------------------------- #
# journal entries, shard tasks and the pure worker payload
# ---------------------------------------------------------------------- #


class JournalEntry(NamedTuple):
    """One acked event: a global sequence number plus the event itself."""

    seq: int
    session: object
    state: object
    registers: Tuple[Any, ...]


class _SessionTask(NamedTuple):
    """Work shipped to a shard: where the session is, what to feed it."""

    session: object
    snapshot: SessionSnapshot
    events: Tuple[JournalEntry, ...]


class _SessionResult(NamedTuple):
    """What applying a task produced (pure function of the task).

    ``results`` holds ``(seq, verdict)`` for every applied event;
    ``poison`` is ``(seq, error)`` when an event raised, in which case
    ``snapshot`` is the session rolled back to its last good position;
    ``interrupted`` marks a deadline/cancellation stop mid-task, with
    the unapplied suffix left for journal replay.
    """

    session: object
    snapshot: SessionSnapshot
    results: Tuple[Tuple[int, Optional[str]], ...]
    poison: Optional[Tuple[int, str]]
    interrupted: bool


def _apply_session(
    extended: ExtendedAutomaton,
    database: Database,
    snapshot: SessionSnapshot,
    events: Tuple[JournalEntry, ...],
) -> _SessionResult:
    """Apply *events* to the session *snapshot*; pure and deterministic.

    This is the single application path -- serial ingest, sharded workers
    and journal replay all come through here, which is what makes their
    answers byte-identical by construction.  A poison event (any
    unexpected exception from ``feed``) rolls the session back to the
    state just before it, so quarantine freezes a meaningful position.
    """
    checker = StreamingChecker(extended, database, strict=False).restore(snapshot)
    applied: List[Tuple[int, Optional[str]]] = []
    poison: Optional[Tuple[int, str]] = None
    interrupted = False
    session = events[0].session if events else None
    for offset, entry in enumerate(events):
        active = current_deadline()
        if active is not None and active.expired():
            interrupted = True
            break
        try:
            verdict = checker.feed(entry.state, entry.registers)
        except (DeadlineExceeded, OperationCancelled):
            interrupted = True
            break
        except Exception as exc:  # a poison event: quarantine material
            poison = (entry.seq, "%s: %s" % (type(exc).__name__, exc))
            # Roll back to the last good position: restore the input
            # snapshot and replay the already-validated prefix.
            checker = StreamingChecker(extended, database, strict=False).restore(
                snapshot
            )
            for good in events[:offset]:  # deadline-ok: bounded replay of an already-validated prefix
                checker.feed(good.state, good.registers)
            break
        applied.append((entry.seq, verdict))
    return _SessionResult(
        session=session,
        snapshot=checker.snapshot(),
        results=tuple(applied),
        poison=poison,
        interrupted=interrupted,
    )


class _ShardWorker:
    """The process-pool payload: a stateless shard applier.

    Holds only the immutable specification; every call is a pure
    function from ``(snapshot, events)`` tasks to results, so the pool's
    chunk resubmission after a worker crash recomputes identical answers
    and durable state never advances off the driver.
    """

    __slots__ = ("_extended", "_database")

    def __init__(self, extended: ExtendedAutomaton, database: Database):
        self._extended = extended
        self._database = database

    def __call__(self, shard: Tuple[_SessionTask, ...]) -> Tuple[_SessionResult, ...]:
        return tuple(
            _apply_session(self._extended, self._database, task.snapshot, task.events)
            for task in shard
        )


def _shard_of(session: object, shards: int) -> int:
    """Deterministic shard assignment (never Python's salted ``hash``)."""
    return zlib.crc32(repr(session).encode("utf-8")) % shards


# ---------------------------------------------------------------------- #
# the multiplexer
# ---------------------------------------------------------------------- #


class _VolatileCrash(Exception):
    """Internal signal: the ``crash`` fault kind zapped volatile state."""


@dataclass(frozen=True)
class IngestReport:
    """What one :meth:`MonitorMultiplexer.ingest` call did.

    ``outcome`` is the batch-level verdict (``COMPLETE``, ``TIMEOUT`` or
    ``CANCELLED`` -- per-session failures never degrade the batch);
    ``violations`` maps each touched session that is in a failed state to
    its (original) violation message; ``quarantined`` lists sessions
    newly quarantined by this call; ``skipped`` counts events addressed
    to already-terminal sessions, which are acked but not applied.
    """

    outcome: Outcome
    applied: int
    violations: Dict[object, str]
    quarantined: Tuple[object, ...]
    skipped: int


class _Session:
    """Volatile per-session record: current snapshot plus bookkeeping."""

    __slots__ = ("snapshot", "applied_seq", "since_durable", "outcome")

    def __init__(
        self,
        snapshot: SessionSnapshot,
        applied_seq: int,
        since_durable: int = 0,
        outcome: Optional[Outcome] = None,
    ):
        self.snapshot = snapshot
        self.applied_seq = applied_seq
        self.since_durable = since_durable
        self.outcome = outcome  # terminal sessions only


class MonitorMultiplexer:
    """Drive many concurrent streaming sessions, crash-safely.

    Events arrive in batches tagged by session id
    (``ingest([(session, state, registers), ...])``); sessions are
    sharded by id over the resilient process pool when ``REPRO_WORKERS``
    and ``REPRO_MONITOR_SHARDS`` allow, and applied serially otherwise --
    byte-identically, because both paths share :func:`_apply_session`.

    Durability model: the **durable** half (write-ahead journal, periodic
    per-session snapshots, terminal-outcome ledger) survives a crash; the
    **volatile** half (live session snapshots) is rebuilt from it by
    :meth:`recover`, which the ``monitor.ingest:crash`` fault kind
    exercises end to end.  Knobs: ``REPRO_MONITOR_SHARDS``,
    ``REPRO_MONITOR_SNAPSHOT_EVERY``, ``REPRO_MONITOR_JOURNAL_CAP`` (all
    call-time, all overridable per instance).
    """

    def __init__(
        self,
        extended: ExtendedAutomaton,
        database: Database,
        shards: Optional[int] = None,
        snapshot_every: Optional[int] = None,
        journal_cap: Optional[int] = None,
    ):
        self._extended = extended
        self._database = database
        self._shards = shards
        self._snapshot_every = snapshot_every
        self._journal_cap = journal_cap
        self._worker = _ShardWorker(extended, database)
        self._initial = StreamingChecker(extended, database, strict=False).snapshot()
        # durable state: survives a (simulated) crash
        self._store: Dict[object, Tuple[SessionSnapshot, int]] = {}
        self._journal: List[JournalEntry] = []
        self._ledger: Dict[object, Outcome] = {}
        self._seq = 0
        # volatile state: lost on crash, rebuilt by recover()
        self._sessions: Dict[object, _Session] = {}
        self._has_pending = False
        # counters (diagnostic, not part of the identity contract)
        self._events_applied = 0
        self._recoveries = 0
        self._snapshots_taken = 0

    # -- knobs ---------------------------------------------------------- #

    def _effective_shards(self) -> int:
        if self._shards is not None:
            return max(int(self._shards), 1)
        configured = knobs.value("REPRO_MONITOR_SHARDS")
        if configured > 0:
            return configured
        return parallel.worker_count()

    def _effective_snapshot_every(self) -> int:
        if self._snapshot_every is not None:
            return max(int(self._snapshot_every), 1)
        return knobs.value("REPRO_MONITOR_SNAPSHOT_EVERY")

    def _effective_journal_cap(self) -> int:
        if self._journal_cap is not None:
            return max(int(self._journal_cap), 1)
        return knobs.value("REPRO_MONITOR_JOURNAL_CAP")

    # -- session lifecycle ---------------------------------------------- #

    def open_session(self, session: object) -> None:
        """Register a fresh session (it also opens implicitly on first event)."""
        if session in self._store or session in self._ledger:
            raise SpecificationError("session %r is already open" % (session,))
        self._store[session] = (self._initial, self._seq)
        self._sessions[session] = _Session(self._initial, self._seq)

    def open_sessions(self, sessions: Iterable[object]) -> None:
        for session in sessions:
            self.open_session(session)

    def close_session(self, session: object) -> Outcome:
        """Finish a session cleanly; its state freezes and its outcome is honest."""
        return self._terminate(session, "complete")

    def cancel_session(self, session: object, reason: str = "") -> Outcome:
        """Stop a session on external request (``CANCELLED`` taxonomy)."""
        return self._terminate(session, "cancelled", reason=reason)

    def _terminate(self, session: object, how: str, reason: str = "") -> Outcome:
        existing = self._ledger.get(session)
        if existing is not None:
            return existing
        record = self._sessions.get(session)
        if record is None:
            raise SpecificationError("session %r is not open" % (session,))
        snapshot = record.snapshot
        stats = {
            "session": repr(session),
            "position": snapshot.position,
            "peak_threads": snapshot.peak_threads,
            "failed": snapshot.failed,
        }
        if how == "cancelled":
            if reason:
                stats["reason"] = reason
            outcome: Outcome = Outcome.cancelled(**stats)
        else:
            outcome = Outcome.complete(**stats)
        self._ledger[session] = outcome
        self._store[session] = (snapshot, record.applied_seq)
        record.outcome = outcome
        record.since_durable = 0
        return outcome

    def _quarantine(
        self, session: object, snapshot: SessionSnapshot, seq: int, error: str
    ) -> Outcome:
        """Terminally fail one session (everyone else is unaffected)."""
        outcome = Outcome.degraded(
            session=repr(session),
            reason="poison-event",
            seq=seq,
            error=error,
            position=snapshot.position,
            peak_threads=snapshot.peak_threads,
        )
        self._ledger[session] = outcome
        self._store[session] = (snapshot, seq)
        self._sessions[session] = _Session(snapshot, seq, outcome=outcome)
        record_event(
            "RS008",
            "monitor session %r quarantined at seq %d: %s" % (session, seq, error),
            location="monitor.ingest",
            data={"session": repr(session), "seq": seq, "error": error},
        )
        return outcome

    # -- introspection -------------------------------------------------- #

    def session_ids(self) -> Tuple[object, ...]:
        """Every known session id, repr-sorted (deterministic)."""
        return tuple(sorted(self._store, key=repr))

    def live_sessions(self) -> int:
        """Sessions still accepting events (not terminal)."""
        return sum(1 for session in self._store if session not in self._ledger)

    def quarantined_sessions(self) -> Tuple[object, ...]:
        """Sessions terminally failed by a poison event or a failed restore."""
        return tuple(
            session
            for session in self.session_ids()
            if self._ledger.get(session) is not None
            and self._ledger[session].status is OutcomeStatus.DEGRADED
        )

    def session_outcome(self, session: object) -> Optional[Outcome]:
        """The terminal outcome, or ``None`` while the session is live."""
        return self._ledger.get(session)

    def session_fingerprint(
        self, session: object
    ) -> Tuple[object, int, Optional[str], int]:
        """``(state, position, failed, peak_threads)`` for one session."""
        record = self._sessions.get(session)
        if record is not None:
            return record.snapshot.fingerprint()
        stored = self._store.get(session)
        if stored is None:
            raise SpecificationError("session %r is not known" % (session,))
        return stored[0].fingerprint()

    def fingerprints(self) -> Dict[object, Tuple[object, int, Optional[str], int]]:
        """All session fingerprints -- the crash-recovery identity witness."""
        return {
            session: self.session_fingerprint(session)
            for session in self.session_ids()
        }

    def stats(self) -> Dict[str, int]:
        return {
            "sessions": len(self._store),
            "live": self.live_sessions(),
            "quarantined": len(self.quarantined_sessions()),
            "events_applied": self._events_applied,
            "journal_len": len(self._journal),
            "snapshots_taken": self._snapshots_taken,
            "recoveries": self._recoveries,
        }

    # -- ingest --------------------------------------------------------- #

    def ingest(
        self,
        events: Iterable[Tuple[object, object, Tuple[Any, ...]]],
        deadline=None,
        cancel: Optional[CancellationToken] = None,
    ) -> IngestReport:
        """Apply one batch of ``(session, state, registers)`` events.

        The batch is journaled before anything else changes (write-ahead),
        so a crash at any later point replays it exactly once.  Unknown
        session ids open implicitly.  A ``raise`` fault at
        ``monitor.ingest`` rejects the whole batch atomically *before*
        journaling; a ``crash`` fault fires after journaling and is
        recovered from in-line.
        """
        batch = [
            (session, state, tuple(registers)) for session, state, registers in events
        ]
        resolved = Deadline.resolve(deadline)
        kind = fault("monitor.ingest")
        if kind in ("raise", "exception"):
            raise FaultInjected(
                "injected failure at monitor.ingest: batch of %d rejected "
                "atomically (nothing journaled, nothing applied)" % len(batch)
            )
        if self._has_pending:
            # A previous ingest stopped early (deadline or cancellation)
            # with journaled events unapplied; drain them first so every
            # session sees its events in journal order, exactly once.
            self._replay(self._seq + 1, {}, [])
            self._has_pending = False
        for session, _state, _registers in batch:
            if session not in self._store and session not in self._ledger:
                self.open_session(session)
        entries: List[JournalEntry] = []
        for session, state, registers in batch:
            self._seq += 1
            entries.append(JournalEntry(self._seq, session, state, registers))
        self._journal.extend(entries)
        first_seq = entries[0].seq if entries else self._seq + 1

        applied = 0
        violations: Dict[object, str] = {}
        newly_quarantined: List[object] = []
        skipped = 0
        status = "complete"
        try:
            if kind == "crash":
                raise _VolatileCrash("injected crash at monitor.ingest")
            with deadline_scope(resolved):
                applied, skipped, status = self._apply_entries(
                    entries, cancel, violations, newly_quarantined
                )
        except _VolatileCrash:
            # All volatile session state is gone; the journal and the
            # durable snapshots are not.  Recover in-line and account the
            # just-journaled batch through the replay results.
            applied, skipped = self._crash_recover(
                first_seq, violations, newly_quarantined
            )
        if status in ("timeout", "cancelled"):
            self._has_pending = True
        self._refresh_durable(entries)
        stats = self.stats()
        stats["batch"] = len(entries)
        if status == "timeout":
            outcome = Outcome.timeout(**stats)
        elif status == "cancelled":
            outcome = Outcome.cancelled(**stats)
        else:
            outcome = Outcome.complete(**stats)
        return IngestReport(
            outcome=outcome,
            applied=applied,
            violations=violations,
            quarantined=tuple(newly_quarantined),
            skipped=skipped,
        )

    def _apply_entries(
        self,
        entries: List[JournalEntry],
        cancel: Optional[CancellationToken],
        violations: Dict[object, str],
        newly_quarantined: List[object],
    ) -> Tuple[int, int, str]:
        """Apply journaled *entries* to the live sessions; the normal path."""
        per_session: Dict[object, List[JournalEntry]] = {}
        order: List[object] = []
        skipped = 0
        for entry in entries:
            if entry.session in self._ledger:
                skipped += 1  # terminal session: acked, never applied
                continue
            if entry.session not in per_session:
                per_session[entry.session] = []
                order.append(entry.session)
            per_session[entry.session].append(entry)
        tasks = [
            _SessionTask(
                session, self._sessions[session].snapshot, tuple(per_session[session])
            )
            for session in order
        ]
        shard_count = self._effective_shards()
        workers = parallel.worker_count()
        results: List[_SessionResult] = []
        status = "complete"
        if workers <= 1 or shard_count <= 1 or len(tasks) <= 1:
            for task in tasks:
                try:
                    if cancel is not None:
                        cancel.check("monitor.ingest")
                    active = current_deadline()
                    if active is not None:
                        active.check("monitor.ingest")
                except DeadlineExceeded:
                    status = "timeout"
                    break
                except OperationCancelled:
                    status = "cancelled"
                    break
                result = _apply_session(
                    self._extended, self._database, task.snapshot, task.events
                )
                results.append(result)
                if result.interrupted:
                    status = "timeout"
                    break
        else:
            # Workers cannot observe the driver's ambient deadline scope,
            # so the sharded path polls on the driver with whole-batch
            # granularity: an expiry or cancellation seen *before*
            # dispatch applies nothing (the journaled events stay pending
            # and the next ingest drains them), matching the serial
            # path's "stop between sessions, never mid-event" contract.
            try:
                if cancel is not None:
                    cancel.check("monitor.ingest")
                active = current_deadline()
                if active is not None:
                    active.check("monitor.ingest")
            except DeadlineExceeded:
                return 0, skipped, "timeout"
            except OperationCancelled:
                return 0, skipped, "cancelled"
            shards: Dict[int, List[_SessionTask]] = {}
            for task in tasks:
                shards.setdefault(_shard_of(task.session, shard_count), []).append(task)
            items = [tuple(shards[index]) for index in sorted(shards)]
            for shard_result in parallel.parallel_map(
                self._worker, items, chunk_size=1
            ):
                results.extend(shard_result)
        applied = self._merge_results(results, violations, newly_quarantined)
        return applied, skipped, status

    def _merge_results(
        self,
        results: List[_SessionResult],
        violations: Dict[object, str],
        newly_quarantined: List[object],
    ) -> int:
        """Advance volatile session state from application *results*."""
        applied = 0
        for result in results:
            session = result.session
            if session is None:
                continue
            record = self._sessions[session]
            record.snapshot = result.snapshot
            if result.results:
                record.applied_seq = result.results[-1][0]
                record.since_durable += len(result.results)
                applied += len(result.results)
                self._events_applied += len(result.results)
            if result.snapshot.failed is not None:
                violations[session] = result.snapshot.failed
            if result.poison is not None:
                seq, error = result.poison
                self._quarantine(session, result.snapshot, seq, error)
                newly_quarantined.append(session)
        return applied

    # -- durability: snapshots, truncation, recovery -------------------- #

    def _snapshot_session(self, session: object) -> bool:
        """Refresh one session's durable snapshot; honest about failure."""
        record = self._sessions[session]
        kind = fault("monitor.snapshot")
        if kind in ("raise", "exception"):
            record_event(
                "RS009",
                "durable snapshot of monitor session %r skipped (injected "
                "failure); the journal retains its tail" % (session,),
                location="monitor.snapshot",
                data={"session": repr(session), "applied_seq": record.applied_seq},
            )
            return False
        if kind == "crash":
            raise _VolatileCrash("injected crash at monitor.snapshot")
        self._store[session] = (record.snapshot, record.applied_seq)
        record.since_durable = 0
        self._snapshots_taken += 1
        return True

    def _refresh_durable(self, entries: List[JournalEntry]) -> None:
        """Periodic snapshots, then journal truncation and cap enforcement."""
        snapshot_every = self._effective_snapshot_every()
        touched: List[object] = []
        for entry in entries:
            if entry.session not in touched:
                touched.append(entry.session)
        try:
            for session in touched:
                record = self._sessions.get(session)
                if record is None or record.outcome is not None:
                    continue
                if record.since_durable >= snapshot_every:
                    self._snapshot_session(session)
            self._truncate_journal()
            cap = self._effective_journal_cap()
            if len(self._journal) > cap:
                # Cap pressure: snapshot every lagging live session so the
                # prefix floor advances, then truncate again.  Best-effort
                # under injected snapshot faults -- the journal simply
                # stays longer, correctness is unaffected.
                for session in self.session_ids():
                    record = self._sessions.get(session)
                    if (
                        record is not None
                        and record.outcome is None
                        and record.since_durable > 0
                    ):
                        self._snapshot_session(session)
                self._truncate_journal()
        except _VolatileCrash:
            self._crash_recover(self._seq + 1, {}, [])

    def _truncate_journal(self) -> None:
        """Drop every entry already covered by its session's durable state.

        An entry is replayable only while its session is live and its
        sequence number is beyond the session's durable snapshot; both
        terminal sessions (ledger) and snapshotted prefixes are covered,
        so their entries can never be needed again.
        """

        def needed(entry: JournalEntry) -> bool:
            if entry.session in self._ledger:
                return False
            stored = self._store.get(entry.session)
            return stored is None or entry.seq > stored[1]

        if not all(needed(entry) for entry in self._journal):
            self._journal = [entry for entry in self._journal if needed(entry)]

    def _crash_recover(
        self,
        collect_since: int,
        violations: Dict[object, str],
        newly_quarantined: List[object],
    ) -> Tuple[int, int]:
        """Drop all volatile state, then rebuild it from the durable half."""
        self._sessions = {}
        self._has_pending = False  # replay drains every journaled event
        return self._replay(collect_since, violations, newly_quarantined)

    def recover(self) -> int:
        """Rebuild volatile session state from snapshots + journal replay.

        Idempotent and safe to call at any time: a no-op when nothing is
        pending, the crash-recovery path otherwise.  Returns the number
        of sessions (re)built.  Also drains journaled events a timed-out
        or cancelled ingest left unapplied.
        """
        self._replay(self._seq + 1, {}, [])
        self._has_pending = False
        return len(self._sessions)

    def _replay(
        self,
        collect_since: int,
        violations: Dict[object, str],
        newly_quarantined: List[object],
    ) -> Tuple[int, int]:
        """Restore every session from durable state; deterministic replay."""
        applied = 0
        restarts = 0
        while True:
            rebuilt: Dict[object, _Session] = {}
            results: List[_SessionResult] = []
            replayed = 0
            restarted = False
            for session in self.session_ids():
                outcome = self._ledger.get(session)
                snapshot, stored_seq = self._store[session]
                if outcome is not None:
                    rebuilt[session] = _Session(snapshot, stored_seq, outcome=outcome)
                    continue
                kind = fault("monitor.restore")
                if kind == "crash" and restarts < 3:
                    restarted = True
                    restarts += 1
                    break
                if kind in ("raise", "exception"):
                    failed = Outcome.degraded(
                        session=repr(session),
                        reason="restore-failed",
                        seq=stored_seq,
                        error="injected failure at monitor.restore",
                        position=snapshot.position,
                        peak_threads=snapshot.peak_threads,
                    )
                    self._ledger[session] = failed
                    rebuilt[session] = _Session(snapshot, stored_seq, outcome=failed)
                    newly_quarantined.append(session)
                    record_event(
                        "RS008",
                        "monitor session %r quarantined: restore failed"
                        % (session,),
                        location="monitor.restore",
                        data={"session": repr(session), "seq": stored_seq},
                    )
                    continue
                tail = tuple(
                    entry
                    for entry in self._journal
                    if entry.session == session and entry.seq > stored_seq
                )
                result = _apply_session(self._extended, self._database, snapshot, tail)
                replayed += len(result.results)
                record = _Session(result.snapshot, stored_seq)
                if result.results:
                    record.applied_seq = result.results[-1][0]
                    record.since_durable = len(result.results)
                rebuilt[session] = record
                results.append(result)
            if restarted:
                continue
            self._sessions = rebuilt
            for result in results:
                session = result.session
                if session is None:
                    continue
                fresh = [
                    (seq, verdict)
                    for seq, verdict in result.results
                    if seq >= collect_since
                ]
                applied += len(fresh)
                self._events_applied += len(fresh)
                if result.snapshot.failed is not None and fresh:
                    violations[session] = result.snapshot.failed
                if result.poison is not None:
                    seq, error = result.poison
                    self._quarantine(session, result.snapshot, seq, error)
                    newly_quarantined.append(session)
            self._recoveries += 1
            record_event(
                "RS007",
                "monitor recovered %d sessions from durable snapshots + "
                "journal replay (%d events replayed)"
                % (len(rebuilt), replayed),
                location="monitor.recover",
                data={"sessions": len(rebuilt), "replayed": replayed},
            )
            return applied, 0
