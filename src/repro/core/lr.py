"""LR-boundedness and Theorem 19 (Section 5).

An extended automaton is **LR-bounded** (Definition 15) when there is a
uniform bound ``N`` on the vertex covers of the graphs ``G^w_h``: for every
control trace ``w`` and position ``h``, the inequality edges between
classes entirely left of the cut ``h`` and classes entirely right of it.
LR-boundedness characterises (up to register-trace equivalence) the
extended automata that are projections of register automata (Theorem 19).

This module implements:

* vertex covers of the cut graphs (they are bipartite, so König's theorem
  gives exact covers via maximum matching),
* :func:`lr_cover_profile` / :func:`is_lr_bounded`: the boundedness check
  on lasso traces, comparing cover sizes across growing windows (the
  eventually periodic structure makes covers stabilise or grow linearly;
  Theorem 18's general MSO+bounds decision [10] is replaced by this lasso
  analysis, exact on the fragment the library constructs -- see DESIGN.md),
* **Proposition 22** (:func:`synthesize_register_automaton`): an LR-bounded
  single-register extended automaton with inequality constraints is the
  projection of a register automaton; the synthesis uses the paper's
  register banks -- bank A stores *source* values whose future matches are
  checked by disequality, bank B stores guessed *target* values checked by
  membership -- with thread bookkeeping in the control state.  Soundness
  (``Pi_1(Reg(A)) subseteq Reg(B)``) holds for every budget; completeness
  requires a budget commensurate with the LR bound (the paper's
  ``2 M^2 + 1``), and our bank-B merge rule is slightly stricter than the
  paper's bag-equality test (conflicting merges abort the branch rather
  than unify), which never compromises soundness.
"""

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.automata.words import Lasso
from repro.foundations.errors import SpecificationError
from repro.logic.literals import eq as lit_eq
from repro.logic.literals import neq as lit_neq
from repro.logic.terms import X, Y
from repro.logic.types import SigmaType
from repro.core.extended import ExtendedAutomaton, GlobalConstraint
from repro.core.register_automaton import RegisterAutomaton, Transition
from repro.core.symbolic import scontrol_buchi
from repro.core.tracewindow import TraceWindow


# ---------------------------------------------------------------------- #
# vertex covers of cut graphs
# ---------------------------------------------------------------------- #


def bipartite_vertex_cover(
    left: Sequence, right: Sequence, edges: Iterable[Tuple]
) -> int:
    """Minimum vertex cover size of a bipartite graph (König: = max matching).

    *edges* are (left_vertex, right_vertex) pairs.
    """
    adjacency: Dict[object, List[object]] = {v: [] for v in left}
    for a, b in edges:
        adjacency.setdefault(a, []).append(b)
    match_left: Dict[object, object] = {}
    match_right: Dict[object, object] = {}

    def augment(vertex, seen: Set) -> bool:
        for other in adjacency.get(vertex, ()):
            if other in seen:
                continue
            seen.add(other)
            if other not in match_right or augment(match_right[other], seen):
                match_left[vertex] = other
                match_right[other] = vertex
                return True
        return False

    matching = 0
    for vertex in left:
        if augment(vertex, set()):
            matching += 1
    return matching


def lr_cover_profile(
    extended: ExtendedAutomaton, trace: Lasso, loops: int = 3
) -> List[int]:
    """Vertex cover sizes of ``G^w_h`` for every cut in a window of *trace*.

    *extended* should have a complete, state-driven control; both kinds of
    global constraints are honoured (equality matches merge classes inside
    the window, so no Proposition 6 elimination is required here).  The
    window covers the prefix plus *loops* loop iterations.
    """
    automaton = extended.automaton
    window = TraceWindow(
        trace,
        automaton.k,
        length=len(trace.prefix) + loops * len(trace.period),
        inequality_constraints=extended.inequality_constraints(),
        states=automaton.states,
        equality_constraints=extended.equality_constraints(),
    )
    # Classes reaching into the final `margin` positions may extend beyond
    # the window and are treated as straddling (excluded); cuts at or past
    # that horizon see no right-side classes and are not meaningful, so the
    # profile stops before them.
    margin = len(trace.period) + 1
    horizon = window.length - margin
    profile: List[int] = []
    for h in range(max(horizon - 1, 0)):
        left, right, edges = window.cut_graph(h, right_margin=margin)
        profile.append(bipartite_vertex_cover(left, right, edges))
    return profile


def is_lr_bounded(
    extended: ExtendedAutomaton,
    max_prefix: int = 1,
    max_cycle: int = 4,
    max_candidates: int = 500,
    base_loops: int = 4,
    max_loops: int = 13,
) -> bool:
    """Whether *extended* is LR-bounded (Definition 15 / Theorem 18).

    Enumerates lasso control traces and compares the maximum cut-graph
    vertex cover across window sizes two periods apart: on the eventually
    periodic class/edge structure the cover either stabilises (bounded) or
    grows with the window (unbounded).  Exact on lassos within the
    enumeration bounds; ``DESIGN.md`` records this substitution for the
    paper's MSO+bounding-quantifier argument.
    """
    normalised = _normalize_keep_constraints(extended)
    buchi = scontrol_buchi(normalised.automaton)
    checked = 0
    seen: Set[Lasso] = set()
    for lasso in buchi.iter_accepted_lassos(max_cycle, max_prefix):
        if lasso in seen:
            continue
        seen.add(lasso)
        checked += 1
        if checked > max_candidates:
            break
        if _window_inconsistent(normalised, lasso, base_loops + 2):
            # Definition 15 ranges over Control(A); traces whose induced
            # (in)equalities clash have no runs and are excluded (the same
            # consistency assumption Theorem 13's proof makes).
            continue
        # Grow the window until the max cover stabilises: a bounded profile
        # may legitimately climb for a while (long-range edges enter the
        # horizon) before reaching its bound, so a single comparison would
        # flag false growth.  Unbounded profiles never stabilise.
        loops = base_loops
        current = max(lr_cover_profile(normalised, lasso, loops=loops) or [0])
        stable = False
        while loops <= max_loops:
            loops += 3
            nxt = max(lr_cover_profile(normalised, lasso, loops=loops) or [0])
            if nxt <= current:
                stable = True
                break
            current = nxt
        if not stable:
            return False
    return True


def _window_inconsistent(extended: ExtendedAutomaton, trace: Lasso, loops: int) -> bool:
    """Whether the trace's constraints clash within the analysis window."""
    automaton = extended.automaton
    window = TraceWindow(
        trace,
        automaton.k,
        length=len(trace.prefix) + loops * len(trace.period),
        inequality_constraints=extended.inequality_constraints(),
        states=automaton.states,
        equality_constraints=extended.equality_constraints(),
    )
    return window.conflict() is not None


def lr_bound_estimate(
    extended: ExtendedAutomaton,
    max_prefix: int = 1,
    max_cycle: int = 4,
    max_candidates: int = 200,
    loops: int = 5,
) -> int:
    """The largest cut-graph vertex cover observed over sampled lassos."""
    normalised = _normalize_keep_constraints(extended)
    buchi = scontrol_buchi(normalised.automaton)
    best = 0
    checked = 0
    seen: Set[Lasso] = set()
    for lasso in buchi.iter_accepted_lassos(max_cycle, max_prefix):
        if lasso in seen:
            continue
        seen.add(lasso)
        checked += 1
        if checked > max_candidates:
            break
        if _window_inconsistent(normalised, lasso, loops):
            continue
        profile = lr_cover_profile(normalised, lasso, loops=loops)
        if profile:
            best = max(best, max(profile))
    return best


def _normalize_keep_constraints(extended: ExtendedAutomaton) -> ExtendedAutomaton:
    """Complete + state-driven control, with all constraints lifted.

    Unlike the emptiness pipeline, equality constraints are *kept* (the
    window analyses honour them directly), avoiding the register blow-up of
    Proposition 6 for analysis-only purposes.
    """
    from repro.core.extended import lift_constraints_to_states
    from repro.core.projection import _normalisation_projection

    automaton = extended.automaton
    normalised = automaton
    if not normalised.is_complete():
        normalised = normalised.completed()
    if not normalised.is_state_driven():
        normalised = normalised.state_driven()
    if normalised is automaton:
        return extended
    constraints = lift_constraints_to_states(
        extended.constraints,
        automaton.states,
        normalised.states,
        _normalisation_projection(automaton, normalised),
    )
    return ExtendedAutomaton(normalised, constraints)


# ---------------------------------------------------------------------- #
# Proposition 22: LR-bounded => projection of a register automaton
# ---------------------------------------------------------------------- #


def synthesize_register_automaton(
    extended: ExtendedAutomaton, bank_a: int = 2, bank_b: int = 2
) -> RegisterAutomaton:
    """**Proposition 22**: realise an LR-bounded extended automaton as the
    projection of a register automaton.

    *extended* must have one register, no database, and only inequality
    constraints (eliminate equalities with Proposition 6 first).  The
    result ``A`` has ``1 + bank_a + bank_b`` registers and satisfies
    ``Pi_1(Reg(A)) subseteq Reg(extended)`` for every budget, with equality
    when the budgets dominate the LR bound (the paper's ``kappa > M^2``).

    Register layout: register 1 simulates the visible register; registers
    ``2 .. 1+bank_a`` form bank A (stored source values, checked ``!=`` at
    every accepting position of their thread); registers ``2+bank_a ..
    1+bank_a+bank_b`` form bank B (guessed target values, checked by
    membership at accepting positions).  Control states carry the thread
    tags of every bank register, plus the set of "monitored" DFA states
    that promised no further matches.
    """
    automaton = extended.automaton
    if automaton.k != 1:
        raise SpecificationError(
            "the Proposition 22 synthesis is implemented for single-register "
            "automata, as in the paper's proof; got k=%d" % automaton.k
        )
    if automaton.signature.relations or automaton.signature.constants:
        raise SpecificationError("Proposition 22 applies to automata without a database")
    if extended.equality_constraints():
        raise SpecificationError(
            "eliminate global equality constraints (Proposition 6) before the synthesis"
        )
    constraints = list(extended.inequality_constraints())
    dfas = [extended.constraint_dfa(c) for c in constraints]

    a_regs = list(range(2, 2 + bank_a))
    b_regs = list(range(2 + bank_a, 2 + bank_a + bank_b))
    total = 1 + bank_a + bank_b

    # A control state: (q, a_tags, b_tags, bad, pending)
    #  - a_tags/b_tags: tuples over the bank registers; each entry is None
    #    or (constraint index, DFA state) -- the thread the register serves.
    #  - bad: frozenset of (constraint index, DFA state): monitored threads
    #    that must never reach acceptance.
    #  - pending: guard literals still owed for position 0 (seed states).

    def advance_tags(tags: Tuple, symbol) -> Tuple:
        advanced = []
        for tag in tags:
            if tag is None:
                advanced.append(None)
            else:
                c_index, s = tag
                advanced.append((c_index, dfas[c_index].delta(s, symbol)))
        return tuple(advanced)

    def advance_bad(bad: FrozenSet, symbol) -> Optional[FrozenSet]:
        moved = set()
        for c_index, s in bad:
            s2 = dfas[c_index].delta(s, symbol)
            if s2 in dfas[c_index].accepting:
                return None  # a promised non-match happened: branch dies
            moved.add((c_index, s2))
        return frozenset(moved)

    def spawn_options(symbol, a_tags, b_tags, bad, var):
        """Per-position source guesses for every constraint.

        Yields (a_tags, b_tags, bad, literals).  *var* is the variable
        constructor for the position's registers (Y for ordinary steps,
        X for position 0).
        """
        states_now = [
            dfas[c_index].delta(dfas[c_index].initial, symbol)
            for c_index in range(len(constraints))
        ]
        options = [(a_tags, b_tags, bad, [])]
        for c_index, s0 in enumerate(states_now):
            new_options = []
            dfa = dfas[c_index]
            for cur_a, cur_b, cur_bad, lits in options:
                # (N) not a source: monitor, unless s0 already accepts.
                if s0 not in dfa.accepting:
                    new_options.append((cur_a, cur_b, cur_bad | {(c_index, s0)}, lits))
                # (S) store own value in a free bank-A register.
                if s0 not in dfa.accepting:  # immediate self-match is unsat
                    for slot, tag in enumerate(cur_a):
                        if tag is None:
                            updated = cur_a[:slot] + ((c_index, s0),) + cur_a[slot + 1 :]
                            lit = lit_eq(var(a_regs[slot]), var(1))
                            new_options.append((updated, cur_b, cur_bad, lits + [lit]))
                            break  # one free slot is as good as another
                # (G) guess target values into free bank-B registers, or
                # adopt the existing set for this (constraint, state) tag.
                existing = [r for r, tag in enumerate(cur_b) if tag == (c_index, s0)]
                if existing:
                    adopt = [
                        lit_neq(var(b_regs[r]), var(1)) for r in existing
                    ]
                    new_options.append((cur_a, cur_b, cur_bad, lits + adopt))
                else:
                    free = [r for r, tag in enumerate(cur_b) if tag is None]
                    for count in range(1, len(free) + 1):
                        chosen = free[:count]
                        updated = list(cur_b)
                        guesses = []
                        for r in chosen:
                            updated[r] = (c_index, s0)
                            guesses.append(lit_neq(var(b_regs[r]), var(1)))
                        # distinct guessed values (a set, not a bag)
                        for r1, r2 in combinations(chosen, 2):
                            guesses.append(lit_neq(var(b_regs[r1]), var(b_regs[r2])))
                        new_options.append((cur_a, tuple(updated), cur_bad, lits + guesses))
            options = new_options
        return options

    def retire_options(a_tags, b_tags, bad):
        """Optionally retire threads: free registers, promise no matches."""
        yield a_tags, b_tags, bad
        for slot, tag in enumerate(a_tags):
            if tag is not None:
                yield (
                    a_tags[:slot] + (None,) + a_tags[slot + 1 :],
                    b_tags,
                    bad | {tag},
                )
        tags_present = {tag for tag in b_tags if tag is not None}
        for tag in tags_present:
            cleared = tuple(None if t == tag else t for t in b_tags)
            yield a_tags, cleared, bad | {tag}

    def enforcement_literals(a_tags, b_tags, var):
        """Obligations at a position: bank-A disequalities, bank-B membership.

        Bank-B membership is nondeterministic (which register matches);
        returns a list of alternative literal lists.
        """
        # Bank-A value propagation is handled by the carry literals; here we
        # only add the disequalities at accepting thread states.
        alternatives: List[List] = [list()]
        for slot, tag in enumerate(a_tags):
            if tag is None:
                continue
            c_index, s = tag
            if s in dfas[c_index].accepting:
                for alt in alternatives:
                    alt.append(lit_neq(var(1), var(a_regs[slot])))
        accepting_b_tags = {
            tag
            for tag in b_tags
            if tag is not None and tag[1] in dfas[tag[0]].accepting
        }
        for tag in sorted(accepting_b_tags, key=repr):
            slots = [r for r, t in enumerate(b_tags) if t == tag]
            expanded: List[List] = []
            for alt in alternatives:
                for r in slots:
                    expanded.append(alt + [lit_eq(var(1), var(b_regs[r]))])
            alternatives = expanded
        return alternatives

    def carry_literals(a_tags, b_tags):
        """Propagate occupied bank registers unchanged across a transition."""
        literals: List = []
        for slot, tag in enumerate(a_tags):
            if tag is not None:
                literals.append(lit_eq(X(a_regs[slot]), Y(a_regs[slot])))
        for slot, tag in enumerate(b_tags):
            if tag is not None:
                literals.append(lit_eq(X(b_regs[slot]), Y(b_regs[slot])))
        return literals

    empty_a = (None,) * bank_a
    empty_b = (None,) * bank_b

    from repro.foundations.errors import InconsistentTypeError

    seeds: Set[Tuple] = set()
    worklist: List[Tuple] = []
    for q in sorted(automaton.initial, key=repr):
        for a_tags, b_tags, bad, lits in spawn_options(q, empty_a, empty_b, frozenset(), X):
            for alt in enforcement_literals(a_tags, b_tags, X):
                seed = (q, a_tags, b_tags, bad, tuple(lits) + tuple(alt))
                if seed not in seeds:
                    seeds.add(seed)
                    worklist.append(seed)

    transitions: List[Transition] = []
    all_states: Set[Tuple] = set(seeds)
    explored: Set[Tuple] = set()
    while worklist:
        state = worklist.pop()
        if state in explored:
            continue
        explored.add(state)
        q, a_tags, b_tags, bad, pending = state
        for transition in automaton.transitions_from(q):
            target_symbol = transition.target
            for ra, rb, rbad in retire_options(a_tags, b_tags, bad):
                moved_bad = advance_bad(rbad, target_symbol)
                if moved_bad is None:
                    continue
                adv_a = advance_tags(ra, target_symbol)
                adv_b = advance_tags(rb, target_symbol)
                carry = carry_literals(ra, rb)
                for fa, fb, fbad, spawn_lits in spawn_options(
                    target_symbol, adv_a, adv_b, moved_bad, Y
                ):
                    for alt in enforcement_literals(fa, fb, Y):
                        literals = list(pending) + carry + spawn_lits + alt
                        try:
                            guard = transition.guard.with_literals(literals)
                        except InconsistentTypeError:
                            continue
                        target = (target_symbol, fa, fb, fbad, ())
                        transitions.append(Transition(state, guard, target))
                        if target not in all_states:
                            all_states.add(target)
                            worklist.append(target)

    accepting = {s for s in all_states if s[0] in automaton.accepting}
    return RegisterAutomaton(
        total,
        automaton.signature,
        all_states,
        seeds,
        accepting,
        transitions,
    )
