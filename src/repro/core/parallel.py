"""Process-parallel map with deterministic ordering (``REPRO_WORKERS``).

The emptiness check enumerates candidate lassos and the projection
pipeline builds one tracker DFA per register pair; both are
embarrassingly parallel over *independent, picklable* work items whose
answers must nevertheless come back in **enumeration order** -- the
first realisable candidate in enumeration order wins regardless of
which worker finishes first.  This module centralises that discipline:

* :func:`worker_count` reads the ``REPRO_WORKERS`` environment variable
  **at call time** (``0``/``1``/unset mean serial, anything larger is a
  process count), so tests can flip it per-case;
* :func:`imap_chunked` maps a picklable callable over an iterable in
  chunks, yielding results lazily **in input order** with bounded
  in-flight submission, and degrades to a plain in-process generator
  when the effective worker count is 1 -- the serial path runs exactly
  the code it always ran, with no executor, no pickling and no fork;
* :func:`parallel_map` is the eager list form (used by the benchmark
  grids).

One executor is kept per process and recreated only when the requested
worker count changes.  Workers are initialised with ``REPRO_WORKERS=1``
so work items that themselves consult the knob (e.g. an emptiness check
inside a benchmark grid cell) never spawn nested pools.

Interned logic values (:mod:`repro.foundations.interning`) re-intern on
unpickling in the worker, so identity-keyed caches stay sound on both
sides of the process boundary.
"""

import atexit
import os
from collections import deque
from itertools import islice
from typing import Callable, Deque, Iterable, Iterator, List, Optional, Sequence, TypeVar

A = TypeVar("A")
B = TypeVar("B")

__all__ = ["worker_count", "imap_chunked", "parallel_map", "shutdown_executor"]

#: Chunk size used when the caller does not specify one.  Small enough to
#: keep workers busy on short grids, large enough to amortise pickling the
#: callable (which may carry a whole automaton) over several items.
DEFAULT_CHUNK_SIZE = 4


def worker_count() -> int:
    """The effective worker count from ``REPRO_WORKERS`` (serial = 1).

    Read at call time, never cached: ``0``, ``1``, unset, or junk all mean
    "stay on the serial path".  An explicit request above the machine's
    CPU count is honoured (capped at 64 as a sanity bound): tests rely on
    ``REPRO_WORKERS=2`` actually crossing the process boundary even on a
    single-CPU host, where oversubscription is the caller's informed
    choice.
    """
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if not raw:
        return 1
    try:
        requested = int(raw)
    except ValueError:
        return 1
    if requested <= 1:
        return 1
    return min(requested, 64)


# ---------------------------------------------------------------------- #
# executor lifecycle
# ---------------------------------------------------------------------- #

_EXECUTOR = None
_EXECUTOR_WORKERS = 0


def _init_worker() -> None:
    """Run in each worker process: force nested work onto the serial path."""
    os.environ["REPRO_WORKERS"] = "1"


def _get_executor(workers: int):
    """The shared executor, (re)created when the worker count changes."""
    global _EXECUTOR, _EXECUTOR_WORKERS
    if _EXECUTOR is not None and _EXECUTOR_WORKERS == workers:
        return _EXECUTOR
    if _EXECUTOR is not None:
        _EXECUTOR.shutdown(wait=False)
    from concurrent.futures import ProcessPoolExecutor

    _EXECUTOR = ProcessPoolExecutor(max_workers=workers, initializer=_init_worker)
    _EXECUTOR_WORKERS = workers
    return _EXECUTOR


def shutdown_executor() -> None:
    """Tear down the shared executor (test isolation; safe to call twice)."""
    global _EXECUTOR, _EXECUTOR_WORKERS
    if _EXECUTOR is not None:
        _EXECUTOR.shutdown(wait=True)
        _EXECUTOR = None
        _EXECUTOR_WORKERS = 0


# A live pool at interpreter exit trips concurrent.futures' finalisation
# weakref callbacks after module teardown ("Exception ignored in:
# weakref_cb"); shut it down while the runtime is still intact.
atexit.register(shutdown_executor)


def _call_chunk(payload):
    """Top-level worker entry point: apply ``fn`` to one chunk of items."""
    fn, chunk = payload
    return [fn(item) for item in chunk]


# ---------------------------------------------------------------------- #
# ordered chunked map
# ---------------------------------------------------------------------- #


def imap_chunked(
    fn: Callable[[A], B],
    items: Iterable[A],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workers: Optional[int] = None,
) -> Iterator[B]:
    """Yield ``fn(item)`` for each item, **in input order**.

    With one effective worker this is a plain generator over *items* --
    bit-for-bit the serial semantics, consuming the iterable lazily one
    item at a time.  With more, chunks of *chunk_size* items are
    dispatched to the process pool with at most ``workers + 2`` chunks in
    flight (so an early consumer exit never strands an unbounded queue of
    pickled work), and results are yielded strictly in submission order;
    a consumer that stops early (e.g. on the first realisable lasso)
    closes the generator, which cancels every not-yet-started chunk.

    *fn* and the items must be picklable when a pool is used; *fn* is
    pickled once per chunk, so callables carrying large state (a whole
    normalised automaton) amortise across the chunk.
    """
    if workers is None:
        workers = worker_count()
    if workers <= 1:
        for item in items:
            yield fn(item)
        return
    executor = _get_executor(workers)
    iterator = iter(items)
    pending: Deque = deque()
    max_in_flight = workers + 2

    def submit_next() -> bool:
        chunk = list(islice(iterator, chunk_size))
        if not chunk:
            return False
        pending.append(executor.submit(_call_chunk, (fn, chunk)))
        return True

    try:
        while len(pending) < max_in_flight and submit_next():
            pass
        while pending:
            results = pending.popleft().result()
            submit_next()
            for result in results:
                yield result
    finally:
        for future in pending:
            future.cancel()


def parallel_map(
    fn: Callable[[A], B],
    items: Sequence[A],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workers: Optional[int] = None,
) -> List[B]:
    """Eager :func:`imap_chunked`: all results, in input order."""
    return list(imap_chunked(fn, items, chunk_size=chunk_size, workers=workers))
