"""Fault-tolerant process-parallel map with deterministic ordering.

The emptiness check enumerates candidate lassos and the projection
pipeline builds one tracker DFA per register pair; both are
embarrassingly parallel over *independent, picklable* work items whose
answers must nevertheless come back in **enumeration order** -- the
first realisable candidate in enumeration order wins regardless of
which worker finishes first.  This module centralises that discipline:

* :func:`worker_count` reads the ``REPRO_WORKERS`` environment variable
  **at call time** (``0``/``1``/unset mean serial, anything larger is a
  process count), so tests can flip it per-case;
* :func:`imap_chunked` maps a picklable callable over an iterable in
  chunks, yielding results lazily **in input order** with bounded
  in-flight submission, and degrades to a plain in-process generator
  when the effective worker count is 1 -- the serial path runs exactly
  the code it always ran, with no executor, no pickling and no fork;
* :func:`parallel_map` is the eager list form (used by the benchmark
  grids).

One executor is kept per process and recreated only when the requested
worker count changes.  Workers are initialised with ``REPRO_WORKERS=1``
so work items that themselves consult the knob (e.g. an emptiness check
inside a benchmark grid cell) never spawn nested pools.

Fault tolerance (docs/ROBUSTNESS.md)
------------------------------------
A dead worker (OOM kill, segfault, ``os._exit``) poisons a
``ProcessPoolExecutor`` permanently: every in-flight and future call
raises ``BrokenProcessPool``.  :func:`imap_chunked` recovers instead of
crashing: the broken executor is discarded (so later calls never see a
poisoned pool), a fresh one is spawned after an exponential backoff, and
every not-yet-yielded chunk is resubmitted in order.  After
``REPRO_MAX_POOL_RETRIES`` respawns (default 1) the remaining work falls
back to the serial path, which is bit-identical by construction -- the
consumer sees the same results in the same order, only slower.
Unpicklable workloads degrade to serial immediately (the pool cannot
help them).  Every recovery step records a structured diagnostic
(``RS001``/``RS002``/``RS005``) via
:func:`repro.foundations.resilience.record_event`; genuine exceptions
raised by the mapped callable still propagate unchanged.

A consumer that stops early (e.g. on the first realisable lasso) closes
the generator, which cancels every not-yet-started chunk and **drains**
the chunks already running -- no stray computation survives the
consumer's exit.

Deterministic fault injection (``REPRO_FAULTS``, see
:mod:`repro.foundations.faults`) covers the recovery paths in tests:
``parallel.call_chunk`` fires inside the worker per chunk (kinds
``exit``/``raise``), ``parallel.spawn`` fires at executor creation
(kind ``raise``).

Interned logic values (:mod:`repro.foundations.interning`) re-intern on
unpickling in the worker, so identity-keyed caches stay sound on both
sides of the process boundary.
"""

import atexit
import os
import pickle
import time
from collections import deque
from concurrent.futures import BrokenExecutor
from concurrent.futures import wait as _futures_wait
from itertools import islice
from typing import Callable, Deque, Iterable, Iterator, List, Optional, Sequence, TypeVar

from repro.foundations import knobs
from repro.foundations.faults import FaultInjected, fault
from repro.foundations.resilience import record_event

A = TypeVar("A")
B = TypeVar("B")

__all__ = [
    "worker_count",
    "max_pool_retries",
    "imap_chunked",
    "parallel_map",
    "shutdown_executor",
]

#: Chunk size used when the caller does not specify one.  Small enough to
#: keep workers busy on short grids, large enough to amortise pickling the
#: callable (which may carry a whole automaton) over several items.
DEFAULT_CHUNK_SIZE = 4


def worker_count() -> int:
    """The effective worker count from ``REPRO_WORKERS`` (serial = 1).

    Read at call time, never cached: ``0``, ``1``, unset, or junk all mean
    "stay on the serial path".  An explicit request above the machine's
    CPU count is honoured (capped at 64 as a sanity bound): tests rely on
    ``REPRO_WORKERS=2`` actually crossing the process boundary even on a
    single-CPU host, where oversubscription is the caller's informed
    choice.
    """
    return knobs.value("REPRO_WORKERS")


def max_pool_retries() -> int:
    """Executor respawns allowed before degrading to serial (default 1).

    ``REPRO_MAX_POOL_RETRIES``, read at call time; junk or negative
    values mean the default.  ``0`` disables respawning entirely: the
    first broken pool goes straight to the serial fallback.
    """
    return knobs.value("REPRO_MAX_POOL_RETRIES")


def _backoff_seconds() -> float:
    """Base delay before an executor respawn (``REPRO_POOL_BACKOFF_MS``).

    Doubles per retry (exponential backoff).  Defaults to 50 ms -- long
    enough to let a transiently-overloaded host breathe, short enough
    that tests exercising the recovery path stay fast.  ``0`` disables
    the sleep (CI fault-smoke runs).
    """
    return knobs.value("REPRO_POOL_BACKOFF_MS")


# ---------------------------------------------------------------------- #
# executor lifecycle
# ---------------------------------------------------------------------- #

_EXECUTOR = None
_EXECUTOR_WORKERS = 0


def _init_worker() -> None:
    """Run in each worker process: force nested work onto the serial path.

    The pin goes through :func:`repro.foundations.knobs.pin_for_worker` --
    the one sanctioned worker-side environment write -- so the
    worker-purity race detector (lint rule ``PAR002``) can treat every
    *other* worker write as the hidden nondeterminism it is.
    """
    knobs.pin_for_worker("REPRO_WORKERS", "1")


def _discard_executor() -> None:
    """Drop the shared executor without waiting (it may be broken).

    Resets the module state *unconditionally* -- this is the fix for the
    poisoned-pool bug where one dead worker made every later
    ``imap_chunked`` call fail: after a ``BrokenProcessPool`` the old
    code kept the broken executor cached forever.
    """
    global _EXECUTOR, _EXECUTOR_WORKERS
    executor = _EXECUTOR
    _EXECUTOR = None
    _EXECUTOR_WORKERS = 0
    if executor is not None:
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # a broken pool can fail its own shutdown
            pass


def _get_executor(workers: int):
    """The shared executor, (re)created when needed.

    Recreated when the worker count changes **or the cached pool is
    broken** -- a poisoned executor is never handed out.  The
    ``parallel.spawn`` fault site fires on every genuine creation so the
    spawn-retry path is testable.
    """
    global _EXECUTOR, _EXECUTOR_WORKERS
    if _EXECUTOR is not None and getattr(_EXECUTOR, "_broken", False):
        _discard_executor()
    if _EXECUTOR is not None and _EXECUTOR_WORKERS == workers:
        return _EXECUTOR
    if _EXECUTOR is not None:
        _discard_executor()
    if fault("parallel.spawn") == "raise":
        raise FaultInjected("injected executor spawn failure (parallel.spawn)")
    from concurrent.futures import ProcessPoolExecutor

    _EXECUTOR = ProcessPoolExecutor(max_workers=workers, initializer=_init_worker)
    _EXECUTOR_WORKERS = workers
    return _EXECUTOR


def shutdown_executor() -> None:
    """Tear down the shared executor (test isolation; safe to call twice)."""
    global _EXECUTOR, _EXECUTOR_WORKERS
    if _EXECUTOR is not None:
        _EXECUTOR.shutdown(wait=True)
        _EXECUTOR = None
        _EXECUTOR_WORKERS = 0


# A live pool at interpreter exit trips concurrent.futures' finalisation
# weakref callbacks after module teardown ("Exception ignored in:
# weakref_cb"); shut it down while the runtime is still intact.
atexit.register(shutdown_executor)


def _call_chunk(payload):
    """Top-level worker entry point: apply ``fn`` to one chunk of items.

    The ``parallel.call_chunk`` fault site fires once per chunk *in the
    worker process* (counters are per-process, so every fresh worker
    counts its own chunks): ``exit`` simulates a hard worker death (OOM
    kill), ``raise`` a workload exception that must propagate to the
    consumer untouched.
    """
    kind = fault("parallel.call_chunk")
    if kind == "exit":
        os._exit(43)
    if kind == "raise":
        raise FaultInjected("injected chunk failure (parallel.call_chunk)")
    fn, chunk = payload
    return [fn(item) for item in chunk]


# ---------------------------------------------------------------------- #
# ordered chunked map
# ---------------------------------------------------------------------- #


def imap_chunked(
    fn: Callable[[A], B],
    items: Iterable[A],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workers: Optional[int] = None,
) -> Iterator[B]:
    """Yield ``fn(item)`` for each item, **in input order**.

    With one effective worker this is a plain generator over *items* --
    bit-for-bit the serial semantics, consuming the iterable lazily one
    item at a time.  With more, chunks of *chunk_size* items are
    dispatched to the process pool with at most ``workers + 2`` chunks in
    flight (so an early consumer exit never strands an unbounded queue of
    pickled work), and results are yielded strictly in submission order.
    A consumer that stops early (e.g. on the first realisable lasso)
    closes the generator, which cancels every not-yet-started chunk and
    drains the running ones before returning.

    Worker crashes are recovered (respawn + resubmit, then serial
    fallback -- see the module docstring); the answers are identical to
    the serial path either way.  Exceptions raised by *fn* itself
    propagate unchanged.

    *fn* and the items must be picklable when a pool is used; *fn* is
    pickled once per chunk, so callables carrying large state (a whole
    normalised automaton) amortise across the chunk.  Unpicklable
    workloads fall back to the serial path with a recorded diagnostic
    instead of crashing.
    """
    if workers is None:
        workers = worker_count()
    if workers <= 1:
        for item in items:
            yield fn(item)
        return
    yield from _imap_pool(fn, items, chunk_size, workers)


def _imap_pool(
    fn: Callable[[A], B], items: Iterable[A], chunk_size: int, workers: int
) -> Iterator[B]:
    """The pool path of :func:`imap_chunked`, with crash recovery."""
    iterator = iter(items)
    # Chunks not yet yielded, in input order.  Each entry is a mutable
    # [chunk, future-or-None] pair: recovery nulls the futures of a broken
    # pool and resubmits the same chunks to the fresh one.
    pending: Deque[List] = deque()
    max_in_flight = workers + 2
    retry_limit = max_pool_retries()
    respawns = 0
    delay = _backoff_seconds()
    serial_reason = None
    iterator_failed = False

    def refill(executor) -> None:
        nonlocal iterator_failed
        in_flight = sum(1 for entry in pending if entry[1] is not None)
        for entry in pending:
            if in_flight >= max_in_flight:
                return
            if entry[1] is None:
                entry[1] = executor.submit(_call_chunk, (fn, entry[0]))
                in_flight += 1
        while in_flight < max_in_flight:
            # The caller's iterator may raise anything, including the
            # types the unpicklable-workload classifier below catches;
            # flag its failures so they propagate instead of being
            # mistaken for a pickling problem (the generator is dead
            # after raising, so a serial "rerun" could never surface it).
            try:
                chunk = list(islice(iterator, chunk_size))
            except BaseException:
                iterator_failed = True
                raise
            if not chunk:
                return
            # Enqueue before submitting: the chunk is already consumed
            # from the iterator, so if submit raises (broken pool) it
            # must stay in pending for recovery to resubmit -- otherwise
            # it would vanish from the output entirely.
            entry = [chunk, None]
            pending.append(entry)
            entry[1] = executor.submit(_call_chunk, (fn, chunk))
            in_flight += 1

    def forget_futures() -> None:
        for entry in pending:
            entry[1] = None

    try:
        while serial_reason is None:
            # -- (re)establish the pool ------------------------------- #
            try:
                executor = _get_executor(workers)
            except (FaultInjected, OSError) as failure:
                _discard_executor()
                record_event(
                    "RS005",
                    "executor spawn failed: %s" % failure,
                    data={"respawns": respawns, "retry_limit": retry_limit},
                )
                if respawns >= retry_limit:
                    serial_reason = "spawn-failed"
                    break
                respawns += 1
                if delay:
                    time.sleep(delay)
                delay *= 2
                continue
            # -- consume in submission order -------------------------- #
            try:
                refill(executor)
                while pending:
                    chunk, future = pending[0]
                    results = future.result()
                    pending.popleft()
                    # The popleft'd chunk is no longer resubmittable, so
                    # its results MUST reach the consumer before any
                    # failure from refill (a broken pool surfacing at
                    # submit time) enters recovery -- otherwise a whole
                    # fetched chunk would silently vanish.  Hold the
                    # failure, yield, then let it take the normal path.
                    refill_failure = None
                    try:
                        refill(executor)
                    except BaseException as exc:
                        refill_failure = exc
                    for result in results:
                        yield result
                    if refill_failure is not None:
                        raise refill_failure
                return  # all chunks yielded on the pool path
            except BrokenExecutor as failure:
                _discard_executor()
                forget_futures()
                record_event(
                    "RS001",
                    "worker pool broke mid-map (%s: %s)"
                    % (type(failure).__name__, failure),
                    data={
                        "respawns": respawns,
                        "retry_limit": retry_limit,
                        "pending_chunks": len(pending),
                    },
                )
                if respawns >= retry_limit:
                    serial_reason = "pool-broken-after-retries"
                    break
                respawns += 1
                if delay:
                    time.sleep(delay)
                delay *= 2
            except (pickle.PicklingError, AttributeError, TypeError):
                # The workload cannot cross the process boundary (the queue
                # feeder surfaces local objects as AttributeError and
                # unpicklable extension types as TypeError, not always
                # PicklingError); the pool itself is healthy.  Drop our
                # futures and finish serially -- a genuine workload error
                # hiding behind these types re-raises from the serial rerun.
                # An exception from the caller's *items* iterator is neither:
                # the generator is already terminated, so it must propagate
                # now (the serial path would silently see an empty iterator).
                if iterator_failed:
                    raise
                for entry in pending:
                    if entry[1] is not None:
                        entry[1].cancel()
                _drain([entry[1] for entry in pending if entry[1] is not None])
                forget_futures()
                serial_reason = "unpicklable-workload"
                break
        # -- serial fallback: bit-identical by construction ------------ #
        record_event(
            "RS002",
            "parallel map degraded to the serial path (%s)" % serial_reason,
            data={
                "reason": serial_reason,
                "respawns": respawns,
                "pending_chunks": len(pending),
            },
        )
        while pending:
            chunk, _future = pending.popleft()
            for item in chunk:
                yield fn(item)
        for item in iterator:
            yield fn(item)
    finally:
        # Early consumer exit (or any exit path): cancel what never
        # started, drain what is running, so no stray chunk computes on
        # after the generator is closed.
        live = [entry[1] for entry in pending if entry[1] is not None]
        for future in live:
            future.cancel()
        _drain(live)


def _drain(futures) -> None:
    """Wait for the given futures to settle (results discarded)."""
    not_done = [f for f in futures if not f.cancelled()]
    if not_done:
        _futures_wait(not_done)


def parallel_map(
    fn: Callable[[A], B],
    items: Sequence[A],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workers: Optional[int] = None,
) -> List[B]:
    """Eager :func:`imap_chunked`: all results, in input order."""
    return list(imap_chunked(fn, items, chunk_size=chunk_size, workers=workers))
