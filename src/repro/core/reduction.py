"""Sound automaton reduction: trim and dead-register projection.

The consumer layer of the backward dataflow analyses
(:mod:`repro.analysis.dataflow.liveness_domain`) inside the core
pipeline, the mirror image of :mod:`repro.core.pruning` (which consumes
the *forward* analysis):

* :func:`trim` / :func:`trim_extended` -- drop states through which no
  accepting lasso can pass: states not graph-reachable from an initial
  state, or from which no accepting cycle is graph-reachable.  This is
  deliberately the *graph-level* trim, not the abstract one: every
  candidate lasso the emptiness enumeration yields -- realisable or not
  -- visits only states that are reachable and co-reach an accepting
  cycle (both closed under path membership), so trimming the complement
  preserves the candidate sequence *exactly*.  Verdict, witness, and
  ``candidates_checked`` are byte-identical to the untrimmed run, while
  normalisation, narrowing, and enumeration all work on a smaller graph.
  (The abstract co-reachability analysis cuts more states but may cut
  enumerated-yet-unrealisable candidates with them, which would change
  ``candidates_checked``; it powers the ``DF007`` diagnostics instead.)

  Two guard rails keep the byte-identity argument airtight:

  - if trimming would flip ``is_complete()`` or ``is_state_driven()``
    (all offending guards/states happened to be trimmed), the trim
    falls back to identity -- the normalisation path itself must not
    change shape;
  - the traversals are budgeted (:data:`DEFAULT_TRIM_BUDGET` edge
    steps); on exhaustion the automaton is returned unchanged and an
    ``RS006`` event records the honest degradation.

* :func:`project_dead_registers` -- drop write-only registers (live at
  no state: never read, never copied into a live register;
  :meth:`~repro.analysis.dataflow.liveness_domain.RegisterLiveness.write_only_registers`)
  by renaming them past the kept block and projecting every guard with
  the closure-saturated restriction.  This changes ``k`` and therefore
  the completion/normalisation shape downstream, so it is *not* wired
  into ``check_emptiness`` -- it is the explicit reduction API behind
  the ``DF008`` projection-candidate diagnostics, preserving the
  emptiness *verdict* (asserted by the E18 benchmark and the test
  suite) rather than the byte-exact witness.

Everything is gated by the ``REPRO_REDUCE`` environment knob -- read at
call time like ``REPRO_PRUNE`` (never at import), default on,
``REPRO_REDUCE=0`` is the ablation switch used by CI and the benchmarks.

Layering note: this module lives in ``core`` but the analysis lives
above it, so the dataflow import happens lazily inside the functions.
"""

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.foundations import knobs
from repro.foundations.diagnostics import Severity
from repro.foundations.resilience import Budget, record_event
from repro.core.extended import ExtendedAutomaton, GlobalConstraint, _map_dfa_alphabet
from repro.core.register_automaton import RegisterAutomaton, State, Transition
from repro.logic.literals import eq as lit_eq
from repro.logic.literals import neq as lit_neq
from repro.logic.terms import X, Y
from repro.logic.types import SigmaType

__all__ = [
    "reduction_enabled",
    "DEFAULT_TRIM_BUDGET",
    "trim",
    "trim_extended",
    "project_dead_registers",
]

#: Edge-traversal budget for the three trim sweeps (forward, cycle,
#: backward).  Each sweep is linear in the transition count, so ordinary
#: workloads stay far below this; hitting it means the automaton is too
#: large to trim cheaply and the caller keeps the original.
DEFAULT_TRIM_BUDGET = 200_000


def reduction_enabled() -> bool:
    """The ``REPRO_REDUCE`` knob, read at call time (default on).

    Mirrors :func:`repro.core.pruning.pruning_enabled`: never cached, so
    tests and the ablation CI job can flip it per call.
    """
    return knobs.value("REPRO_REDUCE")


def _declined(automaton: RegisterAutomaton, budget: Budget) -> None:
    record_event(
        "RS006",
        "trim declined (edge budget) for automaton with %d states / %d "
        "transitions" % (len(automaton.states), len(automaton.transitions)),
        severity=Severity.INFO,
        location="repro.core.reduction.trim",
        data={"reason": "edge-budget", "budget": budget.snapshot()},
    )


def _lasso_keep_set(
    automaton: RegisterAutomaton, steps: "Budget"
) -> Optional[FrozenSet[State]]:
    """States on some path ``initial -->* accepting cycle``, or ``None``.

    Three budgeted sweeps: forward reachability, one bounded search per
    accepting state for a cycle through it (anchors), and backward
    reachability from the anchors.  All FIFO with declaration-ordered
    edges, so the charge sequence -- and the budget's stopping point --
    is a pure function of the automaton.
    """
    reachable: Set[State] = set(automaton.initial)
    frontier: List[State] = sorted(reachable, key=repr)
    while frontier:
        state = frontier.pop(0)
        for transition in automaton.transitions_from(state):
            if not steps.charge():
                return None
            if transition.target not in reachable:
                reachable.add(transition.target)
                frontier.append(transition.target)

    predecessors: Dict[State, List[State]] = {}
    for transition in automaton.transitions:
        predecessors.setdefault(transition.target, []).append(transition.source)

    anchors: Set[State] = set()
    for anchor in sorted(automaton.accepting, key=repr):
        seen: Set[State] = set()
        frontier = [anchor]
        found = False
        while frontier and not found:
            state = frontier.pop(0)
            for transition in automaton.transitions_from(state):
                if not steps.charge():
                    return None
                if transition.target == anchor:
                    found = True
                    break
                if transition.target not in seen:
                    seen.add(transition.target)
                    frontier.append(transition.target)
        if found:
            anchors.add(anchor)

    co_lasso: Set[State] = set(anchors)
    frontier = sorted(anchors, key=repr)
    while frontier:
        state = frontier.pop(0)
        for predecessor in predecessors.get(state, ()):
            if not steps.charge():
                return None
            if predecessor not in co_lasso:
                co_lasso.add(predecessor)
                frontier.append(predecessor)
    return frozenset(reachable & co_lasso)


def trim(
    automaton: RegisterAutomaton,
    enabled: Optional[bool] = None,
    max_steps: Optional[int] = DEFAULT_TRIM_BUDGET,
) -> RegisterAutomaton:
    """Drop states through which no accepting lasso can pass.

    Returns the *same object* when nothing is trimmed (or reduction is
    disabled, the budget trips, or the trim would change the
    normalisation shape -- see the module docstring), so identity-keyed
    caches downstream stay warm on the common path.
    """
    if enabled is None:
        enabled = reduction_enabled()
    if not enabled:
        return automaton
    budget = Budget("reduction")
    steps = budget.scope("steps", max_steps)
    keep = _lasso_keep_set(automaton, steps)
    if keep is None:
        _declined(automaton, budget)
        return automaton
    if keep == automaton.states:
        return automaton
    if not keep & automaton.initial:
        # The language is empty and the enumeration over the original
        # graph is already trivial (no accepting lasso exists); the
        # untouched automaton also sidesteps empty-state-set edge cases.
        return automaton
    trimmed = automaton.restricted(keep)
    # Guard rail: the normalisation pipeline branches on these two
    # predicates; a False -> True flip (every incomplete guard or every
    # multi-guard state was trimmed away) would change the witness state
    # shapes, so fall back to identity there.
    if trimmed.is_complete() != automaton.is_complete():
        return automaton
    if trimmed.is_state_driven() != automaton.is_state_driven():
        return automaton
    return trimmed


def trim_extended(
    extended: ExtendedAutomaton,
    enabled: Optional[bool] = None,
    max_steps: Optional[int] = DEFAULT_TRIM_BUDGET,
) -> ExtendedAutomaton:
    """:func:`trim` lifted to an extended automaton.

    Constraint DFAs are remapped onto the surviving state alphabet with
    their state sets untouched (exactly as
    :func:`repro.core.pruning.prune_extended` does): runs and candidate
    lassos of the trimmed automaton visit only surviving states, so
    every constraint accepts/rejects exactly the factors it did before,
    and downstream product constructions (Proposition 6, normalisation
    lifting) see identical DFA state names.
    """
    if enabled is None:
        enabled = reduction_enabled()
    trimmed = trim(extended.automaton, enabled=enabled, max_steps=max_steps)
    if trimmed is extended.automaton:
        return extended
    constraints = [
        GlobalConstraint(
            constraint.kind,
            constraint.i,
            constraint.j,
            _map_dfa_alphabet(
                extended.constraint_dfa(constraint),
                trimmed.states,
                lambda state: state,
            ),
        )
        for constraint in extended.constraints
    ]
    return ExtendedAutomaton(trimmed, constraints)


def _saturated_projection(
    guard: SigmaType, renaming: Dict, kept: int, k: int
) -> SigmaType:
    """The closure-saturated restriction of *guard* to the kept block.

    The syntactic ``restrict`` would lose facts entailed *through* a
    dropped register (``x1 = y3 and x2 = y3`` entails ``x1 = x2``), and
    an under-constrained projection is not sound for emptiness -- it
    could turn an empty automaton nonempty.  For pure equality logic the
    closure is complete: a valuation of the kept terms extends to the
    dropped ones iff it satisfies every entailed (dis)equality among the
    kept terms, so emitting exactly those literals is an *exact*
    projection.
    """
    renamed = guard.rename(renaming)
    closure = renamed.closure
    terms = [X(i) for i in range(1, kept + 1)] + [Y(i) for i in range(1, kept + 1)]
    literals = []
    for index, left in enumerate(terms):
        for right in terms[index + 1 :]:
            if closure.same(left, right):
                literals.append(lit_eq(left, right))
            elif closure.entails_neq(left, right):
                literals.append(lit_neq(left, right))
    # restrict() keeps the syntactic literals over the kept block (always a
    # subset of the saturated set); with_literals() canonicalises the union.
    return renamed.restrict(terms).with_literals(literals)


def project_dead_registers(
    automaton: RegisterAutomaton,
) -> Tuple[RegisterAutomaton, Tuple[int, ...]]:
    """Drop write-only registers; returns ``(projected, dropped)``.

    A write-only register (see
    :meth:`~repro.analysis.dataflow.liveness_domain.RegisterLiveness.write_only_registers`)
    is written or copied into but live at no state: no guard's
    enabledness, and no observable constraint on another register,
    depends on its stored content.  Dropping it preserves the state
    traces (dead kept registers can be re-chosen when lifting a
    projected run back, by the liveness soundness invariant) and the
    emptiness verdict exactly -- every run of the projected automaton
    lifts back by choosing values for the dropped registers (the domain
    is infinite and the only facts about them are satisfiable writes),
    and every original run projects down.

    Returns ``(automaton, ())`` unchanged when there is nothing to drop,
    when the liveness analysis declines, or when the signature carries
    relations/constants (relational literals cannot be renamed term by
    term; the same restriction as Theorem 13's projection).
    """
    if automaton.signature.relations or automaton.signature.constants:
        return automaton, ()
    from repro.analysis.dataflow import analyze_register_liveness

    liveness = analyze_register_liveness(automaton)
    if liveness is None:
        return automaton, ()
    dropped = liveness.write_only_registers()
    if not dropped:
        return automaton, ()
    k = automaton.k
    kept = [i for i in range(1, k + 1) if i not in dropped]
    m = len(kept)
    # Permute registers so the kept block is 1..m, then project onto it.
    position = {register: index + 1 for index, register in enumerate(kept)}
    for offset, register in enumerate(dropped):
        position[register] = m + 1 + offset
    renaming = {}
    for register, target in position.items():
        renaming[X(register)] = X(target)
        renaming[Y(register)] = Y(target)
    transitions = [
        Transition(
            t.source,
            _saturated_projection(t.guard, renaming, m, k),
            t.target,
        )
        for t in automaton.transitions
    ]
    projected = RegisterAutomaton(
        m,
        automaton.signature,
        automaton.states,
        automaton.initial,
        automaton.accepting,
        transitions,
    )
    return projected, dropped
