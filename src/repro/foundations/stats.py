"""Hit/miss observability shared by every caching layer.

The library memoizes aggressively -- value caches in ``repro.core.caching``,
the intern tables of ``repro.foundations.interning``, per-type evaluation
memos in ``repro.db.evaluation``.  All of them report through the one
registry defined here, so benchmarks can print a single effectiveness table
regardless of which layer a cache lives in.

This module deliberately has **no** intra-package imports: it sits below
``repro.logic`` (whose interned constructors count their hits here) and
below ``repro.core`` (whose :mod:`~repro.core.caching` re-exports these
names for backwards compatibility), so it must not pull either in.
"""

from typing import Dict

__all__ = [
    "CacheStats",
    "cache_stats",
    "all_cache_stats",
    "reset_cache_stats",
]


class CacheStats:
    """Hit/miss/eviction counters for one named cache (or cache family).

    Stats objects are shared by *name* through :func:`cache_stats`, so
    short-lived cache instances (e.g. the per-call corridor cache of
    Theorem 24) accumulate into one series that benchmarks can report.
    """

    __slots__ = ("name", "hits", "misses", "evictions", "peak_entries")

    def __init__(self, name: str):
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.peak_entries = 0

    def hit(self) -> None:
        self.hits += 1

    def miss(self) -> None:
        self.misses += 1

    def eviction(self) -> None:
        self.evictions += 1

    def note_entries(self, count: int) -> None:
        """Record the current entry count; keeps the high-water mark."""
        if count > self.peak_entries:
            self.peak_entries = count

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup in [0, 1]; 0.0 before the first lookup."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.peak_entries = 0

    def snapshot(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "peak_entries": self.peak_entries,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return "CacheStats(%r, hits=%d, misses=%d, evictions=%d, peak=%d)" % (
            self.name,
            self.hits,
            self.misses,
            self.evictions,
            self.peak_entries,
        )


_REGISTRY: Dict[str, CacheStats] = {}  # mode-ok: plain counters, no interned values


def cache_stats(name: str) -> CacheStats:
    """The (singleton) stats object for the named cache; created on demand."""
    stats = _REGISTRY.get(name)
    if stats is None:
        stats = _REGISTRY[name] = CacheStats(name)  # worker-ok: per-process counters
    return stats


def all_cache_stats() -> Dict[str, Dict[str, float]]:
    """Snapshots of every registered cache, keyed by cache name."""
    return {name: stats.snapshot() for name, stats in sorted(_REGISTRY.items())}


def reset_cache_stats() -> None:
    """Zero every registered counter (the caches themselves are untouched)."""
    for stats in _REGISTRY.values():
        stats.reset()
