"""Value-keyed memo tables, below the ``repro.core`` layer.

:class:`ValueCache` started life in :mod:`repro.core.caching` (which still
re-exports it).  It moved down here so the logic kernel -- which
``repro.core`` imports at module load -- can bound its own memo tables with
the same instrumented cache class without creating an import cycle.

The discipline is unchanged: keys compare by *value* (structural
equality), never by identity, and every instance is tracked weakly so
:func:`clear_value_caches` can reset the lot between ablation runs.
"""

import weakref
from typing import Callable, Dict, Hashable, List, Optional

from repro.foundations.stats import cache_stats

__all__ = ["ValueCache", "clear_value_caches"]


class ValueCache:
    """A memo table keyed by *values* (structural equality), never identity.

    Keys must be hashable and compare by content -- guards (``SigmaType``),
    tuples of states, structural DFA fingerprints.  An optional *maxsize*
    bounds the table with FIFO eviction (insertion order), which is enough
    for the streaming workloads where old guard shapes stop recurring.

    Every instance is tracked (weakly) so :func:`clear_value_caches` can
    reset the lot -- the ablation benchmarks flip interning on and off and
    must not let entries computed in one mode serve lookups in the other.
    """

    __slots__ = ("_data", "_maxsize", "stats", "__weakref__")

    _MISSING = object()
    _instances: List["weakref.ref"] = []

    def __init__(self, name: str, maxsize: Optional[int] = None):
        self._data: Dict[Hashable, object] = {}
        self._maxsize = maxsize
        self.stats = cache_stats(name)
        ValueCache._instances.append(weakref.ref(self))

    def lookup(self, key: Hashable, compute: Callable[[], object]) -> object:
        """The cached value for *key*, computing and storing it on a miss."""
        data = self._data
        value = data.get(key, self._MISSING)
        if value is not self._MISSING:
            self.stats.hit()
            return value
        self.stats.miss()
        value = compute()
        if self._maxsize is not None and len(data) >= self._maxsize:
            data.pop(next(iter(data)))
            self.stats.eviction()
        data[key] = value
        self.stats.note_entries(len(data))
        return value

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def clear(self) -> None:
        self._data.clear()


def clear_value_caches() -> None:
    """Empty every live :class:`ValueCache` (ablation/test isolation).

    Stats counters are deliberately left alone -- this resets *state*, not
    *observability*; pair with ``reset_cache_stats`` when both matter.
    """
    live: List["weakref.ref"] = []
    for ref in ValueCache._instances:
        cache = ref()
        if cache is not None:
            cache.clear()
            live.append(ref)
    ValueCache._instances[:] = live
