"""Foundational utilities shared by every layer of the library.

The paper fixes an infinite data domain ``D`` (Section 2).  We model data
values as arbitrary hashable Python objects and provide a :class:`FreshSupply`
that hands out values guaranteed not to collide with any value seen so far --
this realises the standing assumption that *"for every run there are
infinitely many values in D that do not occur in it"*.
"""

from repro.foundations.diagnostics import Diagnostic, Report, Severity, merge_reports
from repro.foundations.domain import DataValue, FreshSupply, is_data_value
from repro.foundations.errors import (
    EvaluationError,
    InconsistentTypeError,
    ReproError,
    SpecificationError,
)
from repro.foundations.faults import FaultInjected, FaultPlan, fault, parse_fault_plan, reset_faults
from repro.foundations.interning import (
    Interned,
    clear_intern_tables,
    intern_table_sizes,
    interning,
    interning_enabled,
    set_interning,
)
from repro.foundations.resilience import (
    Budget,
    CancellationToken,
    Deadline,
    DeadlineExceeded,
    OperationCancelled,
    Outcome,
    OutcomeStatus,
    current_deadline,
    deadline_scope,
    drain_events,
    recent_events,
    record_event,
)
from repro.foundations.stats import (
    CacheStats,
    all_cache_stats,
    cache_stats,
    reset_cache_stats,
)

__all__ = [
    "DataValue",
    "FreshSupply",
    "is_data_value",
    "ReproError",
    "SpecificationError",
    "InconsistentTypeError",
    "EvaluationError",
    "Severity",
    "Diagnostic",
    "Report",
    "merge_reports",
    "Interned",
    "interning",
    "interning_enabled",
    "set_interning",
    "intern_table_sizes",
    "clear_intern_tables",
    "CacheStats",
    "cache_stats",
    "all_cache_stats",
    "reset_cache_stats",
    "Deadline",
    "DeadlineExceeded",
    "OperationCancelled",
    "Budget",
    "CancellationToken",
    "Outcome",
    "OutcomeStatus",
    "current_deadline",
    "deadline_scope",
    "record_event",
    "recent_events",
    "drain_events",
    "FaultInjected",
    "FaultPlan",
    "fault",
    "parse_fault_plan",
    "reset_faults",
]
