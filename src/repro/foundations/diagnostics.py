"""Structured diagnostics: the currency of the static-analysis layer.

A :class:`Diagnostic` is one finding about one object -- an unsatisfiable
guard, an unreachable stage, a register no guard ever constrains -- carrying
a stable *code* (``RA102``, ``WF003``, ...), a :class:`Severity`, a human
message and an optional location string.  A :class:`Report` is an ordered
collection of diagnostics about one subject, with severity roll-ups and a
plain-text table rendering for the CLI.

This module lives in ``foundations`` (not in :mod:`repro.analysis`) on
purpose: construction-time validation in :mod:`repro.core` emits the same
diagnostics the analysis passes do, and core must not import the analysis
package (which imports core).  See
:meth:`repro.core.register_automaton.RegisterAutomaton.structural_diagnostics`
and :class:`repro.foundations.errors.SpecificationError`.
"""

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple


class Severity(enum.IntEnum):
    """How bad a finding is.  Ordering is meaningful (ERROR > WARNING > INFO).

    * ``ERROR`` -- the object violates an invariant the constructions rely
      on (unsatisfiable guard, undeclared relation); using it is a bug.
    * ``WARNING`` -- the object is well-formed but almost certainly not
      what was meant (unreachable states, a vacuously empty language).
    * ``INFO`` -- a property worth knowing when choosing a construction
      (not complete, not state-driven) but expected on most inputs.
    """

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # "error", not "Severity.ERROR", in tables
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, a severity, a message, a location.

    ``code`` identifies the check (stable across releases, documented in
    ``docs/ANALYSIS.md``); ``location`` narrows the finding inside the
    analyzed object (a transition, a state, a rule) and may be empty.
    ``source`` names the analysis pass that produced the finding (stamped
    by :func:`repro.analysis.engine.analyze`; empty for construction-time
    validation).  ``data`` is an optional machine-readable payload -- e.g.
    the reachability witness or infeasibility proof attached to the
    ``DF0xx`` findings -- and must be JSON-serialisable when present.
    """

    code: str
    severity: Severity
    message: str
    location: str = ""
    source: str = ""
    data: Optional[object] = None

    def format(self) -> str:
        """The one-line rendering used by exceptions and the CLI."""
        where = " at %s" % self.location if self.location else ""
        return "[%s] %s: %s%s" % (self.code, self.severity, self.message, where)

    def __str__(self) -> str:
        return self.format()

    def as_dict(self) -> dict:
        """The JSON-ready form used by ``python -m repro.analysis --format json``."""
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "location": self.location,
            "source": self.source,
            "data": self.data,
        }


def error(code: str, message: str, location: str = "") -> Diagnostic:
    return Diagnostic(code, Severity.ERROR, message, location)


def warning(code: str, message: str, location: str = "") -> Diagnostic:
    return Diagnostic(code, Severity.WARNING, message, location)


def info(code: str, message: str, location: str = "") -> Diagnostic:
    return Diagnostic(code, Severity.INFO, message, location)


@dataclass
class Report:
    """The diagnostics gathered about one *subject* (a labelled object).

    Reports are ordered (pass registration order, then finding order) and
    support merging, so the CLI can fold the per-object reports of a whole
    example script into one table.
    """

    subject: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def merge(self, other: "Report") -> None:
        """Fold *other* into this report, prefixing its subject into locations."""
        for diagnostic in other.diagnostics:
            location = (
                "%s: %s" % (other.subject, diagnostic.location)
                if other.subject and diagnostic.location
                else (other.subject or diagnostic.location)
            )
            # replace() keeps every other field (source, data, and any
            # future ones) intact; reconstructing would silently drop them.
            self.add(replace(diagnostic, location=location))

    # roll-ups ---------------------------------------------------------- #

    def by_severity(self, severity: Severity) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> Tuple[Diagnostic, ...]:
        return self.by_severity(Severity.INFO)

    @property
    def ok(self) -> bool:
        """Whether the report carries no errors (warnings/infos allowed)."""
        return not self.errors

    def codes(self) -> Tuple[str, ...]:
        """The distinct diagnostic codes present, in first-seen order."""
        return tuple(dict.fromkeys(d.code for d in self.diagnostics))

    def as_dict(self) -> dict:
        """The JSON-ready form: subject, ok flag, counts, all findings."""
        return {
            "subject": self.subject,
            "ok": self.ok,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "info": len(self.infos),
            },
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        # A Report is always truthy; use ``len`` / ``ok`` explicitly.  This
        # guards against ``if report:`` silently meaning "has findings".
        return True

    # rendering --------------------------------------------------------- #

    def render(self, min_severity: Severity = Severity.INFO) -> str:
        """A plain-text table of the findings at or above *min_severity*."""
        rows = [
            (d.code, str(d.severity), d.location, d.message)
            for d in self.diagnostics
            if d.severity >= min_severity
        ]
        title = self.subject or "report"
        if not rows:
            return "%s: clean (no findings >= %s)" % (title, min_severity)
        headers = ("code", "severity", "location", "message")
        widths = [len(h) for h in headers]
        for row in rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
        rule = "  ".join("-" * w for w in widths)
        body = "\n".join(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rows
        )
        summary = "%d error(s), %d warning(s), %d info" % (
            len(self.errors),
            len(self.warnings),
            len(self.infos),
        )
        return "%s\n%s\n%s\n%s\n%s" % (title, line, rule, body, summary)


def merge_reports(subject: str, reports: Sequence[Report]) -> Report:
    """One report folding a sequence of per-object reports."""
    merged = Report(subject)
    for report in reports:
        merged.merge(report)
    return merged
