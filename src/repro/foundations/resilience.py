"""Deadlines, budgets, cancellation and graceful-degradation outcomes.

The paper's decision procedures are doubly exponential in the worst case
(type completion, the Theorem 24 synchronization, the Buchi lasso
search), so a production deployment cannot let any single call hang
forever.  This module is the execution-resilience vocabulary shared by
every long-running procedure in the library:

* :class:`Deadline` -- a monotonic-clock budget on wall time.  Built from
  seconds, milliseconds, or the ``REPRO_DEADLINE_MS`` environment knob
  (read at call time, like every other knob); ``check()`` raises
  :class:`DeadlineExceeded`, the cooperative-interruption signal that
  procedures catch at their public entry point and convert into an
  honest :class:`Outcome`.
* :class:`Budget` -- a named, optionally-limited counter with
  nested-scope composition: a child scope charges its parent too, so one
  snapshot reports the whole hierarchy.  The dataflow solver's
  edge-evaluation cap and the ``MAX_REGISTERS`` domain cap both live on
  this abstraction, which makes all degradation reports uniform.
* :class:`CancellationToken` -- an external kill switch (e.g. a CLI
  signal handler) polled at the same checkpoints as deadlines.
* :class:`Outcome` -- the verdict wrapper: ``COMPLETE`` with a value,
  ``TIMEOUT`` / ``CANCELLED`` without one, or ``DEGRADED`` when a
  procedure finished on a weaker path (budget-declined analysis, serial
  fallback).  Every non-complete outcome carries deterministic progress
  stats ("candidates checked", budget snapshots) so "ran out of budget"
  is a first-class answer, never a silent lie.

Recovery paths (pool respawns, serial fallbacks, expired deadlines)
additionally record structured :class:`~repro.foundations.diagnostics.Diagnostic`
events (codes ``RS001``-``RS009``, see docs/ROBUSTNESS.md) in a bounded
in-process log, so tests and operators can observe *that* degradation
happened without parsing log text.

Ambient deadline: procedures that cannot thread a parameter through
every layer (guard completion runs deep inside normalisation) consult
:func:`current_deadline`, a thread-local stack managed by
:func:`deadline_scope`.  ``check_emptiness`` installs its deadline there
so the exponential inner loops stay interruptible at generator
boundaries.
"""

import enum
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.foundations import knobs
from repro.foundations.diagnostics import Diagnostic, Severity
from repro.foundations.errors import ReproError

T = TypeVar("T")

__all__ = [
    "DeadlineExceeded",
    "OperationCancelled",
    "Deadline",
    "Budget",
    "CancellationToken",
    "OutcomeStatus",
    "Outcome",
    "current_deadline",
    "deadline_scope",
    "record_event",
    "recent_events",
    "drain_events",
]


class DeadlineExceeded(ReproError):
    """A cooperative interruption: the monotonic deadline expired.

    Raised by :meth:`Deadline.check` at procedure checkpoints and caught
    at public entry points, which convert it into a ``TIMEOUT``
    :class:`Outcome` instead of letting it escape to the caller.
    Catching it elsewhere (to clean up and re-raise) is fine; swallowing
    it is not -- the entry point needs it to report honestly.
    """


class OperationCancelled(ReproError):
    """A cooperative interruption: an external :class:`CancellationToken` fired."""


# ---------------------------------------------------------------------- #
# deadlines (monotonic clock only -- see lint rule TIME001)
# ---------------------------------------------------------------------- #


class Deadline:
    """A point on the monotonic clock after which work must stop.

    Always built from a *duration*; the wall clock (``time.time``) is
    never involved, so NTP steps and DST cannot expire or extend a
    deadline (lint rule ``TIME001`` enforces this repo-wide).  A
    deadline is shareable and immutable: pass one object through a whole
    call tree and every checkpoint sees the same expiry instant.
    """

    __slots__ = ("_expires_at", "_budget_ms")

    def __init__(self, seconds: float):
        self._budget_ms = max(float(seconds), 0.0) * 1000.0
        self._expires_at = time.monotonic() + max(float(seconds), 0.0)

    @classmethod
    def after_ms(cls, milliseconds: float) -> "Deadline":
        return cls(float(milliseconds) / 1000.0)

    @classmethod
    def from_env(cls, name: str = "REPRO_DEADLINE_MS") -> Optional["Deadline"]:
        """The deadline requested by the environment, or ``None``.

        Read at call time (never at import), so tests and A/B runs can
        flip the knob per call.  Unset, empty, negative or junk values
        all mean "no deadline".
        """
        knob = (
            knobs.get_knob(name)
            if knobs.is_registered(name)
            else knobs.get_knob("REPRO_DEADLINE_MS")
        )
        milliseconds = knob.parse(knobs.raw_value(name))
        if milliseconds is None:
            return None
        return cls.after_ms(milliseconds)

    @classmethod
    def resolve(cls, value) -> Optional["Deadline"]:
        """Normalise a user-facing ``deadline=`` argument.

        ``None`` falls back to ``REPRO_DEADLINE_MS``; a number is taken
        as milliseconds; a :class:`Deadline` passes through.  A negative
        number means "no deadline", matching :meth:`from_env` -- it is
        never clamped into an instantly-expired deadline.
        """
        if value is None:
            return cls.from_env()
        if isinstance(value, Deadline):
            return value
        milliseconds = float(value)
        if milliseconds < 0:
            return None
        return cls.after_ms(milliseconds)

    @property
    def budget_ms(self) -> float:
        """The duration this deadline was created with, in milliseconds."""
        return self._budget_ms

    def remaining(self) -> float:
        """Seconds until expiry (clamped at zero)."""
        return max(self._expires_at - time.monotonic(), 0.0)

    def remaining_ms(self) -> float:
        return self.remaining() * 1000.0

    def expired(self) -> bool:
        return time.monotonic() >= self._expires_at

    def check(self, site: str = "") -> None:
        """Raise :class:`DeadlineExceeded` when the deadline has passed."""
        if time.monotonic() >= self._expires_at:
            where = " at %s" % site if site else ""
            raise DeadlineExceeded(
                "deadline of %.0f ms expired%s" % (self._budget_ms, where)
            )

    def __repr__(self) -> str:
        return "Deadline(%.0fms budget, %.0fms remaining)" % (
            self._budget_ms,
            self.remaining_ms(),
        )


# The ambient deadline is a per-thread stack: check_emptiness (and any
# other entry point) pushes its resolved deadline around the work so the
# exponential layers below it -- guard completion, Theorem 24 constraint
# assembly -- can poll without a parameter threading through every call.
_AMBIENT = threading.local()


def _ambient_stack() -> List[Deadline]:
    stack = getattr(_AMBIENT, "stack", None)
    if stack is None:
        stack = _AMBIENT.stack = []
    return stack


def current_deadline() -> Optional[Deadline]:
    """The innermost ambient deadline of this thread, or ``None``."""
    stack = getattr(_AMBIENT, "stack", None)
    if not stack:
        return None
    return stack[-1]


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Install *deadline* as the ambient deadline for the dynamic extent.

    A ``None`` deadline is a no-op scope (the enclosing deadline, if any,
    stays visible) -- callers can wrap unconditionally.
    """
    if deadline is None:
        yield None
        return
    stack = _ambient_stack()
    stack.append(deadline)
    try:
        yield deadline
    finally:
        stack.pop()


# ---------------------------------------------------------------------- #
# budgets with nested-scope composition
# ---------------------------------------------------------------------- #


class Budget:
    """A named counter with an optional limit and nested scopes.

    ``charge(n)`` spends *n* units against this budget **and every
    ancestor**; it returns ``False`` once any level is exhausted
    (``spent > limit``), after which the caller degrades -- budgets never
    raise.  ``scope(name, limit)`` opens a child whose spending rolls up,
    so one :meth:`snapshot` of the root reports the entire hierarchy in a
    JSON-ready form suitable for ``Diagnostic.data`` and
    :class:`Outcome` stats.
    """

    __slots__ = ("name", "limit", "_spent", "_parent", "_children")

    def __init__(
        self,
        name: str,
        limit: Optional[int] = None,
        parent: Optional["Budget"] = None,
    ):
        self.name = name
        self.limit = limit
        self._spent = 0
        self._parent = parent
        self._children: List["Budget"] = []

    @property
    def spent(self) -> int:
        return self._spent

    def remaining(self) -> Optional[int]:
        """Units left before exhaustion, or ``None`` for unlimited."""
        if self.limit is None:
            return None
        return max(self.limit - self._spent, 0)

    @property
    def exhausted(self) -> bool:
        """Whether this budget (or any ancestor) is over its limit."""
        node: Optional[Budget] = self
        while node is not None:
            if node.limit is not None and node._spent > node.limit:
                return True
            node = node._parent
        return False

    def charge(self, amount: int = 1) -> bool:
        """Spend *amount* here and in every ancestor; ``False`` if exhausted."""
        node: Optional[Budget] = self
        while node is not None:
            node._spent += amount
            node = node._parent
        return not self.exhausted

    def scope(self, name: str, limit: Optional[int] = None) -> "Budget":
        """A child budget whose charges propagate into this one."""
        child = Budget(name, limit, parent=self)
        self._children.append(child)
        return child

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready view of this budget and its descendants."""
        view: Dict[str, Any] = {
            "name": self.name,
            "limit": self.limit,
            "spent": self._spent,
            "exhausted": self.exhausted,
        }
        if self._children:
            view["children"] = [child.snapshot() for child in self._children]
        return view

    def __repr__(self) -> str:
        cap = "inf" if self.limit is None else str(self.limit)
        return "Budget(%s: %d/%s)" % (self.name, self._spent, cap)


# ---------------------------------------------------------------------- #
# cancellation
# ---------------------------------------------------------------------- #


class CancellationToken:
    """A thread-safe external kill switch, polled cooperatively.

    Created by whoever owns the work (a CLI signal handler, a serving
    layer's request scope) and passed into long-running procedures, which
    poll :meth:`check` at the same checkpoints as deadlines.  Cancelling
    is idempotent and one-way.
    """

    __slots__ = ("_event", "reason")

    def __init__(self):
        self._event = threading.Event()
        self.reason = ""

    def cancel(self, reason: str = "") -> None:
        if reason and not self.reason:
            self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def check(self, site: str = "") -> None:
        """Raise :class:`OperationCancelled` when the token has fired."""
        if self._event.is_set():
            where = " at %s" % site if site else ""
            detail = ": %s" % self.reason if self.reason else ""
            raise OperationCancelled("operation cancelled%s%s" % (where, detail))

    def __repr__(self) -> str:
        return "CancellationToken(%s)" % ("cancelled" if self.cancelled else "live")


# ---------------------------------------------------------------------- #
# outcomes
# ---------------------------------------------------------------------- #


class OutcomeStatus(enum.Enum):
    """How a resilient procedure finished.

    * ``COMPLETE`` -- the full computation ran; the value is exact.
    * ``TIMEOUT`` -- a deadline expired; the value (if any) is partial
      and the verdict it supports is ``UNKNOWN``.
    * ``DEGRADED`` -- the procedure finished, but on a weaker path: a
      budget-declined analysis, a serial fallback.  Values are still
      sound (degradation paths are chosen to be bit-identical or
      conservative), the stats say what was skipped.
    * ``CANCELLED`` -- an external token stopped the work.
    """

    COMPLETE = "complete"
    TIMEOUT = "timeout"
    DEGRADED = "degraded"
    CANCELLED = "cancelled"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Outcome(Generic[T]):
    """A verdict wrapper: status, optional value, deterministic progress stats.

    ``stats`` must be JSON-serialisable and *deterministic given where
    the procedure stopped* -- counts of work done, budget snapshots,
    names of skipped phases -- never raw clock readings, so byte-identical
    comparisons across serial/parallel/interned runs stay meaningful.
    """

    status: OutcomeStatus
    value: Optional[T] = None
    stats: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def complete(cls, value: T = None, **stats) -> "Outcome[T]":
        return cls(OutcomeStatus.COMPLETE, value, dict(stats))

    @classmethod
    def timeout(cls, value: Optional[T] = None, **stats) -> "Outcome[T]":
        return cls(OutcomeStatus.TIMEOUT, value, dict(stats))

    @classmethod
    def degraded(cls, value: Optional[T] = None, **stats) -> "Outcome[T]":
        return cls(OutcomeStatus.DEGRADED, value, dict(stats))

    @classmethod
    def cancelled(cls, value: Optional[T] = None, **stats) -> "Outcome[T]":
        return cls(OutcomeStatus.CANCELLED, value, dict(stats))

    @property
    def ok(self) -> bool:
        """Whether the computation ran to completion."""
        return self.status is OutcomeStatus.COMPLETE

    def as_dict(self) -> Dict[str, Any]:
        return {"status": str(self.status), "stats": dict(self.stats)}

    def __repr__(self) -> str:
        return "Outcome(%s%s)" % (
            self.status,
            ", %r" % (self.stats,) if self.stats else "",
        )


# ---------------------------------------------------------------------- #
# structured resilience events
# ---------------------------------------------------------------------- #

#: Bounded in-process log of recovery/degradation diagnostics.  Bounded so
#: a long-lived server that degrades on every call cannot leak memory;
#: tests drain it, operators sample it.
_EVENT_LOG_CAPACITY = 256
_EVENTS: "deque[Diagnostic]" = deque(maxlen=_EVENT_LOG_CAPACITY)
_EVENTS_LOCK = threading.Lock()


def record_event(
    code: str,
    message: str,
    severity: Severity = Severity.WARNING,
    location: str = "",
    data: Optional[dict] = None,
) -> Diagnostic:
    """Record one structured resilience event (codes ``RS001``-``RS009``).

    Returns the recorded :class:`Diagnostic` so call sites can also
    attach it to an :class:`Outcome` or a report.
    """
    diagnostic = Diagnostic(
        code, severity, message, location, source="resilience", data=data
    )
    with _EVENTS_LOCK:
        _EVENTS.append(diagnostic)
    return diagnostic


def recent_events(code: Optional[str] = None) -> Tuple[Diagnostic, ...]:
    """The retained events, oldest first, optionally filtered by code."""
    with _EVENTS_LOCK:
        events = tuple(_EVENTS)
    if code is None:
        return events
    return tuple(d for d in events if d.code == code)


def drain_events() -> Tuple[Diagnostic, ...]:
    """Return all retained events and clear the log (test isolation)."""
    with _EVENTS_LOCK:
        events = tuple(_EVENTS)
        _EVENTS.clear()
    return events
