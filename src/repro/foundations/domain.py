"""The infinite data domain ``D`` and fresh-value generation.

Data values in the paper are uninterpreted elements of an infinite domain:
the automata may only compare them for (in)equality and look them up in
database relations.  We therefore accept any hashable Python object as a data
value, and provide :class:`FreshSupply` for manufacturing values that are
guaranteed to be distinct from everything produced or registered before.
"""

from itertools import count
from typing import Hashable, Iterable, Iterator, Set

#: Type alias for members of the data domain ``D``.
DataValue = Hashable


def is_data_value(obj: object) -> bool:
    """Return ``True`` when *obj* can serve as a data value (is hashable)."""
    try:
        hash(obj)
    except TypeError:
        return False
    return True


class FreshSupply:
    """A deterministic source of data values never seen before.

    The paper's constructions repeatedly need "a fresh value" -- for example
    the chase in Theorem 9 introduces *"fresh new elements as needed"*, and
    Lemma 25 maps register classes to *"an arbitrary value in D - adom(D)"*.
    A :class:`FreshSupply` realises this: it produces strings of the form
    ``"<prefix><n>"`` while skipping anything registered as used.

    Parameters
    ----------
    used:
        Initial collection of values that must never be produced.
    prefix:
        Prefix of generated value names; purely cosmetic, helps debugging.

    Examples
    --------
    >>> supply = FreshSupply(used={"fresh0"})
    >>> supply.take()
    'fresh1'
    >>> supply.take()
    'fresh2'
    """

    def __init__(self, used: Iterable[DataValue] = (), prefix: str = "fresh"):
        self._used: Set[DataValue] = set(used)
        self._prefix = prefix
        self._counter = count()

    def reserve(self, values: Iterable[DataValue]) -> None:
        """Mark *values* as used so they are never produced later."""
        self._used.update(values)

    def take(self) -> DataValue:
        """Return a data value distinct from every reserved/produced one."""
        for n in self._counter:
            candidate = "%s%d" % (self._prefix, n)
            if candidate not in self._used:
                self._used.add(candidate)
                return candidate
        raise AssertionError("unreachable: count() is infinite")

    def take_many(self, how_many: int) -> list:
        """Return *how_many* pairwise-distinct fresh values."""
        return [self.take() for _ in range(how_many)]

    def __iter__(self) -> Iterator[DataValue]:
        """Iterate over an endless stream of fresh values."""
        while True:
            yield self.take()
