"""Hash-consing: weak intern tables behind the logic constructors.

Every hot path of the reproduction -- guard agreement, type completion, the
Lemma 21 trackers, the Theorem 9 emptiness search -- churns through terms,
literals and sigma-types that are structurally equal but freshly allocated.
Hash-consing (interning) makes the constructors themselves return a single
canonical instance per value, so:

* structural equality becomes (mostly) pointer identity,
* per-instance caches (``SigmaType.closure``, evaluation memos) are
  computed once per *value* instead of once per allocation,
* cache keys hash in O(1) because every interned value carries its hash.

The mechanics live in the :class:`Interned` metaclass.  A class using it
declares a classmethod ``__intern_key__`` with the same signature as its
constructor, returning a hashable canonical key; the metaclass consults a
per-class :class:`weakref.WeakValueDictionary` before running
``__init__``, so a *hit* allocates nothing at all.  Values are held weakly:
an interned value the program no longer references is collected normally
and its table entry disappears with it.

Interning is on by default and can be disabled -- for A/B benchmarks and
to reproduce the pre-interning baseline -- with ``REPRO_INTERN=0`` in the
environment or :func:`set_interning` / :func:`interning` at runtime.  All
consumers must therefore keep *structural* equality correct for
non-interned values; identity is an optimisation, never a requirement.
Likewise unpickled values (e.g. results shipped back from
``REPRO_WORKERS`` subprocesses) re-enter the tables on load via each
class's ``__reduce__``, which routes through the interning constructor.

Thread note: table probes are dict operations protected by the GIL.  A
race between two threads constructing the same new value can at worst
produce one transient duplicate; ``setdefault`` ensures the table keeps a
single winner and equality remains correct either way.
"""

import weakref
from contextlib import contextmanager
from typing import Dict, Iterator, List

from repro.foundations import knobs
from repro.foundations.stats import cache_stats

__all__ = [
    "Interned",
    "interning_enabled",
    "set_interning",
    "interning",
    "register_intern_table",
    "register_mode_listener",
    "intern_table_sizes",
    "clear_intern_tables",
]


def _env_enabled() -> bool:
    return bool(knobs.value("REPRO_INTERN"))


#: Single-cell mutable flag: read on every construction, so keep it cheap.
#: ``None`` means "not resolved yet" -- the environment is consulted on
#: first use, not at import (ENV001: knobs are call-time, so a test runner
#: that sets ``REPRO_INTERN`` after importing the package is honoured).
_ENABLED: List = [None]

#: Every class created through the metaclass, for table diagnostics.
_INTERNED_CLASSES: List[type] = []


def interning_enabled() -> bool:
    """Whether constructors currently intern (see ``REPRO_INTERN``)."""
    enabled = _ENABLED[0]
    if enabled is None:
        enabled = _ENABLED[0] = _env_enabled()
    return enabled


def set_interning(enabled: bool) -> bool:
    """Turn interning on/off; returns the previous setting.

    Safe at any time: values created while disabled simply bypass the
    tables and compare structurally.  On an actual mode *change* the
    registered mode listeners fire (see :func:`register_mode_listener`):
    caches of interned values built under the other mode must be dropped
    so identity-is-equality stays true for everything they hand out.
    """
    previous = interning_enabled()
    _ENABLED[0] = bool(enabled)
    if bool(enabled) != previous:
        _fire_mode_listeners()
    return previous


@contextmanager
def interning(enabled: bool) -> Iterator[None]:
    """Context manager pinning the interning switch (used by ablations)."""
    previous = set_interning(enabled)
    try:
        yield
    finally:
        set_interning(previous)


class Interned(type):
    """Metaclass giving a class a constructor-level weak intern table.

    The class must define ``__intern_key__`` as a classmethod whose
    signature mirrors ``__init__`` and whose result is the hashable
    canonical key (canonical: two constructor calls that would produce
    equal instances must map to equal keys).  On a table hit the canonical
    instance is returned directly and ``__init__`` never runs.
    """

    def __new__(mcls, name, bases, namespace):
        cls = super().__new__(mcls, name, bases, namespace)
        cls.__intern_table__ = weakref.WeakValueDictionary()
        cls.__intern_stats__ = cache_stats("intern.%s" % name)
        _INTERNED_CLASSES.append(cls)
        return cls

    def __call__(cls, *args, **kwargs):
        enabled = _ENABLED[0]
        if enabled is None:
            enabled = _ENABLED[0] = _env_enabled()
        if not enabled:
            return super().__call__(*args, **kwargs)
        key = cls.__intern_key__(*args, **kwargs)
        table = cls.__intern_table__
        obj = table.get(key)
        stats = cls.__intern_stats__
        if obj is not None:
            stats.hits += 1
            return obj
        stats.misses += 1
        obj = super().__call__(*args, **kwargs)
        canonical = table.setdefault(key, obj)
        stats.note_entries(len(table))
        return canonical


#: Hand-managed tables (classes whose keys need construction-time work,
#: e.g. ``SigmaType``) registered so diagnostics and tests see them too.
_EXTRA_TABLES: Dict[str, "weakref.WeakValueDictionary"] = {}  # mode-ok: weak tables of canonical values, cleared below

#: Callbacks to run whenever the interning mode flips (or the tables are
#: force-cleared).  Modules holding caches of *interned values* register a
#: clearing callback here -- a cache entry built under one mode must never
#: be served under the other, or identity-is-equality breaks.
_MODE_LISTENERS: List = []


def register_intern_table(name: str, table: "weakref.WeakValueDictionary") -> None:
    """Expose a hand-managed weak intern table to the diagnostics below."""
    _EXTRA_TABLES[name] = table


def register_mode_listener(listener) -> None:
    """Run *listener()* on every interning-mode change.

    Listeners also fire from :func:`clear_intern_tables`, which tests and
    ablation harnesses use as the "reset all canonical values" hammer.
    Listeners must be idempotent and must not raise.
    """
    _MODE_LISTENERS.append(listener)


def _fire_mode_listeners() -> None:
    for listener in _MODE_LISTENERS:
        listener()


def intern_table_sizes() -> Dict[str, int]:
    """Current live-entry count per interned class (diagnostics only)."""
    sizes = {cls.__name__: len(cls.__intern_table__) for cls in _INTERNED_CLASSES}
    for name, table in _EXTRA_TABLES.items():
        sizes[name] = len(table)
    return sizes


def clear_intern_tables() -> None:
    """Drop every table entry (tests only; live values stay valid).

    Mode listeners fire too: caches holding previously-canonical values
    would otherwise keep handing them out after the reset.
    """
    for cls in _INTERNED_CLASSES:
        cls.__intern_table__.clear()
    for table in _EXTRA_TABLES.values():
        table.clear()
    _fire_mode_listeners()
