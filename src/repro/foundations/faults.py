"""Deterministic fault injection (``REPRO_FAULTS``).

Every recovery path in the resilient execution layer -- pool respawn,
serial fallback, deadline timeout, CLI interrupt -- must be *exercised*
by tests and CI, not trusted on faith.  This module is the switchboard:
named injection sites inside the library consult the active
:class:`FaultPlan` and, when the plan says so, fail in a controlled,
reproducible way.

Syntax
------
``REPRO_FAULTS`` is a comma-separated list of ``site:kind:nth`` entries::

    REPRO_FAULTS=parallel.call_chunk:exit:1
    REPRO_FAULTS=parallel.spawn:raise:1,emptiness.lasso:deadline:3

* ``site`` names the injection point (see docs/ROBUSTNESS.md for the
  table).  Current sites: ``parallel.call_chunk`` (inside the worker
  process, per chunk), ``parallel.spawn`` (executor creation),
  ``emptiness.lasso`` (the candidate-lasso loop of ``check_emptiness``),
  and the monitor-multiplexer sites ``monitor.ingest`` (per ingest call,
  driver side: ``crash`` zaps volatile session state after the batch is
  journaled, ``raise`` rejects the batch atomically), ``monitor.snapshot``
  (per durable snapshot write: ``raise`` skips it, ``crash`` as above)
  and ``monitor.restore`` (per session during recovery: ``raise``
  quarantines that one session, ``crash`` restarts the idempotent
  recovery pass).
* ``kind`` is what happens: ``exit`` (hard ``os._exit`` -- simulates a
  worker crash / OOM kill), ``raise`` (raises :class:`FaultInjected`),
  ``deadline`` (raises
  :class:`~repro.foundations.resilience.DeadlineExceeded`, forcing the
  timeout path without a real clock), ``interrupt`` (raises
  ``KeyboardInterrupt``, exercising the CLI partial-report path).  Each
  site documents which kinds it honours.
* ``nth`` selects occurrences of the site *in the current process*:
  ``3`` fires on exactly the third hit, ``2-4`` on hits two through
  four, ``*`` on every hit.  Counters are per-process: worker processes
  inherit the environment variable and count their own hits, so
  ``parallel.call_chunk:exit:1`` kills every fresh worker on its first
  chunk -- which is exactly the repeated-crash scenario the executor
  respawn logic must survive.

The plan is re-read whenever the environment value changes (call-time
semantics, like every other ``REPRO_*`` knob), and hit counters reset
with it.  Tests should call :func:`reset_faults` around fault scenarios
for isolation.
"""

import threading
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.foundations import knobs
from repro.foundations.errors import ReproError

__all__ = [
    "FaultInjected",
    "FaultSpec",
    "FaultPlan",
    "parse_fault_plan",
    "fault",
    "reset_faults",
    "fault_hits",
]


class FaultInjected(ReproError):
    """The error raised by ``kind=raise`` injections.

    A distinct type so tests can assert the failure came from the
    harness, and so recovery code can choose to treat it exactly like
    the real failure it stands in for (e.g. a spawn failure) without
    ever catching genuine programming errors by accident.
    """


class FaultSpec(NamedTuple):
    """One parsed ``site:kind:nth`` entry; ``last=None`` means unbounded."""

    site: str
    kind: str
    first: int
    last: Optional[int]

    def matches(self, hit: int) -> bool:
        if hit < self.first:
            return False
        return self.last is None or hit <= self.last


def _parse_selector(raw: str) -> Tuple[int, Optional[int]]:
    raw = raw.strip()
    if raw in ("*", ""):
        return (1, None)
    if "-" in raw:
        low, high = raw.split("-", 1)
        return (int(low), int(high))
    nth = int(raw)
    return (nth, nth)


def parse_fault_plan(text: str) -> "FaultPlan":
    """Parse a ``REPRO_FAULTS`` value; malformed entries raise ``ValueError``.

    Failing loudly is deliberate: a typo'd fault plan that silently
    injected nothing would make a CI fault-smoke job vacuously green.
    """
    specs: List[FaultSpec] = []
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(
                "REPRO_FAULTS entry %r is not site:kind[:nth]" % entry
            )
        site, kind = parts[0].strip(), parts[1].strip()
        if not site or not kind:
            raise ValueError("REPRO_FAULTS entry %r has an empty field" % entry)
        first, last = _parse_selector(parts[2] if len(parts) == 3 else "*")
        specs.append(FaultSpec(site, kind, first, last))
    return FaultPlan(tuple(specs))


class FaultPlan:
    """A parsed fault plan with per-site hit counters (thread-safe)."""

    __slots__ = ("specs", "_hits", "_lock")

    def __init__(self, specs: Tuple[FaultSpec, ...]):
        self.specs = specs
        self._hits: Dict[str, int] = {}
        self._lock = threading.Lock()

    def fire(self, site: str) -> Optional[str]:
        """Count one hit of *site*; the kind to inject, or ``None``.

        Every call increments the site's counter, whether or not a spec
        matches -- occurrence numbering is a property of the run, not of
        the plan.
        """
        with self._lock:
            hit = self._hits.get(site, 0) + 1
            self._hits[site] = hit
        for spec in self.specs:
            if spec.site == site and spec.matches(hit):
                return spec.kind
        return None

    def hits(self, site: str) -> int:
        with self._lock:
            return self._hits.get(site, 0)

    def __repr__(self) -> str:
        return "FaultPlan(%s)" % ", ".join(
            "%s:%s:%s-%s" % (s.site, s.kind, s.first, s.last if s.last is not None else "*")
            for s in self.specs
        ) if self.specs else "FaultPlan(empty)"


# Cached (raw env value, plan).  The plan -- and with it the per-site hit
# counters -- is rebuilt whenever REPRO_FAULTS changes, so flipping the
# knob between tests restarts occurrence numbering.
_ACTIVE: List = [None, None]  # [raw, plan]
_ACTIVE_LOCK = threading.Lock()


def _active_plan() -> Optional[FaultPlan]:
    raw = knobs.value("REPRO_FAULTS")
    if not raw:
        with _ACTIVE_LOCK:
            # Per-worker occurrence numbering is the documented
            # REPRO_FAULTS contract, so these per-process writes are
            # exempt from the PAR003 worker-purity rule.
            _ACTIVE[0] = _ACTIVE[1] = None  # worker-ok: per-process plan cache
        return None
    with _ACTIVE_LOCK:
        if _ACTIVE[0] != raw:
            _ACTIVE[0] = raw  # worker-ok: per-process plan cache (see above)
            _ACTIVE[1] = parse_fault_plan(raw)  # worker-ok: per-process plan cache
        return _ACTIVE[1]


def fault(site: str) -> Optional[str]:
    """Poll an injection *site*: the kind to inject now, or ``None``.

    The fast path (no ``REPRO_FAULTS``) is one environment read and no
    locking beyond the cache reset -- cheap enough for per-chunk and
    per-candidate call sites.
    """
    plan = _active_plan()
    if plan is None:
        return None
    return plan.fire(site)


def fault_hits(site: str) -> int:
    """How many times *site* has been polled under the active plan."""
    plan = _active_plan()
    return 0 if plan is None else plan.hits(site)


def reset_faults() -> None:
    """Forget the cached plan and its counters (test isolation)."""
    with _ACTIVE_LOCK:
        _ACTIVE[0] = _ACTIVE[1] = None
