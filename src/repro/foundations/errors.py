"""Exception hierarchy for the library.

Every exception raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing genuine programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SpecificationError(ReproError):
    """An automaton, type, schema or constraint is ill-formed.

    Raised eagerly at construction time: the library validates inputs when
    objects are built so that algorithmic code can assume well-formedness.

    Carries the structured :class:`~repro.foundations.diagnostics.Diagnostic`
    findings (``diagnostics``, possibly empty) that triggered it, so that
    construction-time validation and the :mod:`repro.analysis` passes share
    one codepath: callers can match on stable diagnostic codes instead of
    parsing the message.
    """

    def __init__(self, message: str = "", diagnostics=()):
        self.diagnostics = tuple(diagnostics)
        if not message and self.diagnostics:
            message = "; ".join(d.format() for d in self.diagnostics)
        super().__init__(message)

    @classmethod
    def from_diagnostics(cls, diagnostics) -> "SpecificationError":
        """An error whose message is the formatted diagnostic list."""
        return cls(diagnostics=diagnostics)


class InconsistentTypeError(SpecificationError):
    """A sigma-type is unsatisfiable (e.g. contains ``x = y`` and ``x != y``).

    The paper requires types to be *satisfiable* conjunctions of literals;
    constructing an unsatisfiable one is a specification bug.
    """


class EvaluationError(ReproError):
    """A formula or type could not be evaluated against a database/valuation.

    Typical causes: a free variable missing from the valuation, or a relation
    symbol absent from the database's schema.
    """
