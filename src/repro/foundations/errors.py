"""Exception hierarchy for the library.

Every exception raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing genuine programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SpecificationError(ReproError):
    """An automaton, type, schema or constraint is ill-formed.

    Raised eagerly at construction time: the library validates inputs when
    objects are built so that algorithmic code can assume well-formedness.
    """


class InconsistentTypeError(SpecificationError):
    """A sigma-type is unsatisfiable (e.g. contains ``x = y`` and ``x != y``).

    The paper requires types to be *satisfiable* conjunctions of literals;
    constructing an unsatisfiable one is a specification bug.
    """


class EvaluationError(ReproError):
    """A formula or type could not be evaluated against a database/valuation.

    Typical causes: a free variable missing from the valuation, or a relation
    symbol absent from the database's schema.
    """
