"""The central registry of ``REPRO_*`` behaviour knobs.

Every environment knob the library honours is *declared* here as a
:class:`Knob` -- name, human-readable default, parser, one-line meaning,
and which CI ablation leg certifies it -- and *read* here, at call time,
through :func:`value`.  Centralising both halves buys three guarantees
the scattered ``os.environ.get("REPRO_*")`` reads could not:

* **one parser per knob**: junk-tolerance rules ("unset, empty, negative
  or garbage mean the default") live in exactly one place, so the serial
  path, the worker processes, and the benchmarks cannot drift;
* **auditable ablation coverage**: lint rule ``KNB002`` cross-checks
  this registry against ``.github/workflows/ci.yml`` -- every registered
  knob must name an ablation leg, or carry an explicit
  ``ablation="none"`` justification;
* **generated documentation**: the knob table in ``docs/ROBUSTNESS.md``
  is emitted from this registry (``python -m repro.analysis.lint
  --emit-docs``), and lint rule ``KNB003`` fails CI when the table
  drifts.

Reads stay **call-time** (lint rule ``ENV001``): declaring a knob never
touches the environment; only :func:`value` / :func:`raw_value` do, on
each call, so tests and A/B benchmark runs flip knobs per call with
``monkeypatch.setenv`` and no module reloads.  Direct
``os.environ``/``os.getenv`` access to a ``REPRO_*`` name anywhere else
under ``repro`` is a lint finding (``KNB001``).

Worker pinning
--------------
The one sanctioned *write* is :func:`pin_for_worker`: process-pool
initializers pin a knob inside a fresh worker (e.g. ``REPRO_WORKERS=1``
so work items that themselves consult the knob never spawn nested
pools).  Routing the write through here keeps the worker-purity race
detector (lint rule ``PAR002``) honest: any other worker-side
environment write is exactly the hidden nondeterminism it exists to
catch.
"""

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = [
    "Knob",
    "register_knob",
    "get_knob",
    "is_registered",
    "all_knobs",
    "value",
    "raw_value",
    "pin_for_worker",
]

#: The spellings that turn an on-by-default flag knob off.  Shared by
#: every flag parser so ``REPRO_PRUNE=off`` and ``REPRO_INTERN=No`` keep
#: behaving identically across knobs.
OFF_VALUES = ("0", "false", "off", "no")


@dataclass(frozen=True)
class Knob:
    """One declared environment knob.

    ``parse`` receives the raw environment value (``None`` when unset)
    and must return the effective value, absorbing junk: parsers never
    raise on malformed input, they fall back to the default -- a typo'd
    knob must degrade to stock behaviour, not crash the library.

    ``ablation`` is the certification pointer checked by lint rule
    ``KNB002``: ``"ci"`` asserts the knob name appears in an ablation
    leg of ``.github/workflows/ci.yml``; ``"none"`` opts out and then
    ``ablation_reason`` must say why that is sound.
    """

    name: str
    default: str
    parse: Callable[[Optional[str]], Any] = field(repr=False)
    doc: str = ""
    ablation: str = "ci"
    ablation_reason: str = ""

    def read(self) -> Any:
        """The effective value right now (one call-time environment read)."""
        return self.parse(os.environ.get(self.name))


# ---------------------------------------------------------------------- #
# parser helpers
# ---------------------------------------------------------------------- #


def flag_default_on(raw: Optional[str]) -> bool:
    """On unless the value spells "off" (the ``REPRO_INTERN`` family)."""
    return ((raw or "").strip().lower()) not in OFF_VALUES


def parse_worker_count(raw: Optional[str]) -> int:
    """``REPRO_WORKERS``: serial (1) for unset/junk/<=1, capped at 64.

    An explicit request above the machine's CPU count is honoured (the
    cap is a sanity bound, not an autodetect): tests rely on
    ``REPRO_WORKERS=2`` actually crossing the process boundary even on a
    single-CPU host, where oversubscription is the caller's informed
    choice.
    """
    text = (raw or "").strip()
    if not text:
        return 1
    try:
        requested = int(text)
    except ValueError:
        return 1
    if requested <= 1:
        return 1
    return min(requested, 64)


def parse_pool_retries(raw: Optional[str]) -> int:
    """``REPRO_MAX_POOL_RETRIES``: default 1, ``0`` allowed, capped at 16."""
    text = (raw or "").strip()
    if not text:
        return 1
    try:
        requested = int(text)
    except ValueError:
        return 1
    if requested < 0:
        return 1
    return min(requested, 16)


def parse_backoff_seconds(raw: Optional[str]) -> float:
    """``REPRO_POOL_BACKOFF_MS``: milliseconds in, *seconds* out.

    Defaults to 50 ms; junk and negatives mean the default; ``0``
    disables the sleep (CI fault-smoke runs).
    """
    text = (raw or "").strip()
    if not text:
        return 0.05
    try:
        milliseconds = float(text)
    except ValueError:
        return 0.05
    if milliseconds < 0:
        return 0.05
    return milliseconds / 1000.0


def parse_optional_ms(raw: Optional[str]) -> Optional[float]:
    """``REPRO_DEADLINE_MS``: a millisecond count, or ``None`` for "no deadline".

    Unset, empty, negative or junk all mean ``None`` -- never an
    instantly-expired deadline.
    """
    text = (raw or "").strip()
    if not text:
        return None
    try:
        milliseconds = float(text)
    except ValueError:
        return None
    if milliseconds < 0:
        return None
    return milliseconds


def parse_stripped(raw: Optional[str]) -> str:
    """A plain string knob (``REPRO_FAULTS``): stripped, ``""`` when unset."""
    return (raw or "").strip()


def parse_shard_count(raw: Optional[str]) -> int:
    """``REPRO_MONITOR_SHARDS``: ``0`` (auto) for unset/junk/negative, capped at 256."""
    text = (raw or "").strip()
    if not text:
        return 0
    try:
        requested = int(text)
    except ValueError:
        return 0
    if requested < 0:
        return 0
    return min(requested, 256)


def _parse_bounded_int(raw: Optional[str], default: int, cap: int) -> int:
    text = (raw or "").strip()
    if not text:
        return default
    try:
        requested = int(text)
    except ValueError:
        return default
    if requested < 1:
        return default
    return min(requested, cap)


def parse_snapshot_every(raw: Optional[str]) -> int:
    """``REPRO_MONITOR_SNAPSHOT_EVERY``: default 32, at least 1, capped at 1e6."""
    return _parse_bounded_int(raw, 32, 1_000_000)


def parse_journal_cap(raw: Optional[str]) -> int:
    """``REPRO_MONITOR_JOURNAL_CAP``: default 1024, at least 1, capped at 1e7."""
    return _parse_bounded_int(raw, 1024, 10_000_000)


# ---------------------------------------------------------------------- #
# the registry
# ---------------------------------------------------------------------- #

_REGISTRY: Dict[str, Knob] = {}  # mode-ok: Knob declarations hold no interned values


def register_knob(knob: Knob) -> Knob:
    """Declare *knob*; re-declaring the same name returns the original.

    A conflicting redeclaration (same name, different default or doc) is
    a programming error and raises: two modules silently disagreeing
    about a knob's meaning is the failure mode the registry exists to
    prevent.
    """
    existing = _REGISTRY.get(knob.name)
    if existing is not None:
        if (existing.default, existing.doc) != (knob.default, knob.doc):
            raise ValueError(
                "knob %r is already registered with a different declaration"
                % knob.name
            )
        return existing
    _REGISTRY[knob.name] = knob
    return knob


def get_knob(name: str) -> Knob:
    """The declared :class:`Knob`, or ``KeyError`` for unknown names."""
    return _REGISTRY[name]


def is_registered(name: str) -> bool:
    return name in _REGISTRY


def all_knobs() -> Tuple[Knob, ...]:
    """Every declared knob, sorted by name (deterministic docs/lint order)."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def value(name: str) -> Any:
    """The effective value of a registered knob (call-time environment read)."""
    return _REGISTRY[name].read()


def raw_value(name: str) -> Optional[str]:
    """The raw environment value of *name*, unparsed (``None`` when unset).

    The blessed low-level accessor for the few callers that need the raw
    text -- :mod:`repro.foundations.faults` keys its plan cache on it,
    and :meth:`Deadline.from_env` accepts non-registry names.  Still a
    call-time read.
    """
    return os.environ.get(name)


def pin_for_worker(name: str, pinned: str) -> None:
    """Pin knob *name* to *pinned* inside a worker process.

    The one sanctioned environment write: process-pool initializers call
    this so knobs consulted by work items resolve deterministically
    inside the worker (e.g. ``REPRO_WORKERS=1`` prevents nested pools).
    Only ever call it from a worker initializer -- pinning the parent
    process would leak across requests.
    """
    os.environ[name] = pinned  # worker-ok: the sanctioned worker-pin write (see docstring)


# ---------------------------------------------------------------------- #
# the declarations
# ---------------------------------------------------------------------- #
#
# Declaring is side-effect free (no environment read happens here --
# ENV001 call-time discipline); the table below is the single source of
# truth for docs/ROBUSTNESS.md ("Environment knobs", generated) and the
# KNB002 ablation-coverage check.

register_knob(
    Knob(
        name="REPRO_DEADLINE_MS",
        default="unset (no deadline)",
        parse=parse_optional_ms,
        doc=(
            "Wall-time budget, in milliseconds, applied by `check_emptiness` "
            "when no explicit `deadline=` argument is given.  Unset, empty, "
            "negative or junk all mean \"no deadline\"."
        ),
    )
)

register_knob(
    Knob(
        name="REPRO_WORKERS",
        default="`1` (serial)",
        parse=parse_worker_count,
        doc=(
            "Process-pool width for the candidate-lasso checks "
            "(`docs/PERFORMANCE.md`).  `0`/`1`/unset/junk mean serial; "
            "capped at 64."
        ),
    )
)

register_knob(
    Knob(
        name="REPRO_MAX_POOL_RETRIES",
        default="`1`",
        parse=parse_pool_retries,
        doc=(
            "Executor respawns allowed after a broken pool before degrading "
            "to the serial path.  `0` goes straight to serial on the first "
            "break; capped at 16."
        ),
        ablation="none",
        ablation_reason=(
            "the retry machinery itself is exercised by the fault-smoke "
            "crash legs (parallel.call_chunk:exit); the knob only tunes how "
            "many respawns precede the serial fallback, which is "
            "bit-identical by construction"
        ),
    )
)

register_knob(
    Knob(
        name="REPRO_POOL_BACKOFF_MS",
        default="`50`",
        parse=parse_backoff_seconds,
        doc=(
            "Base delay before an executor respawn, doubling per retry.  "
            "`0` disables the sleep (CI fault-smoke runs)."
        ),
    )
)

register_knob(
    Knob(
        name="REPRO_FAULTS",
        default="unset",
        parse=parse_stripped,
        doc=(
            "Deterministic fault-injection plan, `site:kind:nth` entries -- "
            "see `docs/ROBUSTNESS.md`, \"Fault injection\"."
        ),
    )
)

register_knob(
    Knob(
        name="REPRO_INTERN",
        default="`1` (on)",
        parse=flag_default_on,
        doc=(
            "Hash-consing of the logic kernel "
            "(`repro.foundations.interning`).  `0` restores the "
            "pre-interning structural-equality baseline; verdicts are "
            "identical by value."
        ),
    )
)

register_knob(
    Knob(
        name="REPRO_PRUNE",
        default="`1` (on)",
        parse=flag_default_on,
        doc=(
            "Dataflow-based transition pruning and candidate narrowing "
            "inside `check_emptiness` (`repro.core.pruning`).  Sound: "
            "verdict and witness are identical with it off."
        ),
    )
)

register_knob(
    Knob(
        name="REPRO_ANTICHAIN",
        default="`1` (on)",
        parse=flag_default_on,
        doc=(
            "Antichain partition-code dataflow domain "
            "(`repro.analysis.dataflow`).  `0` falls back to the explicit "
            "Bell(k) powerset domain (capped at 6 registers); diagnostics "
            "are byte-identical where both play."
        ),
    )
)

register_knob(
    Knob(
        name="REPRO_REDUCE",
        default="`1` (on)",
        parse=flag_default_on,
        doc=(
            "Candidate-preserving trim and dead-register projection "
            "(`repro.core.reduction`).  Verdict, witness *and* "
            "`candidates_checked` are byte-identical with it off."
        ),
    )
)

register_knob(
    Knob(
        name="REPRO_SYMKERNEL",
        default="`1` (on)",
        parse=flag_default_on,
        doc=(
            "Code-based normalisation kernel in `check_emptiness` "
            "(`docs/PERFORMANCE.md`, \"Symbolic normalisation kernel\").  "
            "`0` takes the legacy literal path -- the ablation baseline; "
            "answers are byte-identical either way."
        ),
    )
)

register_knob(
    Knob(
        name="REPRO_MONITOR_SHARDS",
        default="`0` (auto: one shard per worker)",
        parse=parse_shard_count,
        doc=(
            "Shard count for `MonitorMultiplexer` session fan-out "
            "(`repro.core.monitor`).  `0`/unset/junk mean auto "
            "(`REPRO_WORKERS`); capped at 256.  Sharded and serial ingest "
            "are byte-identical."
        ),
    )
)

register_knob(
    Knob(
        name="REPRO_MONITOR_SNAPSHOT_EVERY",
        default="`32`",
        parse=parse_snapshot_every,
        doc=(
            "Events a monitor session absorbs between durable snapshots "
            "(`docs/ROBUSTNESS.md`, \"Session snapshots\").  Smaller means "
            "shorter journal replays after a crash; results are identical "
            "for any value."
        ),
    )
)

register_knob(
    Knob(
        name="REPRO_MONITOR_JOURNAL_CAP",
        default="`1024`",
        parse=parse_journal_cap,
        doc=(
            "Write-ahead journal length that triggers snapshot-all + "
            "truncation in `MonitorMultiplexer` (best effort under "
            "injected snapshot faults).  Results are identical for any "
            "value."
        ),
    )
)

# Harness knobs: read by the benchmark/test harness (outside the `repro`
# tree, so KNB001 does not route their reads through here), declared so
# the KNB002 registry/CI cross-check and the generated docs cover every
# REPRO_* name the repository honours.

_HARNESS_REASON = (
    "harness control, not a library behaviour knob: it selects what the "
    "CI jobs run, so there is no serial/ablation A/B contract to certify"
)

register_knob(
    Knob(
        name="REPRO_BENCH_QUICK",
        default="unset (full benchmarks)",
        parse=flag_default_on,
        doc=(
            "Benchmark quick mode (the CI smoke job): shrinks workload "
            "sizes so `benchmarks/` finish in seconds."
        ),
        ablation="none",
        ablation_reason=_HARNESS_REASON,
    )
)

register_knob(
    Knob(
        name="REPRO_BENCH_JSON",
        default="`BENCH_4.json`",
        parse=parse_stripped,
        doc=(
            "Where the benchmark session writes its machine-readable "
            "report (`benchmarks/_tables.py`)."
        ),
        ablation="none",
        ablation_reason=_HARNESS_REASON,
    )
)

register_knob(
    Knob(
        name="REPRO_TEST_SHUFFLE",
        default="unset (declaration order)",
        parse=parse_stripped,
        doc=(
            "Seed for shuffling test order (`tests/conftest.py`) -- the "
            "CI leg that proves the suite is order-independent."
        ),
        ablation="none",
        ablation_reason=_HARNESS_REASON,
    )
)
