"""Analysis passes over :class:`~repro.workflows.spec.WorkflowSpec`.

* ``WF001`` -- a rule condition references an undeclared attribute;
* ``WF002`` -- a rule looks up an unknown relation (or wrong arity);
* ``WF003`` -- a rule's ``equal``/``distinct`` conditions are contradictory
  (on their own, or against ``distinct_attributes``): the rule can never
  fire;
* ``WF010`` -- a stage is unreachable from the initial stages;
* ``WF011`` -- no recurring stage is reachable: the Buchi condition is
  unsatisfiable and the compiled workflow accepts nothing;
* ``WF012`` -- a reachable stage has no outgoing rule, so every run
  entering it halts (runs are infinite in the formal model).
"""

from typing import Dict, Iterator, List, Set

from repro.foundations.diagnostics import Diagnostic, error, warning
from repro.foundations.errors import InconsistentTypeError, SpecificationError
from repro.logic.literals import neq
from repro.logic.terms import X, Y
from repro.workflows.spec import TransitionRule, WorkflowSpec

from repro.analysis.engine import analysis_pass


def _rule_references(rule: TransitionRule) -> List[str]:
    """Every attribute reference (``"a"`` / ``"a'"``) a rule mentions."""
    references: List[str] = []
    for condition in rule.conditions:
        kind = condition[0]
        if kind == "keep":
            references.append(condition[1])
        elif kind in ("eq", "neq"):
            references.extend(condition[1:3])
        elif kind in ("rel", "nrel"):
            references.extend(condition[2])
    return references


def _rule_location(rule: TransitionRule) -> str:
    return "rule %s -> %s" % (rule.source, rule.target)


@analysis_pass("workflow-rules", WorkflowSpec, codes=("WF001", "WF002", "WF003"))
def workflow_rules_pass(spec: WorkflowSpec) -> Iterator[Diagnostic]:
    attributes = set(spec.attributes)
    distinctness = []
    if spec.distinct_attributes:
        count = len(spec.attributes)
        for a in range(1, count + 1):
            for b in range(a + 1, count + 1):
                distinctness.append(neq(X(a), X(b)))
                distinctness.append(neq(Y(a), Y(b)))
    for rule in spec.rules:
        location = _rule_location(rule)
        unknown = sorted(
            {
                reference
                for reference in _rule_references(rule)
                if reference.rstrip("'") not in attributes
            }
        )
        for reference in unknown:
            yield error(
                "WF001", "condition references unknown attribute %r" % reference, location
            )
        if unknown:
            continue  # the rule cannot compile; deeper checks would just re-fail
        try:
            guard = spec.compile_rule(rule)
        except InconsistentTypeError as failure:
            yield error("WF003", "conditions are contradictory: %s" % failure, location)
            continue
        except SpecificationError as failure:
            yield error("WF002", str(failure), location)
            continue
        if distinctness:
            try:
                guard.with_literals(distinctness)
            except InconsistentTypeError:
                yield error(
                    "WF003",
                    "conditions contradict distinct_attributes "
                    "(two attributes are forced equal)",
                    location,
                )


def _reachable_stages(spec: WorkflowSpec) -> Set[str]:
    successors: Dict[str, List[str]] = {}
    for rule in spec.rules:
        successors.setdefault(rule.source, []).append(rule.target)
    seen: Set[str] = set(spec.initial_stages)
    frontier = list(seen)
    while frontier:
        stage = frontier.pop()
        for target in successors.get(stage, ()):
            if target not in seen:
                seen.add(target)
                frontier.append(target)
    return seen


@analysis_pass("workflow-liveness", WorkflowSpec, codes=("WF010", "WF011", "WF012"))
def workflow_liveness_pass(spec: WorkflowSpec) -> Iterator[Diagnostic]:
    reachable = _reachable_stages(spec)
    with_outgoing = {rule.source for rule in spec.rules}
    for stage in spec.stages:
        if stage.name not in reachable:
            yield warning(
                "WF010",
                "stage is unreachable from the initial stage(s)",
                "stage %r" % stage.name,
            )
        elif stage.name not in with_outgoing:
            yield warning(
                "WF012",
                "reachable stage has no outgoing rule; runs entering it "
                "halt (the formal model requires infinite runs)",
                "stage %r" % stage.name,
            )
    if not any(stage.recurring and stage.name in reachable for stage in spec.stages):
        yield warning(
            "WF011",
            "no recurring stage is reachable: the Buchi condition is "
            "unsatisfiable, the compiled workflow accepts nothing",
        )
