"""Static analysis: diagnostics over automata, guards and workflow specs.

The paper's constructions assume structural invariants -- satisfiable
sigma-type guards (Section 2 *requires* types to be satisfiable), complete
transition relations (Example 2), state-driven control (Example 3),
registers that are actually constrained (otherwise projection is vacuous)
-- that would otherwise only surface as failures deep inside a
construction.  This package checks them up front:

* :mod:`repro.analysis.engine` -- the :class:`AnalysisPass` registry and
  the :func:`analyze` entry point producing a
  :class:`~repro.foundations.diagnostics.Report`;
* :mod:`repro.analysis.passes_automata` -- register-automaton passes
  (``RA...`` codes);
* :mod:`repro.analysis.dataflow` -- the forward-fixpoint dataflow
  framework and the reachable-equality-types domain;
* :mod:`repro.analysis.passes_dataflow` -- feasibility / constancy passes
  proved by the dataflow fixpoint (``DF...``);
* :mod:`repro.analysis.passes_guards` -- sigma-type passes (``GT...``);
* :mod:`repro.analysis.passes_workflows` -- workflow-spec passes
  (``WF...``);
* :mod:`repro.analysis.passes_finite` -- DFA/NFA passes (``FA...`` /
  ``NF...``);
* :mod:`repro.analysis.cli` -- the ``python -m repro.analysis`` front end.

Diagnostic codes, severities and the how-to for adding a pass live in
``docs/ANALYSIS.md``.

Quick use::

    from repro.analysis import analyze
    report = analyze(automaton)
    assert report.ok, report.render()
"""

from repro.foundations.diagnostics import (
    Diagnostic,
    Report,
    Severity,
    merge_reports,
)

from repro.analysis.engine import (
    AnalysisPass,
    analysis_pass,
    analyze,
    is_clean,
    passes_for,
    register_pass,
    registered_passes,
)

# Importing the pass modules registers their passes as a side effect.
from repro.analysis import passes_automata  # noqa: F401  (registration)
from repro.analysis import passes_dataflow  # noqa: F401  (registration)
from repro.analysis import passes_finite  # noqa: F401  (registration)
from repro.analysis import passes_guards  # noqa: F401  (registration)
from repro.analysis import passes_workflows  # noqa: F401  (registration)

__all__ = [
    "Severity",
    "Diagnostic",
    "Report",
    "merge_reports",
    "AnalysisPass",
    "analysis_pass",
    "register_pass",
    "registered_passes",
    "passes_for",
    "analyze",
    "is_clean",
]
