"""Reachable equality types of registers, per control state.

The instantiation of :mod:`repro.analysis.dataflow.framework` that powers
the ``DF0xx`` feasibility passes and :func:`repro.core.pruning.prune_infeasible`.

Abstract domain
---------------
For a ``k``-register automaton the domain element at a control state is a
*set of complete equality x-types* over ``x1..xk``
(:func:`repro.logic.types.complete_equality_x_types` -- the Bell(k) set
partitions of the registers, hash-consed so sets compare fast).  The
concretisation of a set ``S`` at state ``q`` is::

    { register valuations d  |  the complete equality type of d is in S }

Soundness invariant (checked by the tests via brute-force bounded runs):
after solving, ``per_state[q]`` contains the equality type of **every**
register valuation ``d`` such that some valid run prefix from an initial
state reaches ``(q, d)``.  Initial states start at top (all types):
initial register contents are arbitrary.

The transfer function is :func:`repro.logic.types.abstract_successor_types`
-- exact on the equality skeleton of the guard, dropping relational and
constant facts (an over-approximation, hence sound).

Budgets
-------
Bell numbers grow fast (B(6) = 203, B(7) = 877), so the analysis refuses
automata with more than :data:`MAX_REGISTERS` registers and the solver
carries an edge-evaluation budget.  Both caps live on one
:class:`~repro.foundations.resilience.Budget` hierarchy
(``dataflow`` -> ``registers`` / ``edges``), so every degradation is
reported uniformly: :func:`reachable_types_outcome` returns a
``DEGRADED`` :class:`~repro.foundations.resilience.Outcome` whose stats
carry the budget snapshot (and an ``RS004`` event is recorded), while the
plain :func:`analyze_reachable_types` wrapper keeps the historical
``None``-means-no-information contract for consumers that only care
about the value.
"""

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.foundations import knobs
from repro.foundations.diagnostics import Severity
from repro.foundations.resilience import Budget, Outcome, record_event
from repro.core.register_automaton import RegisterAutomaton, State, Transition
from repro.logic.literals import eq
from repro.logic.terms import X
from repro.logic.types import (
    SigmaType,
    abstract_successor_types,
    all_pairs_mask,
    complete_equality_x_types,
    decode_partition_code,
    enumerate_interval_codes,
    interval_contains,
    pair_bits,
    successor_atoms,
)
from repro.analysis.dataflow.framework import (
    ForwardProblem,
    PowersetLattice,
    SubsumptionLattice,
    solve_forward,
)

__all__ = [
    "MAX_REGISTERS",
    "EXPLICIT_MAX_REGISTERS",
    "DEFAULT_EDGE_BUDGET",
    "antichain_enabled",
    "ReachableTypes",
    "SymbolicReachableTypes",
    "analyze_reachable_types",
    "reachable_types_outcome",
]

#: Refuse the analysis above this register count.  The antichain domain
#: (partition-code intervals with subsumption pruning) never materialises
#: the Bell(k) lattice, so the cap is far above the old explicit limit;
#: the edge budget below remains the real guard for huge automata.
MAX_REGISTERS = 12

#: The historical cap for the explicit powerset domain, still enforced when
#: the antichain is ablated away (``REPRO_ANTICHAIN=0``): the explicit
#: domain enumerates Bell(k) types per state, which is only tolerable up to
#: B(6) = 203 (EXPERIMENTS.md E1/E7).
EXPLICIT_MAX_REGISTERS = 6


def antichain_enabled() -> bool:
    """Whether the antichain (interval) domain is active.

    On by default; ``REPRO_ANTICHAIN=0`` falls back to the explicit
    Bell(k) powerset domain (A/B ablations, and the CI leg that keeps the
    old path green).  Read at call time, like every behaviour knob.
    """
    return knobs.value("REPRO_ANTICHAIN")

#: Default cap on transfer-function applications in the fixpoint solver.
#: Each state is re-queued at most Bell(k) times (its value strictly grows),
#: so ordinary workloads stay far below this; hitting it means the
#: automaton is too large to analyse cheaply and the caller gets ``None``.
DEFAULT_EDGE_BUDGET = 60_000


class _ReachableTypesProblem(ForwardProblem[FrozenSet[SigmaType]]):
    """The forward problem: nodes are control states, labels transitions."""

    def __init__(self, automaton: RegisterAutomaton) -> None:
        self.lattice = PowersetLattice()
        self._automaton = automaton
        self._k = automaton.k
        self._top = frozenset(complete_equality_x_types(automaton.k))

    def nodes(self) -> Iterable[State]:
        return self._automaton.states

    def entry(self, node: State) -> FrozenSet[SigmaType]:
        if node in self._automaton.initial:
            return self._top
        return frozenset()

    def out_edges(self, node: State) -> Iterable[Tuple[Transition, State]]:
        return ((t, t.target) for t in self._automaton.transitions_from(node))

    def transfer(
        self, transition: Transition, value: FrozenSet[SigmaType]
    ) -> FrozenSet[SigmaType]:
        guard = transition.guard
        k = self._k
        successors = set()
        for phi in value:
            successors.update(abstract_successor_types(phi, guard, k))
        return frozenset(successors)


#: An interval (atom) of partition codes: ``(e, d)`` denotes every
#: partition whose code contains all bits of ``e`` and none of ``d``.
Interval = Tuple[int, int]

#: The full interval -- no pair forced equal or apart -- i.e. "all types".
TOP_INTERVAL: Interval = (0, 0)


class _ReachableIntervalsProblem(ForwardProblem[FrozenSet[Interval]]):
    """The antichain formulation: per-state sets of code intervals.

    Same graph and boundary condition as :class:`_ReachableTypesProblem`,
    but the value at a state is an antichain of intervals under
    containment (:func:`repro.logic.types.interval_contains`) and the
    transfer function is the sigma-reduced
    :func:`repro.logic.types.successor_atoms` -- Bell(|guard registers|)
    work per interval instead of Bell(k) per state.  The downward closure
    of the fixpoint equals the explicit domain's fixpoint set for set,
    which is what keeps the two modes' verdicts byte-identical.
    """

    def __init__(self, automaton: RegisterAutomaton) -> None:
        self.lattice = SubsumptionLattice(interval_contains)
        self._automaton = automaton
        self._k = automaton.k

    def nodes(self) -> Iterable[State]:
        return self._automaton.states

    def entry(self, node: State) -> FrozenSet[Interval]:
        if node in self._automaton.initial:
            return frozenset((TOP_INTERVAL,))
        return frozenset()

    def out_edges(self, node: State) -> Iterable[Tuple[Transition, State]]:
        return ((t, t.target) for t in self._automaton.transitions_from(node))

    def transfer(
        self, transition: Transition, value: FrozenSet[Interval]
    ) -> FrozenSet[Interval]:
        guard = transition.guard
        k = self._k
        successors = set()
        for e_mask, d_mask in sorted(value):
            successors.update(successor_atoms(e_mask, d_mask, guard, k))
        return self.lattice.prune(successors)


class ReachableTypes:
    """The solved analysis: reachable equality types per control state.

    ``per_state[q]`` is empty exactly when no valid run prefix can reach
    ``q`` (abstract unreachability -- a proof, since the domain
    over-approximates).  All query methods are deterministic functions of
    the automaton structure: no iteration order leaks from set hashing.
    """

    __slots__ = ("automaton", "per_state", "iterations", "edge_evaluations")

    def __init__(
        self,
        automaton: RegisterAutomaton,
        per_state: Dict[State, FrozenSet[SigmaType]],
        iterations: int,
        edge_evaluations: int,
    ) -> None:
        self.automaton = automaton
        self.per_state = per_state
        self.iterations = iterations
        self.edge_evaluations = edge_evaluations

    # ------------------------------------------------------------------ #
    # feasibility queries
    # ------------------------------------------------------------------ #

    def types_at(self, state: State) -> FrozenSet[SigmaType]:
        return self.per_state.get(state, frozenset())

    def is_reachable(self, state: State) -> bool:
        """Whether some valid run prefix can reach *state*.

        Equivalent to ``bool(types_at(state))`` but overridable by the
        symbolic representation, which answers from the interval frontier
        without materialising the Bell-sized type sets.
        """
        return bool(self.types_at(state))

    def feasible(self, transition: Transition) -> bool:
        """Whether *transition* can fire from some reachable configuration."""
        k = self.automaton.k
        guard = transition.guard
        return any(
            abstract_successor_types(phi, guard, k)
            for phi in self.types_at(transition.source)
        )

    def feasible_from(self, state: State, guard: SigmaType) -> bool:
        """Whether *guard* is satisfiable under some reachable type at *state*."""
        k = self.automaton.k
        return any(
            abstract_successor_types(phi, guard, k) for phi in self.types_at(state)
        )

    def unreachable_states(self) -> Tuple[State, ...]:
        """States proved unreachable by any valid run prefix (sorted)."""
        return tuple(
            state
            for state in sorted(self.automaton.states, key=repr)
            if not self.is_reachable(state)
        )

    def infeasible_transitions(self) -> Tuple[Transition, ...]:
        """Transitions proved unable to fire on any valid run (stable order)."""
        return tuple(
            t for t in self.automaton.transitions if not self.feasible(t)
        )

    # ------------------------------------------------------------------ #
    # witnesses and refinement facts
    # ------------------------------------------------------------------ #

    def witness_path(self, state: State) -> Optional[List[Transition]]:
        """A feasibility-certified transition path from an initial state.

        BFS over the ``(control state, equality type)`` pair graph, so every
        step of the returned path is abstractly firable from the type
        reached so far -- a reachability witness for the diagnostics.
        ``None`` when *state* is (proved) unreachable.  Deterministic:
        frontier seeding and expansion are repr-sorted.
        """
        automaton = self.automaton
        k = automaton.k
        if state in automaton.initial:
            return []
        parents: Dict[Tuple[State, SigmaType], Tuple] = {}
        frontier = deque()
        for source in sorted(automaton.initial, key=repr):
            for phi in sorted(complete_equality_x_types(k), key=repr):
                pair = (source, phi)
                if pair not in parents:
                    parents[pair] = ()
                    frontier.append(pair)
        while frontier:
            source, phi = frontier.popleft()
            for transition in automaton.transitions_from(source):
                for psi in abstract_successor_types(phi, transition.guard, k):
                    pair = (transition.target, psi)
                    if pair in parents:
                        continue
                    parents[pair] = ((source, phi), transition)
                    if transition.target == state:
                        path = [transition]
                        step = parents[(source, phi)]
                        while step:
                            path.append(step[1])
                            step = parents[step[0]]
                        path.reverse()
                        return path
                    frontier.append(pair)
        return None

    def forced_equalities(self, state: State) -> Tuple[Tuple[int, int], ...]:
        """Register pairs ``(i, j)`` provably equal at *state* on every run.

        Empty when the state is unreachable (no types to force anything) --
        callers should check :meth:`types_at` first.  This is the
        register-constancy fact consumed by the ``DF004`` refinement
        diagnostics.
        """
        types = self.types_at(state)
        if not types:
            return ()
        k = self.automaton.k
        pairs = []
        for i in range(1, k + 1):
            for j in range(i + 1, k + 1):
                literal = eq(X(i), X(j))
                if all(phi.entails(literal) for phi in types):
                    pairs.append((i, j))
        return tuple(pairs)


class SymbolicReachableTypes(ReachableTypes):
    """:class:`ReachableTypes` backed by interval antichains.

    Query results are byte-identical to the explicit representation --
    ``types_at`` materialises (and caches) the downward closure of a
    state's antichain on demand, and the overridden predicates answer the
    same questions directly on the intervals:

    * reachability / feasibility without decoding any type at all,
    * ``forced_equalities`` as a bitwise AND over the interval lower
      bounds (the minimal member of ``(e, d)`` is exactly ``e``, so a pair
      is forced on every member of every interval iff its bit survives
      the AND).

    ``witness_path`` is deliberately *not* overridden: it searches the
    pair graph from scratch either way, so both modes return the same
    witness, byte for byte.
    """

    __slots__ = ("per_state_intervals", "_materialised")

    def __init__(
        self,
        automaton: RegisterAutomaton,
        per_state_intervals: Dict[State, FrozenSet[Interval]],
        iterations: int,
        edge_evaluations: int,
    ) -> None:
        super().__init__(automaton, {}, iterations, edge_evaluations)
        self.per_state_intervals = per_state_intervals
        self._materialised: Dict[State, FrozenSet[SigmaType]] = {}

    def intervals_at(self, state: State) -> FrozenSet[Interval]:
        return self.per_state_intervals.get(state, frozenset())

    def types_at(self, state: State) -> FrozenSet[SigmaType]:
        found = self._materialised.get(state)
        if found is None:
            k = self.automaton.k
            types = set()
            for e_mask, d_mask in self.intervals_at(state):
                for code in enumerate_interval_codes(e_mask, d_mask, k):
                    types.add(decode_partition_code(code, k))
            found = self._materialised[state] = frozenset(types)
            self.per_state[state] = found
        return found

    def is_reachable(self, state: State) -> bool:
        # Intervals are built from satisfiable types only, so every stored
        # interval is non-empty.
        return bool(self.intervals_at(state))

    def feasible(self, transition: Transition) -> bool:
        return self.feasible_from(transition.source, transition.guard)

    def feasible_from(self, state: State, guard: SigmaType) -> bool:
        k = self.automaton.k
        return any(
            successor_atoms(e_mask, d_mask, guard, k)
            for e_mask, d_mask in sorted(self.intervals_at(state))
        )

    def forced_equalities(self, state: State) -> Tuple[Tuple[int, int], ...]:
        intervals = self.intervals_at(state)
        if not intervals:
            return ()
        k = self.automaton.k
        common = all_pairs_mask(k)
        for e_mask, _d_mask in intervals:
            common &= e_mask
        return tuple(
            pair
            for bit, pair in enumerate(pair_bits(k))
            if common >> bit & 1
        )


def reachable_types_outcome(
    automaton: RegisterAutomaton,
    max_edge_evaluations: Optional[int] = DEFAULT_EDGE_BUDGET,
) -> "Outcome[ReachableTypes]":
    """The reachable-equality-types analysis as a budgeted outcome.

    ``COMPLETE`` carries the solved :class:`ReachableTypes` (a
    :class:`SymbolicReachableTypes` under the default antichain domain, the
    explicit powerset under ``REPRO_ANTICHAIN=0``); ``DEGRADED`` carries no
    value and a ``reason`` of ``"register-cap"`` (more than
    :data:`MAX_REGISTERS` registers -- :data:`EXPLICIT_MAX_REGISTERS` in
    the ablated mode) or ``"edge-budget"`` (the fixpoint solver exhausted
    *max_edge_evaluations* transfer applications).  Either way the stats
    include the full budget snapshot, which is what the ``DF005``
    diagnostic and the ``RS004`` resilience event expose to CI.  The
    snapshot is deterministic: the solver stops on exactly the same edge
    evaluation the historical integer cap stopped on.
    """
    symbolic = antichain_enabled()
    register_cap = MAX_REGISTERS if symbolic else EXPLICIT_MAX_REGISTERS
    budget = Budget("dataflow")
    registers = budget.scope("registers", register_cap)
    edges = budget.scope("edges", max_edge_evaluations)

    def declined(reason: str) -> "Outcome[ReachableTypes]":
        snapshot = budget.snapshot()
        record_event(
            "RS004",
            "dataflow analysis declined (%s) for %d-register automaton"
            % (reason, automaton.k),
            severity=Severity.INFO,
            location="repro.analysis.dataflow.reachable_types_outcome",
            data={"reason": reason, "budget": snapshot},
        )
        return Outcome.degraded(None, reason=reason, budget=snapshot)

    if not registers.charge(automaton.k):
        return declined("register-cap")
    if symbolic:
        interval_problem = _ReachableIntervalsProblem(automaton)
        result = solve_forward(interval_problem, edges)
        if result is None:
            return declined("edge-budget")
        return Outcome.complete(
            SymbolicReachableTypes(
                automaton, result.values, result.iterations, result.edge_evaluations
            ),
            budget=budget.snapshot(),
        )
    problem = _ReachableTypesProblem(automaton)
    result = solve_forward(problem, edges)
    if result is None:
        return declined("edge-budget")
    return Outcome.complete(
        ReachableTypes(
            automaton, result.values, result.iterations, result.edge_evaluations
        ),
        budget=budget.snapshot(),
    )


def analyze_reachable_types(
    automaton: RegisterAutomaton,
    max_edge_evaluations: Optional[int] = DEFAULT_EDGE_BUDGET,
) -> Optional[ReachableTypes]:
    """Run the reachable-equality-types analysis; ``None`` when over budget.

    ``None`` means "no information" -- too many registers for the Bell-sized
    domain, or the solver exhausted *max_edge_evaluations* -- and every
    consumer must then behave exactly as if the analysis never ran.  (The
    richer :func:`reachable_types_outcome` says *why* and how much budget
    was spent.)
    """
    return reachable_types_outcome(automaton, max_edge_evaluations).value
