"""Reachable equality types of registers, per control state.

The instantiation of :mod:`repro.analysis.dataflow.framework` that powers
the ``DF0xx`` feasibility passes and :func:`repro.core.pruning.prune_infeasible`.

Abstract domain
---------------
For a ``k``-register automaton the domain element at a control state is a
*set of complete equality x-types* over ``x1..xk``
(:func:`repro.logic.types.complete_equality_x_types` -- the Bell(k) set
partitions of the registers, hash-consed so sets compare fast).  The
concretisation of a set ``S`` at state ``q`` is::

    { register valuations d  |  the complete equality type of d is in S }

Soundness invariant (checked by the tests via brute-force bounded runs):
after solving, ``per_state[q]`` contains the equality type of **every**
register valuation ``d`` such that some valid run prefix from an initial
state reaches ``(q, d)``.  Initial states start at top (all types):
initial register contents are arbitrary.

The transfer function is :func:`repro.logic.types.abstract_successor_types`
-- exact on the equality skeleton of the guard, dropping relational and
constant facts (an over-approximation, hence sound).

Budgets
-------
Bell numbers grow fast (B(6) = 203, B(7) = 877), so the analysis refuses
automata with more than :data:`MAX_REGISTERS` registers and the solver
carries an edge-evaluation budget.  Both caps live on one
:class:`~repro.foundations.resilience.Budget` hierarchy
(``dataflow`` -> ``registers`` / ``edges``), so every degradation is
reported uniformly: :func:`reachable_types_outcome` returns a
``DEGRADED`` :class:`~repro.foundations.resilience.Outcome` whose stats
carry the budget snapshot (and an ``RS004`` event is recorded), while the
plain :func:`analyze_reachable_types` wrapper keeps the historical
``None``-means-no-information contract for consumers that only care
about the value.
"""

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.foundations.diagnostics import Severity
from repro.foundations.resilience import Budget, Outcome, record_event
from repro.core.register_automaton import RegisterAutomaton, State, Transition
from repro.logic.literals import eq
from repro.logic.terms import X
from repro.logic.types import (
    SigmaType,
    abstract_successor_types,
    complete_equality_x_types,
)
from repro.analysis.dataflow.framework import (
    ForwardProblem,
    PowersetLattice,
    solve_forward,
)

__all__ = [
    "MAX_REGISTERS",
    "DEFAULT_EDGE_BUDGET",
    "ReachableTypes",
    "analyze_reachable_types",
    "reachable_types_outcome",
]

#: Refuse the analysis above this register count: the domain has Bell(k)
#: elements per state and the guard completions feeding the transfer
#: function blow up alongside (EXPERIMENTS.md E1/E7).
MAX_REGISTERS = 6

#: Default cap on transfer-function applications in the fixpoint solver.
#: Each state is re-queued at most Bell(k) times (its value strictly grows),
#: so ordinary workloads stay far below this; hitting it means the
#: automaton is too large to analyse cheaply and the caller gets ``None``.
DEFAULT_EDGE_BUDGET = 60_000


class _ReachableTypesProblem(ForwardProblem[FrozenSet[SigmaType]]):
    """The forward problem: nodes are control states, labels transitions."""

    def __init__(self, automaton: RegisterAutomaton) -> None:
        self.lattice = PowersetLattice()
        self._automaton = automaton
        self._k = automaton.k
        self._top = frozenset(complete_equality_x_types(automaton.k))

    def nodes(self) -> Iterable[State]:
        return self._automaton.states

    def entry(self, node: State) -> FrozenSet[SigmaType]:
        if node in self._automaton.initial:
            return self._top
        return frozenset()

    def out_edges(self, node: State) -> Iterable[Tuple[Transition, State]]:
        return ((t, t.target) for t in self._automaton.transitions_from(node))

    def transfer(
        self, transition: Transition, value: FrozenSet[SigmaType]
    ) -> FrozenSet[SigmaType]:
        guard = transition.guard
        k = self._k
        successors = set()
        for phi in value:
            successors.update(abstract_successor_types(phi, guard, k))
        return frozenset(successors)


class ReachableTypes:
    """The solved analysis: reachable equality types per control state.

    ``per_state[q]`` is empty exactly when no valid run prefix can reach
    ``q`` (abstract unreachability -- a proof, since the domain
    over-approximates).  All query methods are deterministic functions of
    the automaton structure: no iteration order leaks from set hashing.
    """

    __slots__ = ("automaton", "per_state", "iterations", "edge_evaluations")

    def __init__(
        self,
        automaton: RegisterAutomaton,
        per_state: Dict[State, FrozenSet[SigmaType]],
        iterations: int,
        edge_evaluations: int,
    ) -> None:
        self.automaton = automaton
        self.per_state = per_state
        self.iterations = iterations
        self.edge_evaluations = edge_evaluations

    # ------------------------------------------------------------------ #
    # feasibility queries
    # ------------------------------------------------------------------ #

    def types_at(self, state: State) -> FrozenSet[SigmaType]:
        return self.per_state.get(state, frozenset())

    def feasible(self, transition: Transition) -> bool:
        """Whether *transition* can fire from some reachable configuration."""
        k = self.automaton.k
        guard = transition.guard
        return any(
            abstract_successor_types(phi, guard, k)
            for phi in self.types_at(transition.source)
        )

    def feasible_from(self, state: State, guard: SigmaType) -> bool:
        """Whether *guard* is satisfiable under some reachable type at *state*."""
        k = self.automaton.k
        return any(
            abstract_successor_types(phi, guard, k) for phi in self.types_at(state)
        )

    def unreachable_states(self) -> Tuple[State, ...]:
        """States proved unreachable by any valid run prefix (sorted)."""
        return tuple(
            state
            for state in sorted(self.automaton.states, key=repr)
            if not self.types_at(state)
        )

    def infeasible_transitions(self) -> Tuple[Transition, ...]:
        """Transitions proved unable to fire on any valid run (stable order)."""
        return tuple(
            t for t in self.automaton.transitions if not self.feasible(t)
        )

    # ------------------------------------------------------------------ #
    # witnesses and refinement facts
    # ------------------------------------------------------------------ #

    def witness_path(self, state: State) -> Optional[List[Transition]]:
        """A feasibility-certified transition path from an initial state.

        BFS over the ``(control state, equality type)`` pair graph, so every
        step of the returned path is abstractly firable from the type
        reached so far -- a reachability witness for the diagnostics.
        ``None`` when *state* is (proved) unreachable.  Deterministic:
        frontier seeding and expansion are repr-sorted.
        """
        automaton = self.automaton
        k = automaton.k
        if state in automaton.initial:
            return []
        parents: Dict[Tuple[State, SigmaType], Tuple] = {}
        frontier = deque()
        for source in sorted(automaton.initial, key=repr):
            for phi in sorted(complete_equality_x_types(k), key=repr):
                pair = (source, phi)
                if pair not in parents:
                    parents[pair] = ()
                    frontier.append(pair)
        while frontier:
            source, phi = frontier.popleft()
            for transition in automaton.transitions_from(source):
                for psi in abstract_successor_types(phi, transition.guard, k):
                    pair = (transition.target, psi)
                    if pair in parents:
                        continue
                    parents[pair] = ((source, phi), transition)
                    if transition.target == state:
                        path = [transition]
                        step = parents[(source, phi)]
                        while step:
                            path.append(step[1])
                            step = parents[step[0]]
                        path.reverse()
                        return path
                    frontier.append(pair)
        return None

    def forced_equalities(self, state: State) -> Tuple[Tuple[int, int], ...]:
        """Register pairs ``(i, j)`` provably equal at *state* on every run.

        Empty when the state is unreachable (no types to force anything) --
        callers should check :meth:`types_at` first.  This is the
        register-constancy fact consumed by the ``DF004`` refinement
        diagnostics.
        """
        types = self.types_at(state)
        if not types:
            return ()
        k = self.automaton.k
        pairs = []
        for i in range(1, k + 1):
            for j in range(i + 1, k + 1):
                literal = eq(X(i), X(j))
                if all(phi.entails(literal) for phi in types):
                    pairs.append((i, j))
        return tuple(pairs)


def reachable_types_outcome(
    automaton: RegisterAutomaton,
    max_edge_evaluations: Optional[int] = DEFAULT_EDGE_BUDGET,
) -> "Outcome[ReachableTypes]":
    """The reachable-equality-types analysis as a budgeted outcome.

    ``COMPLETE`` carries the solved :class:`ReachableTypes`; ``DEGRADED``
    carries no value and a ``reason`` of ``"register-cap"`` (more than
    :data:`MAX_REGISTERS` registers -- the Bell-sized domain is refused
    outright) or ``"edge-budget"`` (the fixpoint solver exhausted
    *max_edge_evaluations* transfer applications).  Either way the stats
    include the full budget snapshot, which is what the ``DF005``
    diagnostic and the ``RS004`` resilience event expose to CI.  The
    snapshot is deterministic: the solver stops on exactly the same edge
    evaluation the historical integer cap stopped on.
    """
    budget = Budget("dataflow")
    registers = budget.scope("registers", MAX_REGISTERS)
    edges = budget.scope("edges", max_edge_evaluations)

    def declined(reason: str) -> "Outcome[ReachableTypes]":
        snapshot = budget.snapshot()
        record_event(
            "RS004",
            "dataflow analysis declined (%s) for %d-register automaton"
            % (reason, automaton.k),
            severity=Severity.INFO,
            location="repro.analysis.dataflow.reachable_types_outcome",
            data={"reason": reason, "budget": snapshot},
        )
        return Outcome.degraded(None, reason=reason, budget=snapshot)

    if not registers.charge(automaton.k):
        return declined("register-cap")
    problem = _ReachableTypesProblem(automaton)
    result = solve_forward(problem, edges)
    if result is None:
        return declined("edge-budget")
    return Outcome.complete(
        ReachableTypes(
            automaton, result.values, result.iterations, result.edge_evaluations
        ),
        budget=budget.snapshot(),
    )


def analyze_reachable_types(
    automaton: RegisterAutomaton,
    max_edge_evaluations: Optional[int] = DEFAULT_EDGE_BUDGET,
) -> Optional[ReachableTypes]:
    """Run the reachable-equality-types analysis; ``None`` when over budget.

    ``None`` means "no information" -- too many registers for the Bell-sized
    domain, or the solver exhausted *max_edge_evaluations* -- and every
    consumer must then behave exactly as if the analysis never ran.  (The
    richer :func:`reachable_types_outcome` says *why* and how much budget
    was spent.)
    """
    return reachable_types_outcome(automaton, max_edge_evaluations).value
