"""Generic forward-fixpoint dataflow solving over finite graphs.

The framework is deliberately small: a :class:`Lattice` protocol (bottom,
join, leq, optional widen), a :class:`ForwardProblem` describing a graph
with labelled edges and per-node entry values, and a worklist solver
:func:`solve_forward` computing the least fixpoint of::

    value(n)  >=  entry(n)  \\/  join over edges (m --label--> n) of
                                 transfer(label, value(m))

Determinism discipline: nodes are seeded in ``repr``-sorted order and the
worklist is FIFO with membership dedup, so the number of iterations -- and
every intermediate value -- is a pure function of the problem, independent
of hash seeds, interning mode, and worker count.  Consumers (the pruner,
the lasso narrowing) rely on this to keep ``REPRO_INTERN`` / ``REPRO_WORKERS``
A/B runs byte-identical.

Instantiations live next door: :mod:`repro.analysis.dataflow.equality_domain`
runs the reachable-equality-types analysis of registers over this solver.
"""

from collections import deque
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Generic,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from repro.foundations.resilience import Budget

V = TypeVar("V")
Node = Hashable
Label = Hashable

__all__ = [
    "Lattice",
    "PowersetLattice",
    "SubsumptionLattice",
    "ForwardProblem",
    "BackwardProblem",
    "FixpointResult",
    "solve_forward",
    "solve_backward",
]


class Lattice(Generic[V]):
    """A join-semilattice with bottom; subclass and override the three ops.

    ``widen`` defaults to ``join`` -- correct (and terminating) whenever
    the lattice has finite height, which every instantiation in this
    repository has.  Override it for infinite-height domains.
    """

    def bottom(self) -> V:
        raise NotImplementedError

    def join(self, left: V, right: V) -> V:
        raise NotImplementedError

    def leq(self, left: V, right: V) -> bool:
        raise NotImplementedError

    def widen(self, previous: V, joined: V) -> V:
        return self.join(previous, joined)


class PowersetLattice(Lattice[FrozenSet]):
    """Finite powerset ordered by inclusion: bottom = empty, join = union."""

    def bottom(self) -> FrozenSet:
        return frozenset()

    def join(self, left: FrozenSet, right: FrozenSet) -> FrozenSet:
        if left <= right:
            return right
        if right <= left:
            return left
        return left | right

    def leq(self, left: FrozenSet, right: FrozenSet) -> bool:
        return left <= right


class SubsumptionLattice(Lattice[FrozenSet]):
    """Antichain powerset: sets pruned to their subsumption-maximal elements.

    Parameterised by ``subsumes(big, small)`` -- a *partial order* on
    elements (reflexive, transitive, antisymmetric); ``small`` is redundant
    in a set that also contains a distinct ``big`` subsuming it.  Values
    are frozensets kept in antichain form by :meth:`prune`:

    * ``bottom`` is the empty set,
    * ``join`` is union followed by pruning,
    * ``leq(a, b)`` holds when every element of ``a`` is subsumed by some
      element of ``b`` -- inclusion of the downward closures, which is the
      order the fixpoint actually computes in.

    Elements must be totally orderable (``sorted``) so pruning -- and with
    it every solver value -- is a pure function of the set, independent of
    hash iteration order (the framework's determinism discipline).

    The dataflow height argument still applies: downward closures of the
    per-node values grow strictly on every update and live in a finite
    powerset, so the worklist terminates; the least fixpoint's closures
    equal those of the explicit powerset run, which is why the antichain
    equality domain reproduces the explicit domain's verdicts exactly.
    """

    def __init__(self, subsumes: Callable[[object, object], bool]) -> None:
        self._subsumes = subsumes

    def bottom(self) -> FrozenSet:
        return frozenset()

    def prune(self, elements: Iterable) -> FrozenSet:
        """The subsumption-maximal elements of *elements*."""
        subsumes = self._subsumes
        items = sorted(set(elements))
        kept = []
        for item in items:
            if any(other != item and subsumes(other, item) for other in items):
                continue
            kept.append(item)
        return frozenset(kept)

    def join(self, left: FrozenSet, right: FrozenSet) -> FrozenSet:
        if left == right:
            return left
        return self.prune(left | right)

    def leq(self, left: FrozenSet, right: FrozenSet) -> bool:
        subsumes = self._subsumes
        return all(
            any(subsumes(big, small) for big in right) for small in left
        )


class ForwardProblem(Generic[V]):
    """A forward dataflow problem over a finite labelled graph.

    Subclasses describe the graph (:meth:`nodes`, :meth:`out_edges`), the
    boundary condition (:meth:`entry`), and the abstract semantics
    (:meth:`transfer`).  The solver never inspects nodes or labels beyond
    hashing them.
    """

    lattice: Lattice[V]

    def nodes(self) -> Iterable[Node]:
        raise NotImplementedError

    def entry(self, node: Node) -> V:
        """The boundary value injected at *node* (bottom for most nodes)."""
        raise NotImplementedError

    def out_edges(self, node: Node) -> Iterable[Tuple[Label, Node]]:
        raise NotImplementedError

    def transfer(self, label: Label, value: V) -> V:
        raise NotImplementedError


class BackwardProblem(Generic[V]):
    """A backward dataflow problem over a finite labelled graph.

    The mirror image of :class:`ForwardProblem`: information flows from a
    node's *successors* back to the node, the boundary condition
    (:meth:`exit`) is injected where forward problems inject ``entry``,
    and :meth:`transfer` abstracts an edge traversed against its
    direction -- given the value holding *after* the edge, it produces
    the contribution holding *before* it.  The least solution satisfies::

        value(n)  >=  exit(n)  \\/  join over edges (n --label--> m) of
                                    transfer(label, value(m))

    Solved by :func:`solve_backward`, which runs the *same* worklist core
    as :func:`solve_forward` on the edge-reversed graph -- there is no
    second solver loop, so the determinism discipline (repr-sorted
    seeding, FIFO dedup, budget-charged edge evaluations) carries over
    verbatim, for both :class:`PowersetLattice` and the antichain
    :class:`SubsumptionLattice`.
    """

    lattice: Lattice[V]

    def nodes(self) -> Iterable[Node]:
        raise NotImplementedError

    def exit(self, node: Node) -> V:
        """The boundary value injected at *node* (bottom for most nodes)."""
        raise NotImplementedError

    def out_edges(self, node: Node) -> Iterable[Tuple[Label, Node]]:
        """Edges in the *original* (forward) direction, as drawn."""
        raise NotImplementedError

    def transfer(self, label: Label, value: V) -> V:
        """Flow *value* (holding at the edge's target) back over the edge."""
        raise NotImplementedError


class FixpointResult(Generic[V]):
    """The least fixpoint plus solver effort counters.

    ``values`` maps every node to its final abstract value; ``iterations``
    counts node visits (worklist pops), ``edge_evaluations`` counts
    transfer-function applications.  Both counters feed the benchmark
    tables and the budget checks in the equality-domain instantiation.
    """

    __slots__ = ("values", "iterations", "edge_evaluations")

    def __init__(
        self, values: Dict[Node, V], iterations: int, edge_evaluations: int
    ) -> None:
        self.values = values
        self.iterations = iterations
        self.edge_evaluations = edge_evaluations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "FixpointResult(%d nodes, %d iterations, %d edges)" % (
            len(self.values),
            self.iterations,
            self.edge_evaluations,
        )


def solve_forward(
    problem: ForwardProblem[V],
    max_edge_evaluations=None,
) -> Optional[FixpointResult[V]]:
    """Least solution of *problem* by FIFO worklist iteration.

    *max_edge_evaluations* caps transfer applications: an ``int``, or a
    :class:`~repro.foundations.resilience.Budget` that is charged one
    unit per application (so the caller's budget hierarchy sees exactly
    the solver's effort, and an exhausted *ancestor* scope also stops
    the solve).  Returns ``None`` when the cap is exceeded before the
    fixpoint is reached -- the caller treats an exhausted budget as "no
    information" (analyses degrade to no-ops rather than unsound
    answers).  The stopping point is a pure function of the problem and
    the cap: a ``Budget`` with limit ``n`` stops on exactly the same
    edge evaluation as the plain ``int`` ``n`` did.
    """
    if isinstance(max_edge_evaluations, Budget):
        budget: Optional[Budget] = max_edge_evaluations
    elif max_edge_evaluations is not None:
        budget = Budget("edges", max_edge_evaluations)
    else:
        budget = None
    lattice = problem.lattice
    nodes: List[Node] = sorted(problem.nodes(), key=repr)
    values: Dict[Node, V] = {}
    worklist = deque()
    queued = set()
    for node in nodes:
        values[node] = problem.entry(node)
        worklist.append(node)
        queued.add(node)
    iterations = 0
    edge_evaluations = 0
    while worklist:
        node = worklist.popleft()
        queued.discard(node)
        iterations += 1
        value = values[node]
        for label, target in problem.out_edges(node):
            edge_evaluations += 1
            if budget is not None and not budget.charge():
                return None
            contribution = problem.transfer(label, value)
            previous = values.get(target)
            if previous is None:
                previous = values[target] = lattice.bottom()
            if lattice.leq(contribution, previous):
                continue
            values[target] = lattice.widen(
                previous, lattice.join(previous, contribution)
            )
            if target not in queued:
                worklist.append(target)
                queued.add(target)
    return FixpointResult(values, iterations, edge_evaluations)


class _ReversedProblem(ForwardProblem[V]):
    """A :class:`BackwardProblem` viewed forward over the reversed graph.

    Reversal is the whole adapter: ``entry`` is the backward ``exit``
    boundary and ``out_edges`` walks a precomputed predecessor index, so
    :func:`solve_forward`'s worklist, budget charging, and join/widen
    sequence run unchanged.  The predecessor lists are built in
    repr-sorted node order and keep each node's declared edge order, so
    the edge evaluation sequence is as deterministic as the forward one.
    """

    def __init__(self, problem: BackwardProblem[V]) -> None:
        self.lattice = problem.lattice
        self._problem = problem
        self._nodes = sorted(problem.nodes(), key=repr)
        in_edges: Dict[Node, List[Tuple[Label, Node]]] = {
            node: [] for node in self._nodes
        }
        for node in self._nodes:
            for label, target in problem.out_edges(node):
                in_edges.setdefault(target, []).append((label, node))
        self._in_edges = in_edges

    def nodes(self) -> Iterable[Node]:
        return self._nodes

    def entry(self, node: Node) -> V:
        return self._problem.exit(node)

    def out_edges(self, node: Node) -> Iterable[Tuple[Label, Node]]:
        return self._in_edges.get(node, ())

    def transfer(self, label: Label, value: V) -> V:
        return self._problem.transfer(label, value)


def solve_backward(
    problem: BackwardProblem[V],
    max_edge_evaluations=None,
) -> Optional[FixpointResult[V]]:
    """Least solution of the backward *problem*.

    Delegates to :func:`solve_forward` over the edge-reversed graph --
    there is deliberately no second solver loop, so the budget contract
    (int or :class:`Budget`, ``None`` on exhaustion) and the effort
    counters mean exactly what they mean forward.
    """
    return solve_forward(_ReversedProblem(problem), max_edge_evaluations)
